// Unit and integration tests of the query result cache: key construction,
// LRU budget enforcement, epoch-bump invalidation (append, shuffle, and
// the imprint-sidecar quarantine path), and concurrent lookups/inserts
// under a tiny budget that forces evictions. The concurrency test also
// runs under the TSan CI job.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "cache/query_cache.h"
#include "core/imprints_io.h"
#include "core/spatial_engine.h"
#include "telemetry/metrics.h"
#include "util/binary_io.h"
#include "util/rng.h"
#include "util/tempdir.h"

namespace geocol {
namespace {

using cache::CachedSelection;
using cache::KeyBuilder;
using cache::QueryResultCache;
using cache::Tier;

std::shared_ptr<FlatTable> MakeTable(size_t n, uint64_t seed,
                                     const Box& extent) {
  Rng rng(seed);
  std::vector<double> xs(n), ys(n), zs(n);
  std::vector<uint8_t> cls(n);
  for (size_t i = 0; i < n; ++i) {
    xs[i] = rng.UniformDouble(extent.min_x, extent.max_x);
    ys[i] = rng.UniformDouble(extent.min_y, extent.max_y);
    zs[i] = rng.UniformDouble(-5, 40);
    cls[i] = static_cast<uint8_t>(rng.Uniform(10));
  }
  auto t = std::make_shared<FlatTable>("pc");
  EXPECT_TRUE(t->AddColumn(Column::FromVector("x", xs)).ok());
  EXPECT_TRUE(t->AddColumn(Column::FromVector("y", ys)).ok());
  EXPECT_TRUE(t->AddColumn(Column::FromVector("z", zs)).ok());
  EXPECT_TRUE(t->AddColumn(Column::FromVector("classification", cls)).ok());
  return t;
}

std::shared_ptr<const CachedSelection> MakeSelection(size_t rows) {
  auto sel = std::make_shared<CachedSelection>();
  sel->row_ids.resize(rows);
  for (size_t i = 0; i < rows; ++i) sel->row_ids[i] = i;
  return sel;
}

// ---------------------------------------------------------------------------
// Key construction.
// ---------------------------------------------------------------------------

TEST(KeyBuilderTest, LengthPrefixPreventsConcatenationAliasing) {
  KeyBuilder a("t");
  a.Append("ab");
  a.Append("c");
  KeyBuilder b("t");
  b.Append("a");
  b.Append("bc");
  EXPECT_NE(a.bytes(), b.bytes());
}

TEST(KeyBuilderTest, DoubleKeysAreBitExact) {
  KeyBuilder pos("t");
  pos.AppendDouble(0.0);
  KeyBuilder neg("t");
  neg.AppendDouble(-0.0);
  EXPECT_NE(pos.bytes(), neg.bytes());
}

TEST(KeyBuilderTest, GeometryTypeIsPartOfTheKey) {
  // A box and a point sharing coordinates must not collide.
  KeyBuilder box("t");
  box.AppendGeometry(Geometry(Box(1, 2, 3, 4)));
  KeyBuilder pt("t");
  pt.AppendGeometry(Geometry(Point{1, 2}));
  EXPECT_NE(box.bytes(), pt.bytes());
}

// ---------------------------------------------------------------------------
// Store behavior: lookup, LRU, budgets.
// ---------------------------------------------------------------------------

TEST(QueryCacheTest, LookupReturnsExactInsertedValue) {
  QueryResultCache c(1 << 20);
  c.InsertSelection("k1", MakeSelection(10));
  auto hit = c.LookupSelection("k1");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->row_ids.size(), 10u);
  EXPECT_EQ(c.LookupSelection("k2"), nullptr);
  cache::CacheStats stats = c.Stats();
  EXPECT_EQ(stats.tier[static_cast<size_t>(Tier::kSelection)].hits, 1u);
  EXPECT_EQ(stats.tier[static_cast<size_t>(Tier::kSelection)].misses, 1u);
}

TEST(QueryCacheTest, MismatchedTierNeverAliases) {
  QueryResultCache c(1 << 20);
  c.InsertAggregate("same-key", 42.0);
  EXPECT_EQ(c.LookupSelection("same-key"), nullptr);
  double out = 0;
  EXPECT_TRUE(c.LookupAggregate("same-key", &out));
  EXPECT_EQ(out, 42.0);
}

TEST(QueryCacheTest, BudgetEvictsLeastRecentlyUsed) {
  // All keys land in one shard only probabilistically; instead drive one
  // key's shard over its slice with same-shard entries by reusing a single
  // key prefix and checking global accounting.
  QueryResultCache c(QueryResultCache::kShards * 4096);
  for (int i = 0; i < 64; ++i) {
    c.InsertSelection("key-" + std::to_string(i), MakeSelection(64));
  }
  cache::CacheStats stats = c.Stats();
  const auto& sel = stats.tier[static_cast<size_t>(Tier::kSelection)];
  EXPECT_GT(sel.evictions, 0u);
  EXPECT_LE(stats.bytes_used, c.budget_bytes());
  EXPECT_LT(sel.entries, 64u);
}

TEST(QueryCacheTest, TouchedEntriesSurviveEviction) {
  QueryResultCache c(QueryResultCache::kShards * 8192);
  c.InsertSelection("hot", MakeSelection(16));
  for (int i = 0; i < 256; ++i) {
    // Keep "hot" at the front of its shard's LRU while filling the cache.
    ASSERT_NE(c.LookupSelection("hot"), nullptr) << "iteration " << i;
    c.InsertSelection("cold-" + std::to_string(i), MakeSelection(16));
  }
  EXPECT_NE(c.LookupSelection("hot"), nullptr);
}

TEST(QueryCacheTest, OversizedEntriesAreNotInserted) {
  QueryResultCache c(QueryResultCache::kShards * 512);
  c.InsertSelection("huge", MakeSelection(100000));
  EXPECT_EQ(c.LookupSelection("huge"), nullptr);
  EXPECT_EQ(c.bytes_used(), 0u);
}

TEST(QueryCacheTest, DoorkeeperAdmitsLargeEntriesOnSecondSighting) {
  QueryResultCache c(64 << 20);
  const size_t rows = QueryResultCache::kDoorkeeperBytes / sizeof(uint64_t);
  c.InsertSelection("big", MakeSelection(rows));
  EXPECT_EQ(c.LookupSelection("big"), nullptr);  // first sighting: deferred
  c.InsertSelection("big", MakeSelection(rows));
  EXPECT_NE(c.LookupSelection("big"), nullptr);  // second sighting: admitted
  // Small entries skip the doorkeeper entirely.
  c.InsertSelection("small", MakeSelection(16));
  EXPECT_NE(c.LookupSelection("small"), nullptr);
}

TEST(QueryCacheTest, ShouldAdmitMatchesInsertBehaviour) {
  QueryResultCache c(64 << 20);
  const uint64_t big = QueryResultCache::kDoorkeeperBytes;
  EXPECT_TRUE(c.ShouldAdmit(Tier::kSelection, "small", 128));
  EXPECT_FALSE(c.ShouldAdmit(Tier::kSelection, "big", big));  // noted
  EXPECT_TRUE(c.ShouldAdmit(Tier::kSelection, "big", big));
  // Once the entry is resident, re-checks always admit (refresh path).
  c.InsertSelection("big", MakeSelection(big / sizeof(uint64_t)));
  ASSERT_NE(c.LookupSelection("big"), nullptr);
  EXPECT_TRUE(c.ShouldAdmit(Tier::kSelection, "big", big));
}

TEST(QueryCacheTest, ShrinkingBudgetEvictsImmediately) {
  QueryResultCache c(1 << 20);
  for (int i = 0; i < 32; ++i) {
    c.InsertSelection("k" + std::to_string(i), MakeSelection(64));
  }
  EXPECT_GT(c.bytes_used(), 0u);
  c.SetBudget(0);
  EXPECT_EQ(c.bytes_used(), 0u);
}

TEST(QueryCacheTest, GrowBudgetIsMonotonic) {
  QueryResultCache c(1 << 20);
  c.GrowBudget(1 << 10);  // smaller: ignored
  EXPECT_EQ(c.budget_bytes(), 1u << 20);
  c.GrowBudget(1 << 22);  // larger: applied
  EXPECT_EQ(c.budget_bytes(), 1u << 22);
}

TEST(QueryCacheTest, ClearDropsEntriesButKeepsBudget) {
  QueryResultCache c(1 << 20);
  c.InsertSelection("k", MakeSelection(8));
  c.Clear();
  EXPECT_EQ(c.bytes_used(), 0u);
  EXPECT_EQ(c.budget_bytes(), 1u << 20);
  EXPECT_EQ(c.LookupSelection("k"), nullptr);
}

TEST(QueryCacheTest, MergeGridCellsFillsUnclassifiedHoles) {
  QueryResultCache c(1 << 20);
  std::vector<uint8_t> first = {0, kCellUnclassified, 2, kCellUnclassified};
  c.MergeGridCells("g", std::move(first));
  std::vector<uint8_t> second = {kCellUnclassified, 1, kCellUnclassified,
                                 kCellUnclassified};
  c.MergeGridCells("g", std::move(second));
  auto merged = c.LookupGridCells("g");
  ASSERT_NE(merged, nullptr);
  std::vector<uint8_t> expect = {0, 1, 2, kCellUnclassified};
  EXPECT_EQ(*merged, expect);
}

TEST(QueryCacheTest, HitsFeedMetricsRegistry) {
  telemetry::Counter& hits = telemetry::MetricsRegistry::Global().GetCounter(
      "geocol_cache_selection_hits_total");
  uint64_t before = hits.Value();
  QueryResultCache c(1 << 20);
  c.InsertSelection("k", MakeSelection(4));
  ASSERT_NE(c.LookupSelection("k"), nullptr);
  EXPECT_EQ(hits.Value(), before + 1);
}

// ---------------------------------------------------------------------------
// Invalidation through the engine: every mutation path that bumps a column
// epoch must make the next query recompute.
// ---------------------------------------------------------------------------

EngineOptions CachedOptions() {
  EngineOptions opts;
  opts.num_threads = 1;
  opts.cache.budget_bytes = 32ull << 20;
  opts.cache.instance = std::make_shared<QueryResultCache>();
  return opts;
}

TEST(CacheInvalidationTest, AppendBetweenRepeatsIsNeverStale) {
  auto table = MakeTable(8000, 31, Box(0, 0, 100, 100));
  EngineOptions opts = CachedOptions();
  SpatialQueryEngine eng(table, opts);
  Polygon poly;
  poly.shell.points = {{10, 10}, {90, 20}, {70, 80}, {20, 60}};
  Geometry g(poly);

  auto before = eng.SelectInGeometry(g);
  ASSERT_TRUE(before.ok());
  auto repeat = eng.SelectInGeometry(g);
  ASSERT_TRUE(repeat.ok());
  ASSERT_EQ(repeat->profile.operators()[0].name, "cache.hit");

  // Append one point dead-center in the polygon to every column.
  table->column("x")->Append(50.0);
  table->column("y")->Append(45.0);
  table->column("z")->Append(1.0);
  table->column("classification")->Append(uint8_t{1});

  auto after = eng.SelectInGeometry(g);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->count(), before->count() + 1);
  EXPECT_EQ(after->row_ids.back(), table->num_rows() - 1);

  // Cache-off ground truth agrees.
  EngineOptions off;
  off.num_threads = 1;
  SpatialQueryEngine oracle(table, off);
  EXPECT_EQ(oracle.SelectInGeometry(g)->row_ids, after->row_ids);
}

TEST(CacheInvalidationTest, ShuffleBetweenRepeatsIsNeverStale) {
  auto table = MakeTable(8000, 32, Box(0, 0, 100, 100));
  EngineOptions opts = CachedOptions();
  SpatialQueryEngine eng(table, opts);
  Geometry g(Box(20, 20, 60, 70));

  auto before = eng.SelectInGeometry(g);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(eng.SelectInGeometry(g).ok());  // populate

  // Reverse the table. Row ids change; the count must not.
  std::vector<uint64_t> perm(table->num_rows());
  for (size_t i = 0; i < perm.size(); ++i) perm[i] = perm.size() - 1 - i;
  ASSERT_TRUE(table->PermuteRows(perm).ok());

  auto after = eng.SelectInGeometry(g);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->count(), before->count());
  std::vector<uint64_t> expect;
  for (uint64_t r : before->row_ids) expect.push_back(perm.size() - 1 - r);
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(after->row_ids, expect);
}

TEST(CacheInvalidationTest, AggregateInvalidatesWithItsColumn) {
  auto table = MakeTable(8000, 33, Box(0, 0, 100, 100));
  EngineOptions opts = CachedOptions();
  SpatialQueryEngine eng(table, opts);
  Geometry g(Box(0, 0, 100, 100));

  auto first = eng.Aggregate(g, 0.0, {}, "z", AggKind::kMax);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(eng.Aggregate(g, 0.0, {}, "z", AggKind::kMax).ok());

  table->column("x")->Append(50.0);
  table->column("y")->Append(50.0);
  table->column("z")->Append(1000.0);
  table->column("classification")->Append(uint8_t{0});

  auto second = eng.Aggregate(g, 0.0, {}, "z", AggKind::kMax);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*second, 1000.0);
}

// The sidecar quarantine/rebuild path must compose with the cache: a
// corrupt imprint sidecar degrades to a rebuild and the (epoch-unchanged)
// cached entries stay valid — same rows before corruption, after the
// transparent rebuild, and on the post-rebuild cache hit.
TEST(CacheInvalidationTest, SidecarQuarantineRebuildKeepsCacheCorrect) {
  TempDir tmp("cache-sidecar");
  std::string idx_dir = tmp.File("imprints");
  ASSERT_TRUE(MakeDir(idx_dir).ok());
  auto table = MakeTable(8000, 34, Box(0, 0, 1000, 1000));
  auto shared_cache = std::make_shared<QueryResultCache>(32ull << 20);
  Polygon poly;
  poly.shell.points = {{100, 100}, {900, 200}, {700, 800}, {200, 600}};
  Geometry g(poly);

  EngineOptions opts;
  opts.num_threads = 1;
  opts.imprints_dir = idx_dir;
  opts.cache.budget_bytes = 32ull << 20;
  opts.cache.instance = shared_cache;

  std::vector<uint64_t> expect;
  {
    SpatialQueryEngine eng(table, opts);
    auto res = eng.SelectInGeometry(g);
    ASSERT_TRUE(res.ok());
    expect = res->row_ids;
    ASSERT_TRUE(PathExists(idx_dir + "/x.gim"));
  }

  // Corrupt x's sidecar. A fresh engine sharing the cache serves the
  // repeated query from the cache WITHOUT touching the sidecar, and its
  // first cache-missing query triggers the quarantine/rebuild — both
  // answers must be correct.
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(ReadFileBytes(idx_dir + "/x.gim", &bytes).ok());
  bytes[bytes.size() / 2] ^= 0xFF;
  ASSERT_TRUE(
      WriteFileBytes(idx_dir + "/x.gim", bytes.data(), bytes.size()).ok());
  {
    SpatialQueryEngine eng(table, opts);
    auto res = eng.SelectInGeometry(g);
    ASSERT_TRUE(res.ok());
    EXPECT_EQ(res->row_ids, expect);
    // A hit never reads the index, so the corrupt file is still in place.
    EXPECT_FALSE(PathExists(idx_dir + "/x.gim.quarantined"));
    // A miss runs the filter step: quarantine + transparent rebuild.
    auto miss = eng.SelectInBox(Box(0, 0, 500, 500));
    ASSERT_TRUE(miss.ok()) << miss.status().ToString();
    EXPECT_TRUE(PathExists(idx_dir + "/x.gim.quarantined"));
  }

  // And a cache-detached engine still agrees after the rebuild.
  EngineOptions off;
  off.num_threads = 1;
  off.imprints_dir = idx_dir;
  SpatialQueryEngine oracle(table, off);
  EXPECT_EQ(oracle.SelectInGeometry(g)->row_ids, expect);
}

// ---------------------------------------------------------------------------
// Concurrency: overlapping queries against one engine with a cache small
// enough to evict constantly. Every thread's every result must equal the
// cache-off ground truth. Runs under the TSan CI job.
// ---------------------------------------------------------------------------

TEST(CacheConcurrencyTest, ConcurrentQueriesMatchCacheOffUnderEvictions) {
  auto table = MakeTable(10000, 35, Box(0, 0, 1000, 1000));

  // Build a small workload and its ground truth with a cache-off engine.
  std::vector<Geometry> queries;
  Rng rng(99);
  for (int i = 0; i < 8; ++i) {
    double x = rng.UniformDouble(0, 700);
    double y = rng.UniformDouble(0, 700);
    if (i % 2 == 0) {
      queries.push_back(Geometry(Box(x, y, x + 250, y + 250)));
    } else {
      Polygon p;
      p.shell.points = {{x, y}, {x + 300, y + 40}, {x + 200, y + 280}};
      queries.push_back(Geometry(std::move(p)));
    }
  }
  EngineOptions off;
  off.num_threads = 1;
  SpatialQueryEngine oracle(table, off);
  std::vector<std::vector<uint64_t>> expect;
  for (const Geometry& g : queries) {
    auto res = oracle.SelectInGeometry(g);
    ASSERT_TRUE(res.ok());
    expect.push_back(res->row_ids);
  }

  // Tiny budget: entries thrash in and out while threads look up and
  // insert concurrently.
  EngineOptions opts;
  opts.num_threads = 1;
  opts.cache.budget_bytes = QueryResultCache::kShards * 4096;
  opts.cache.instance = std::make_shared<QueryResultCache>();
  SpatialQueryEngine eng(table, opts);

  constexpr int kThreads = 4;
  constexpr int kIterations = 12;
  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t]() {
      for (int i = 0; i < kIterations; ++i) {
        size_t q = (t + i) % queries.size();
        auto res = eng.SelectInGeometry(queries[q]);
        if (!res.ok() || res->row_ids != expect[q]) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(failures.load(), 0);
  cache::CacheStats stats = opts.cache.instance->Stats();
  EXPECT_GT(stats.TotalHits() + stats.TotalMisses(), 0u);
}

}  // namespace
}  // namespace geocol
