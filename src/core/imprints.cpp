#include "core/imprints.h"

#include <algorithm>
#include <limits>
#include <span>

#include "util/thread_pool.h"

namespace geocol {

namespace {

constexpr uint32_t kMaxCount = (1u << 30);  // headroom below the 31-bit cap

// Chunks below this many cache lines are not worth forking for.
constexpr uint64_t kMinParallelBuildLines = 1 << 12;

/// A maximal run of identical imprint vectors inside one build chunk.
struct VectorRun {
  uint64_t vec;
  uint64_t count;
};

}  // namespace

Result<ImprintsIndex> ImprintsIndex::Build(const Column& column,
                                           const ImprintsOptions& options,
                                           ThreadPool* pool) {
  if (column.empty()) {
    return Status::InvalidArgument("cannot build imprints on empty column");
  }
  if (options.cacheline_bytes < column.width() ||
      options.cacheline_bytes % column.width() != 0) {
    return Status::InvalidArgument("cacheline size incompatible with type width");
  }
  GEOCOL_ASSIGN_OR_RETURN(
      BinBounds bins,
      BinBounds::Sample(column, options.max_bins, options.sample_size,
                        options.seed));

  ImprintsIndex ix;
  ix.bins_ = bins;
  ix.values_per_line_ =
      static_cast<uint32_t>(options.cacheline_bytes / column.width());
  ix.num_rows_ = column.size();
  ix.num_lines_ = (ix.num_rows_ + ix.values_per_line_ - 1) / ix.values_per_line_;
  ix.built_epoch_ = column.epoch();
  ix.vectors_.reserve(ix.num_lines_ / 4 + 16);

  if (pool != nullptr && pool->num_threads() > 0 &&
      ix.num_lines_ >= kMinParallelBuildLines) {
    // Parallel build: workers binarise disjoint line chunks into maximal
    // runs of identical vectors; the dictionary is then stitched serially,
    // merging runs that touch across chunk seams. The emission rules below
    // reproduce the serial greedy encoding exactly (runs of >= 2 lines
    // become repeat entries, singleton runs coalesce into literal entries),
    // so parallel and serial builds are byte-identical.
    uint64_t num_chunks =
        std::min<uint64_t>(ix.num_lines_ / (kMinParallelBuildLines / 8),
                           (pool->num_threads() + 1) * 8);
    if (num_chunks < 2) num_chunks = 2;
    uint64_t chunk_lines = (ix.num_lines_ + num_chunks - 1) / num_chunks;
    num_chunks = (ix.num_lines_ + chunk_lines - 1) / chunk_lines;
    std::vector<std::vector<VectorRun>> chunk_runs(num_chunks);
    pool->ParallelFor(num_chunks, [&](size_t c) {
      uint64_t line_begin = c * chunk_lines;
      uint64_t line_end =
          std::min<uint64_t>(ix.num_lines_, line_begin + chunk_lines);
      std::vector<VectorRun>& runs = chunk_runs[c];
      DispatchDataType(column.type(), [&]<typename T>() {
        std::span<const T> values = column.Values<T>();
        for (uint64_t line = line_begin; line < line_end; ++line) {
          uint64_t first = line * ix.values_per_line_;
          uint64_t last = std::min<uint64_t>(first + ix.values_per_line_,
                                             ix.num_rows_);
          uint64_t v = 0;
          for (uint64_t i = first; i < last; ++i) {
            v |= uint64_t{1} << bins.BinOf(static_cast<double>(values[i]));
          }
          if (!runs.empty() && runs.back().vec == v) {
            ++runs.back().count;
          } else {
            runs.push_back({v, 1});
          }
        }
      });
    });

    auto emit = [&ix](uint64_t vec, uint64_t count) {
      while (count > 0) {
        uint64_t piece = std::min<uint64_t>(count, kMaxCount);
        count -= piece;
        if (piece >= 2) {
          ix.vectors_.push_back(vec);
          ix.dict_.push_back({static_cast<uint32_t>(piece), true});
        } else {
          ix.vectors_.push_back(vec);
          if (!ix.dict_.empty() && !ix.dict_.back().repeat &&
              ix.dict_.back().count < kMaxCount) {
            ++ix.dict_.back().count;
          } else {
            ix.dict_.push_back({1, false});
          }
        }
      }
    };
    VectorRun pending{0, 0};
    for (const auto& runs : chunk_runs) {
      for (const VectorRun& r : runs) {
        if (pending.count > 0 && pending.vec == r.vec) {
          pending.count += r.count;
        } else {
          if (pending.count > 0) emit(pending.vec, pending.count);
          pending = r;
        }
      }
    }
    if (pending.count > 0) emit(pending.vec, pending.count);
    return ix;
  }

  DispatchDataType(column.type(), [&]<typename T>() {
    std::span<const T> values = column.Values<T>();
    uint64_t prev_vector = 0;
    bool have_prev = false;
    for (uint64_t line = 0; line < ix.num_lines_; ++line) {
      uint64_t first = line * ix.values_per_line_;
      uint64_t last = std::min<uint64_t>(first + ix.values_per_line_,
                                         ix.num_rows_);
      uint64_t v = 0;
      for (uint64_t i = first; i < last; ++i) {
        v |= uint64_t{1} << bins.BinOf(static_cast<double>(values[i]));
      }
      if (have_prev && v == prev_vector && !ix.dict_.empty() &&
          ix.dict_.back().count < kMaxCount) {
        DictEntry& back = ix.dict_.back();
        if (back.repeat) {
          // Extend the run of identical vectors.
          ++back.count;
        } else if (back.count == 1) {
          // The single vector becomes a repeat group of two lines.
          back.repeat = true;
          back.count = 2;
        } else {
          // Detach the trailing vector from the literal run; it seeds a new
          // repeat group (the vector is already the last one stored).
          --back.count;
          ix.dict_.push_back({2, true});
        }
      } else {
        ix.vectors_.push_back(v);
        if (!ix.dict_.empty() && !ix.dict_.back().repeat &&
            ix.dict_.back().count < kMaxCount) {
          ++ix.dict_.back().count;
        } else {
          ix.dict_.push_back({1, false});
        }
        prev_vector = v;
        have_prev = true;
      }
    }
  });
  return ix;
}

Result<ImprintsIndex> ImprintsIndex::Restore(BinBounds bins,
                                             uint32_t values_per_line,
                                             uint64_t num_rows,
                                             uint64_t built_epoch,
                                             std::vector<uint64_t> vectors,
                                             std::vector<DictEntry> dict) {
  if (values_per_line == 0 || num_rows == 0) {
    return Status::Corruption("imprints restore: empty geometry");
  }
  uint64_t lines = (num_rows + values_per_line - 1) / values_per_line;
  uint64_t covered = 0, stored = 0;
  for (const DictEntry& e : dict) {
    if (e.count == 0) return Status::Corruption("imprints restore: zero run");
    covered += e.count;
    stored += e.repeat ? 1 : e.count;
  }
  if (covered != lines) {
    return Status::Corruption("imprints restore: dictionary covers " +
                              std::to_string(covered) + " of " +
                              std::to_string(lines) + " lines");
  }
  if (stored != vectors.size()) {
    return Status::Corruption("imprints restore: vector count mismatch");
  }
  ImprintsIndex ix;
  ix.bins_ = bins;
  ix.values_per_line_ = values_per_line;
  ix.num_rows_ = num_rows;
  ix.num_lines_ = lines;
  ix.built_epoch_ = built_epoch;
  ix.vectors_ = std::move(vectors);
  ix.dict_ = std::move(dict);
  return ix;
}

ImprintMask ImprintsIndex::MaskForRange(double lo, double hi) const {
  ImprintMask m;
  if (lo > hi) return m;  // empty query mask: nothing matches
  uint32_t nbins = bins_.num_bins();
  uint32_t bin_lo = bins_.BinOf(lo);
  uint32_t bin_hi = bins_.BinOf(hi);
  // Query mask: all bins from bin_lo to bin_hi inclusive.
  for (uint32_t b = bin_lo; b <= bin_hi && b < nbins; ++b) {
    m.query |= uint64_t{1} << b;
  }
  // Inner mask: bins strictly inside the query range. A boundary bin is
  // fully covered only when the query endpoint coincides with the bin edge;
  // we include bin_hi when hi equals its upper bound, and bin_lo when lo
  // lies at or below the previous bin's upper bound (i.e. lo is the bin's
  // open lower edge — only possible for bin 0 with lo == -inf, so in
  // practice the strict interior).
  for (uint32_t b = bin_lo + 1; b < bin_hi && b < nbins; ++b) {
    m.inner |= uint64_t{1} << b;
  }
  if (bin_hi < nbins && hi >= bins_.upper(bin_hi)) {
    m.inner |= uint64_t{1} << bin_hi;
  }
  if (bin_lo > 0 && lo <= bins_.upper(bin_lo - 1)) {
    // lo exactly on the open edge: every value of bin_lo is > upper(bin_lo-1)
    // >= lo only when lo < all bin values, which needs strict comparison;
    // since bins are (prev, cur] and lo <= prev bound, all bin values > lo.
    m.inner |= uint64_t{1} << bin_lo;
  } else if (bin_lo == 0 && lo <= -std::numeric_limits<double>::max()) {
    m.inner |= uint64_t{1};
  }
  // The inner mask may never admit bins outside the query mask.
  m.inner &= m.query;
  return m;
}

void ImprintsIndex::FilterRange(double lo, double hi, BitVector* candidates,
                                BitVector* full_lines) const {
  candidates->Resize(num_lines_);
  if (full_lines != nullptr) full_lines->Resize(num_lines_);
  FilterRangeRuns(lo, hi, [&](uint64_t first, uint64_t count, bool full) {
    candidates->SetRange(first, first + count);
    if (full && full_lines != nullptr) {
      full_lines->SetRange(first, first + count);
    }
  });
}

ImprintsStorage ImprintsIndex::Storage(uint64_t column_payload_bytes) const {
  ImprintsStorage s;
  s.num_lines = num_lines_;
  s.num_vectors = vectors_.size();
  s.num_dict_entries = dict_.size();
  s.vector_bytes = vectors_.size() * sizeof(uint64_t);
  s.dict_bytes = dict_.size() * sizeof(uint32_t);  // packed (count,repeat)
  s.bounds_bytes = bins_.num_bins() * sizeof(double);
  s.total_bytes = s.vector_bytes + s.dict_bytes + s.bounds_bytes;
  s.overhead_fraction =
      column_payload_bytes > 0
          ? static_cast<double>(s.total_bytes) / column_payload_bytes
          : 0.0;
  s.vectors_per_line =
      num_lines_ > 0 ? static_cast<double>(vectors_.size()) / num_lines_ : 0.0;
  return s;
}

}  // namespace geocol
