// Scalar reference implementations of every kernel in simd/kernels.h.
// These are the parity oracles: the SSE2/AVX2 translation units reuse them
// for remainder tails, and the scalar dispatch level binds them directly.
// The formulas mirror geom/predicates.cpp and geom/grid.h operation by
// operation — do not "simplify" an expression here without changing the
// scalar predicate the same way, or the bit-identical contract breaks.
#ifndef GEOCOL_SIMD_KERNELS_GENERIC_H_
#define GEOCOL_SIMD_KERNELS_GENERIC_H_

#include <algorithm>
#include <bit>
#include <cstring>

#include "simd/kernels.h"

namespace geocol {
namespace simd {
namespace generic {

template <typename T>
inline uint64_t RangeSelectBits(const T* values, size_t n, T lo, T hi,
                                uint64_t* out) {
  const size_t nwords = (n + 63) / 64;
  uint64_t selected = 0;
  for (size_t w = 0; w < nwords; ++w) {
    const size_t base = w * 64;
    const size_t m = n - base < 64 ? n - base : 64;
    uint64_t word = 0;
    for (size_t k = 0; k < m; ++k) {
      T v = values[base + k];
      word |= static_cast<uint64_t>(v >= lo && v <= hi) << k;
    }
    out[w] = word;
    selected += static_cast<uint64_t>(std::popcount(word));
  }
  return selected;
}

template <typename T>
inline void GatherDouble(const T* base, const uint64_t* rows, size_t n,
                         double* out) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = static_cast<double>(base[rows[i]]);
  }
}

inline void CellOf(const double* xs, const double* ys, size_t n,
                   const GridParams& g, uint64_t* cells) {
  const double colsd = static_cast<double>(g.cols);
  const double rowsd = static_cast<double>(g.rows);
  for (size_t i = 0; i < n; ++i) {
    double fx = (xs[i] - g.min_x) * g.inv_w;
    double fy = (ys[i] - g.min_y) * g.inv_h;
    // NaN and out-of-extent coordinates clamp to the edge cells; the
    // comparisons keep the float->int conversion in-range (never UB).
    int64_t cx = fx > 0.0 ? (fx < colsd ? static_cast<int64_t>(fx) : g.cols - 1)
                          : 0;
    int64_t cy = fy > 0.0 ? (fy < rowsd ? static_cast<int64_t>(fy) : g.rows - 1)
                          : 0;
    cells[i] = static_cast<uint64_t>(cy) * static_cast<uint64_t>(g.cols) +
               static_cast<uint64_t>(cx);
  }
}

// Mirrors PointInRing: per edge, the boundary test (Orient2D == 0 inside
// the segment bbox) and the even-odd crossing toggle. The loop is
// edge-major so the vector versions can share the per-edge scalar
// precomputation; &=/^= accumulation is order-independent, so the result
// equals the point-major scalar walk.
inline void RingMasks(const double* xs, const double* ys, size_t n,
                      const Point* pts, size_t npts, uint8_t* in_out,
                      uint8_t* edge_out) {
  std::memset(in_out, 0, n);
  std::memset(edge_out, 0, n);
  if (npts < 3) return;
  for (size_t e = 0, j = npts - 1; e < npts; j = e++) {
    const Point& a = pts[e];
    const Point& b = pts[j];
    const double dxab = b.x - a.x;
    const double dyab = b.y - a.y;
    const double mnx = std::min(a.x, b.x), mxx = std::max(a.x, b.x);
    const double mny = std::min(a.y, b.y), mxy = std::max(a.y, b.y);
    for (size_t i = 0; i < n; ++i) {
      const double px = xs[i], py = ys[i];
      const double pya = py - a.y;
      const double o = dxab * pya - dyab * (px - a.x);
      const bool on = o == 0.0 && px >= mnx && px <= mxx && py >= mny &&
                      py <= mxy;
      edge_out[i] |= static_cast<uint8_t>(on);
      const bool cross = (a.y > py) != (b.y > py);
      if (cross) {
        // cross implies a.y != b.y, so the division is well defined.
        const double x_cross = dxab * pya / dyab + a.x;
        in_out[i] ^= static_cast<uint8_t>(px < x_cross);
      }
    }
  }
  for (size_t i = 0; i < n; ++i) {
    in_out[i] = static_cast<uint8_t>((in_out[i] | edge_out[i]) != 0);
  }
}

inline void OnSegments(const double* xs, const double* ys, size_t n,
                       const Point* pts, size_t npts, uint8_t* out) {
  std::memset(out, 0, n);
  for (size_t s = 1; s < npts; ++s) {
    const Point& a = pts[s - 1];
    const Point& b = pts[s];
    const double dxab = b.x - a.x;
    const double dyab = b.y - a.y;
    const double mnx = std::min(a.x, b.x), mxx = std::max(a.x, b.x);
    const double mny = std::min(a.y, b.y), mxy = std::max(a.y, b.y);
    for (size_t i = 0; i < n; ++i) {
      const double px = xs[i], py = ys[i];
      const double o = dxab * (py - a.y) - dyab * (px - a.x);
      out[i] |= static_cast<uint8_t>(o == 0.0 && px >= mnx && px <= mxx &&
                                     py >= mny && py <= mxy);
    }
  }
}

// One segment of a min-accumulated distance walk; `a`/`b` play the same
// roles as in PointSegmentDistanceSquared(p, a, b).
inline void SegmentDist2Accum(const double* xs, const double* ys, size_t n,
                              const Point& a, const Point& b, double* best) {
  const double abx = b.x - a.x, aby = b.y - a.y;
  const double len2 = abx * abx + aby * aby;
  for (size_t i = 0; i < n; ++i) {
    const double px = xs[i], py = ys[i];
    double d;
    if (len2 == 0.0) {
      const double dx = px - a.x, dy = py - a.y;
      d = dx * dx + dy * dy;
    } else {
      double t = ((px - a.x) * abx + (py - a.y) * aby) / len2;
      t = std::clamp(t, 0.0, 1.0);
      const double projx = a.x + t * abx, projy = a.y + t * aby;
      const double dx = px - projx, dy = py - projy;
      d = dx * dx + dy * dy;
    }
    best[i] = d < best[i] ? d : best[i];  // std::min(best, d)
  }
}

inline void SegmentsDist2(const double* xs, const double* ys, size_t n,
                          const Point* pts, size_t npts, bool closed,
                          double* best) {
  if (npts == 0) return;
  if (closed) {
    // Closed rings pair pts[s] with the trailing vertex, exactly like
    // PointRingBoundaryDistanceSquared(p, ring) does.
    for (size_t s = 0, j = npts - 1; s < npts; j = s++) {
      SegmentDist2Accum(xs, ys, n, pts[s], pts[j], best);
    }
  } else {
    for (size_t s = 1; s < npts; ++s) {
      SegmentDist2Accum(xs, ys, n, pts[s - 1], pts[s], best);
    }
  }
}

inline void BoxContains(const double* xs, const double* ys, size_t n,
                        const Box& box, uint8_t* out) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = static_cast<uint8_t>(xs[i] >= box.min_x && xs[i] <= box.max_x &&
                                  ys[i] >= box.min_y && ys[i] <= box.max_y);
  }
}

}  // namespace generic

/// Fills `table` with the scalar reference kernels.
void BindScalarKernels(KernelTable* table);
/// Overlays the SSE2 kernels (no-op when not compiled for x86-64).
void BindSse2Kernels(KernelTable* table);
/// Overlays the AVX2 kernels (no-op when not compiled for x86-64).
void BindAvx2Kernels(KernelTable* table);

}  // namespace simd
}  // namespace geocol

#endif  // GEOCOL_SIMD_KERNELS_GENERIC_H_
