// Deterministic, fast pseudo-random generators for data synthesis and tests.
// All generators are seeded explicitly so every experiment is reproducible.
#ifndef GEOCOL_UTIL_RNG_H_
#define GEOCOL_UTIL_RNG_H_

#include <cstdint>

namespace geocol {

/// xoshiro256** by Blackman & Vigna — fast, high-quality 64-bit PRNG.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) {
    // SplitMix64 seeding avoids correlated low-entropy states.
    uint64_t z = seed;
    for (auto& si : s_) {
      z += 0x9E3779B97F4A7C15ULL;
      uint64_t x = z;
      x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
      x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
      si = x ^ (x >> 31);
    }
  }

  uint64_t Next() {
    uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be > 0.
  uint64_t Uniform(uint64_t bound) {
    // Lemire's multiply-shift rejection-free approximation is fine for the
    // bounds used here (data synthesis, not cryptography).
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(Next()) * bound) >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() { return (Next() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Standard normal via Marsaglia polar method.
  double NextGaussian() {
    if (has_spare_) {
      has_spare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = 2.0 * NextDouble() - 1.0;
      v = 2.0 * NextDouble() - 1.0;
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    double m = Sqrt(-2.0 * Log(s) / s);
    spare_ = v * m;
    has_spare_ = true;
    return u * m;
  }

  bool NextBool(double p = 0.5) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  static double Sqrt(double x);
  static double Log(double x);

  uint64_t s_[4];
  bool has_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace geocol

#include <cmath>
namespace geocol {
inline double Rng::Sqrt(double x) { return std::sqrt(x); }
inline double Rng::Log(double x) { return std::log(x); }
}  // namespace geocol

#endif  // GEOCOL_UTIL_RNG_H_
