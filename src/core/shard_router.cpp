#include "core/shard_router.h"

#include <algorithm>
#include <cstdio>
#include <thread>

#include "columns/types.h"
#include "telemetry/metrics.h"
#include "util/timer.h"

namespace geocol {

namespace {

uint32_t EffectiveThreads(uint32_t requested) {
  if (requested != 0) return requested;
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<uint32_t>(hw);
}

/// Index of the shard containing `row` given the base offsets.
size_t ShardIndexFor(const std::vector<uint64_t>& bases, uint64_t row) {
  size_t lo = 0, hi = bases.size();
  while (lo + 1 < hi) {
    size_t mid = (lo + hi) / 2;
    if (bases[mid] <= row) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

void AccumulateFilterStats(const ImprintScanStats& in, ImprintScanStats* out) {
  out->lines_total += in.lines_total;
  out->lines_candidate += in.lines_candidate;
  out->lines_full += in.lines_full;
  out->values_checked += in.values_checked;
  out->rows_selected += in.rows_selected;
  out->rows_full += in.rows_full;
  out->workers = std::max(out->workers, in.workers);
}

void AccumulateRefineStats(const RefinementStats& in, RefinementStats* out) {
  out->candidates += in.candidates;
  out->accepted += in.accepted;
  out->cells_total += in.cells_total;
  out->cells_nonempty += in.cells_nonempty;
  out->cells_inside += in.cells_inside;
  out->cells_outside += in.cells_outside;
  out->cells_boundary += in.cells_boundary;
  out->exact_tests += in.exact_tests;
  // Per-shard refinement grids have their own frames; a merged grid shape
  // would be meaningless, so the dimensions stay 0 for K > 1 (the
  // single-scanned-shard path copies stats verbatim instead).
  out->workers = std::max(out->workers, in.workers);
}

}  // namespace

ShardRouter::ShardRouter(std::shared_ptr<ShardedTable> table,
                         EngineOptions options)
    : table_(std::move(table)), options_(options) {
  uint32_t threads = EffectiveThreads(options_.num_threads);
  if (threads > 1) {
    // The calling thread participates in every parallel loop, so the pool
    // only needs threads-1 workers. Shard engines borrow this pool;
    // nested ParallelFor (scatter over shards, morsels within a shard) is
    // safe and keeps all workers busy.
    pool_ = std::make_unique<ThreadPool>(threads - 1);
  }
  shards_.reserve(table_->num_shards());
  bases_.reserve(table_->num_shards());
  for (size_t i = 0; i < table_->num_shards(); ++i) {
    const ShardSlice& slice = table_->shard(i);
    bases_.push_back(slice.base);
    shards_.push_back(std::make_unique<LocalShard>(
        slice, options_, table_->x_column(), table_->y_column(),
        pool_.get()));
  }
  cache_owner_ = options_.cache.instance;
  set_cache_budget(options_.cache.budget_bytes);
}

void ShardRouter::set_cache_budget(uint64_t budget_bytes) {
  if (budget_bytes == options_.cache.budget_bytes &&
      (budget_bytes == 0) == (cache_ == nullptr)) {
    return;
  }
  options_.cache.budget_bytes = budget_bytes;
  if (budget_bytes == 0) {
    cache_ = nullptr;
    return;
  }
  cache_ = cache_owner_ != nullptr ? cache_owner_.get()
                                   : &cache::QueryResultCache::Global();
  cache_->GrowBudget(budget_bytes);
}

uint64_t ShardRouter::IndexStorageBytes() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->IndexStorageBytes();
  return total;
}

Result<std::string> ShardRouter::SelectionKey(
    const Geometry& geometry, double buffer,
    const std::vector<AttributeRange>& thematic) const {
  cache::KeyBuilder kb("ssel");
  // The shard layout: a re-shard produces a new layout id (and, for
  // persisted layouts, a new generation), an append or in-place update to
  // any single shard bumps that shard's column epochs — either way the
  // key changes and stale entries age out by construction.
  kb.AppendU64(table_->layout_id());
  kb.AppendU64(table_->generation());
  kb.AppendU32(static_cast<uint32_t>(shards_.size()));
  kb.Append(table_->x_column());
  kb.Append(table_->y_column());
  for (const auto& shard : shards_) {
    GEOCOL_ASSIGN_OR_RETURN(uint64_t xe,
                            shard->ColumnEpoch(table_->x_column()));
    GEOCOL_ASSIGN_OR_RETURN(uint64_t ye,
                            shard->ColumnEpoch(table_->y_column()));
    kb.AppendU64(xe);
    kb.AppendU64(ye);
  }
  kb.AppendGeometry(geometry);
  kb.AppendDouble(buffer);
  kb.AppendU64(thematic.size());
  for (const AttributeRange& attr : thematic) {
    kb.Append(attr.column);
    for (const auto& shard : shards_) {
      GEOCOL_ASSIGN_OR_RETURN(uint64_t e, shard->ColumnEpoch(attr.column));
      kb.AppendU64(e);
    }
    kb.AppendDouble(attr.lo);
    kb.AppendDouble(attr.hi);
  }
  // Result-shaping knobs, mirroring the engine's selection key.
  kb.AppendU32(options_.use_imprints ? 1u : 0u);
  kb.AppendU32(num_effective_threads());
  kb.AppendU32(options_.imprints.max_bins);
  kb.AppendU32(options_.imprints.sample_size);
  kb.AppendU64(options_.imprints.seed);
  kb.AppendU32(options_.imprints.cacheline_bytes);
  kb.AppendU64(options_.refine.target_points_per_cell);
  kb.AppendU32(options_.refine.max_cells_per_axis);
  kb.AppendU32(options_.refine.use_grid ? 1u : 0u);
  return kb.Take();
}

Result<SelectionResult> ShardRouter::SelectInBox(const Box& box) {
  return Execute(Geometry(box), 0.0, {});
}

Result<SelectionResult> ShardRouter::SelectInGeometry(
    const Geometry& geometry) {
  return Execute(geometry, 0.0, {});
}

Result<SelectionResult> ShardRouter::Select(
    const Geometry& geometry, double buffer,
    const std::vector<AttributeRange>& thematic) {
  return Execute(geometry, buffer, thematic);
}

Result<SelectionResult> ShardRouter::Execute(
    const Geometry& geometry, double buffer,
    const std::vector<AttributeRange>& thematic) {
  SelectionResult result;
  const uint64_t total_rows = table_->num_rows();
  if (total_rows == 0) return result;

  Box env = geometry.Envelope();
  if (buffer > 0) env = env.Expanded(buffer);
  if (env.empty()) return result;

  Timer query_timer;

  // ---- Cache tier (a): an exact repeat against this exact shard layout
  // replays the merged row ids and stats.
  std::string cache_key;
  if (cache_ != nullptr) {
    GEOCOL_ASSIGN_OR_RETURN(cache_key,
                            SelectionKey(geometry, buffer, thematic));
    if (auto hit = cache_->LookupSelection(cache_key)) {
      result.row_ids = hit->row_ids;
      result.filter_x = hit->filter_x;
      result.filter_y = hit->filter_y;
      result.refine = hit->refine;
      int32_t span =
          result.profile.Add("cache.hit", query_timer.ElapsedNanos(),
                             total_rows, result.row_ids.size());
      result.profile.AddAttr(span, "cache_hit", "selection");
      return result;
    }
  }
  auto store_selection = [&]() {
    if (cache_ == nullptr) return;
    if (!cache_->ShouldAdmit(cache::Tier::kSelection, cache_key,
                             result.row_ids.size() * sizeof(uint64_t))) {
      return;
    }
    auto value = std::make_shared<cache::CachedSelection>();
    value->row_ids = result.row_ids;
    value->filter_x = result.filter_x;
    value->filter_y = result.filter_y;
    value->refine = result.refine;
    cache_->InsertSelection(cache_key, std::move(value));
  };

  // ---- Prune: classify every shard against the query envelope before
  // any imprint is consulted or built. Three outcomes:
  //   pruned  — bbox misses the envelope; the shard contributes nothing.
  //   covered — an unbuffered-equivalent box query fully contains the
  //             shard's bbox and there are no thematic filters, so every
  //             row qualifies (bbox-as-zonemap): the shard's full id range
  //             is written straight into the merged result without
  //             touching a single column. A covered shard contributes no
  //             filter/refine stats — nothing was scanned.
  //   scanned — everything else runs the shard engine's filter + refine.
  // Pruning is the headline win of sharding: a clustered viewport query
  // touches a handful of shards and never allocates whole-table state.
  GEOCOL_METRIC_COUNTER(c_pruned, "geocol_shards_pruned_total");
  GEOCOL_METRIC_COUNTER(c_scanned, "geocol_shards_scanned_total");
  GEOCOL_METRIC_COUNTER(c_covered, "geocol_shards_covered_total");
  // A box with a positive buffer covers a shard iff the raw box does (the
  // buffer only enlarges the qualifying region).
  const bool coverable = thematic.empty() && geometry.is_box();
  struct ShardWork {
    size_t shard;
    int32_t branch;  ///< index into branches, or -1 for a covered shard
  };
  std::vector<ShardWork> work;
  std::vector<size_t> scanned;
  size_t num_covered = 0;
  work.reserve(shards_.size());
  scanned.reserve(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    const Box& bbox = shards_[i]->bbox();
    if (!bbox.Intersects(env)) continue;
    if (coverable && geometry.box().Contains(bbox)) {
      work.push_back({i, -1});
      ++num_covered;
    } else {
      work.push_back({i, static_cast<int32_t>(scanned.size())});
      scanned.push_back(i);
    }
  }
  // Covered shards count as scanned in the headline counters (they were
  // answered, not skipped), and separately in the covered counter.
  c_scanned.Increment(work.size());
  c_pruned.Increment(shards_.size() - work.size());
  c_covered.Increment(num_covered);

  int32_t route_span = result.profile.OpenSpan("shard.route");

  // ---- Scatter: each surviving shard runs its own two-step filter +
  // refine into branch-local state; all shard engines share one pool, so
  // morsels from different shards interleave freely.
  struct ShardBranch {
    SelectionResult sel;
    QueryProfile profile;
    Status status;
  };
  std::vector<ShardBranch> branches(scanned.size());
  auto run_shard = [&](size_t j) {
    const size_t s = scanned[j];
    ShardBranch& b = branches[j];
    int32_t span = b.profile.OpenSpan("shard.scan");
    b.profile.AddAttr(span, "shard", static_cast<uint64_t>(s));
    auto r = shards_[s]->Select(geometry, buffer, thematic);
    b.status = r.status();
    if (r.ok()) {
      b.sel = std::move(*r);
      b.profile.Append(b.sel.profile);
      char detail[64];
      std::snprintf(detail, sizeof(detail), "shard %zu base=%llu", s,
                    static_cast<unsigned long long>(bases_[s]));
      b.profile.CloseSpan(shards_[s]->num_rows(), b.sel.row_ids.size(),
                          detail);
    } else {
      b.profile.CloseSpan(0, 0);
    }
  };
  if (pool_ != nullptr && branches.size() > 1) {
    pool_->ParallelFor(branches.size(), run_shard);
  } else {
    for (size_t j = 0; j < branches.size(); ++j) run_shard(j);
  }
  for (const ShardBranch& b : branches) {
    GEOCOL_RETURN_NOT_OK(b.status);
  }

  // ---- Gather: merge in shard order. Shards are contiguous runs of the
  // Hilbert-sorted row space, so emitting base-offset local ids (or, for a
  // covered shard, the shard's whole id range) in shard order yields the
  // ascending global id list the unsharded engine over the sorted table
  // produces. Stats: a single scanned shard's stats pass through verbatim
  // (making K = 1 bit-identical to unsharded as long as the query didn't
  // cover the shard); multiple shards merge field-wise in shard order;
  // covered shards contribute nothing.
  uint64_t merged = 0;
  for (const ShardWork& w : work) {
    merged += w.branch < 0 ? shards_[w.shard]->num_rows()
                           : branches[w.branch].sel.row_ids.size();
  }
  result.row_ids.resize(merged);
  uint64_t* out = result.row_ids.data();
  for (const ShardWork& w : work) {
    const uint64_t base = bases_[w.shard];
    if (w.branch < 0) {
      const uint64_t rows = shards_[w.shard]->num_rows();
      for (uint64_t r = 0; r < rows; ++r) out[r] = base + r;
      out += rows;
      int32_t span = result.profile.Add("shard.covered", 0, rows, rows);
      result.profile.AddAttr(span, "shard",
                             static_cast<uint64_t>(w.shard));
      continue;
    }
    const ShardBranch& b = branches[w.branch];
    const uint64_t* in = b.sel.row_ids.data();
    const size_t n = b.sel.row_ids.size();
    for (size_t i = 0; i < n; ++i) out[i] = base + in[i];
    out += n;
    result.profile.Append(b.profile);
    if (branches.size() == 1 && num_covered == 0) {
      result.filter_x = b.sel.filter_x;
      result.filter_y = b.sel.filter_y;
      result.refine = b.sel.refine;
    } else {
      AccumulateFilterStats(b.sel.filter_x, &result.filter_x);
      AccumulateFilterStats(b.sel.filter_y, &result.filter_y);
      AccumulateRefineStats(b.sel.refine, &result.refine);
    }
  }
  char detail[96];
  std::snprintf(detail, sizeof(detail),
                "scanned %zu/%zu shards (%zu pruned, %zu covered)",
                work.size(), shards_.size(), shards_.size() - work.size(),
                num_covered);
  result.profile.CloseSpan(total_rows, result.row_ids.size(), detail);
  result.profile.AddAttr(route_span, "shards_total",
                         static_cast<uint64_t>(shards_.size()));
  result.profile.AddAttr(route_span, "shards_scanned",
                         static_cast<uint64_t>(work.size()));
  result.profile.AddAttr(route_span, "shards_pruned",
                         static_cast<uint64_t>(shards_.size() - work.size()));
  result.profile.AddAttr(route_span, "shards_covered",
                         static_cast<uint64_t>(num_covered));
  store_selection();
  return result;
}

Result<double> ShardRouter::AggregateGlobalRows(
    const std::vector<uint64_t>& rows, const std::string& column,
    AggKind kind, ThreadPool* pool) const {
  if (kind == AggKind::kCount) return static_cast<double>(rows.size());
  std::vector<ColumnPtr> columns;
  columns.reserve(shards_.size());
  for (const auto& shard : shards_) {
    GEOCOL_ASSIGN_OR_RETURN(ColumnPtr col, shard->GetColumn(column));
    columns.push_back(std::move(col));
  }
  double out = std::nan("");
  if (rows.empty()) return out;
  DispatchDataType(columns[0]->type(), [&]<typename T>() {
    std::vector<std::span<const T>> spans;
    spans.reserve(columns.size());
    for (const ColumnPtr& col : columns) spans.push_back(col->Values<T>());
    out = AggregateValues<T>(rows, kind, pool, [&](uint64_t r) {
      size_t s = ShardIndexFor(bases_, r);
      return spans[s][r - bases_[s]];
    });
  });
  return out;
}

Result<double> ShardRouter::Aggregate(
    const Geometry& geometry, double buffer,
    const std::vector<AttributeRange>& thematic, const std::string& column,
    AggKind kind) {
  // Cache tier (c): selection key + the aggregated column's per-shard
  // epochs + the aggregate kind. COUNT falls out of tier (a).
  std::string agg_key;
  if (cache_ != nullptr && kind != AggKind::kCount) {
    GEOCOL_ASSIGN_OR_RETURN(std::string sel_key,
                            SelectionKey(geometry, buffer, thematic));
    cache::KeyBuilder kb("agg");
    kb.Append(sel_key);
    kb.Append(column);
    for (const auto& shard : shards_) {
      GEOCOL_ASSIGN_OR_RETURN(uint64_t e, shard->ColumnEpoch(column));
      kb.AppendU64(e);
    }
    kb.AppendU32(static_cast<uint32_t>(kind));
    agg_key = kb.Take();
    double cached;
    if (cache_->LookupAggregate(agg_key, &cached)) return cached;
  }
  GEOCOL_ASSIGN_OR_RETURN(SelectionResult sel,
                          Execute(geometry, buffer, thematic));
  if (kind == AggKind::kCount) {
    return static_cast<double>(sel.row_ids.size());
  }
  GEOCOL_ASSIGN_OR_RETURN(
      double value, AggregateGlobalRows(sel.row_ids, column, kind,
                                        pool_.get()));
  if (cache_ != nullptr) cache_->InsertAggregate(agg_key, value);
  return value;
}

Result<ShardedColumnReader> ShardedColumnReader::Make(
    const ShardRouter& router, const std::string& column) {
  ShardedColumnReader reader;
  const ShardedTable& table = router.table();
  reader.columns_.reserve(table.num_shards());
  reader.bases_.reserve(table.num_shards());
  for (size_t i = 0; i < table.num_shards(); ++i) {
    GEOCOL_ASSIGN_OR_RETURN(ColumnPtr col,
                            table.shard(i).table->GetColumn(column));
    reader.columns_.push_back(std::move(col));
    reader.bases_.push_back(table.shard(i).base);
  }
  return reader;
}

double ShardedColumnReader::GetDouble(uint64_t global_row) const {
  size_t s = ShardIndexFor(bases_, global_row);
  return columns_[s]->GetDouble(global_row - bases_[s]);
}

}  // namespace geocol
