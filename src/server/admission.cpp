#include "server/admission.h"

#include <algorithm>

namespace geocol {
namespace server {

void QueryTask::Complete(Status st, sql::ResultSet rs) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    status = std::move(st);
    result = std::move(rs);
    done_ = true;
  }
  cv_.notify_all();
}

void QueryTask::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return done_; });
}

AdmissionQueue::Admit AdmissionQueue::TryPush(TaskPtr task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return Admit::kClosed;
    if (queue_.size() >= capacity_) return Admit::kFull;
    queue_.push_back(std::move(task));
    max_depth_ = std::max(max_depth_, queue_.size());
  }
  cv_.notify_one();
  return Admit::kAdmitted;
}

TaskPtr AdmissionQueue::PopBlocking() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return closed_ || !queue_.empty(); });
  if (queue_.empty()) return nullptr;
  TaskPtr task = std::move(queue_.front());
  queue_.pop_front();
  return task;
}

std::vector<TaskPtr> AdmissionQueue::ExtractBatchGroup(uintptr_t key,
                                                       size_t max_tasks) {
  std::vector<TaskPtr> group;
  if (key == 0 || max_tasks == 0) return group;
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = queue_.begin();
       it != queue_.end() && group.size() < max_tasks;) {
    if ((*it)->batch_key == key) {
      group.push_back(std::move(*it));
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
  return group;
}

void AdmissionQueue::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

void AdmissionQueue::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  closed_ = false;
  queue_.clear();
  max_depth_ = 0;
}

size_t AdmissionQueue::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

size_t AdmissionQueue::max_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return max_depth_;
}

}  // namespace server
}  // namespace geocol
