// Column compression codec tests: exact round trips per codec and type,
// auto-selection, corruption handling, and the compressed table directory.
#include <gtest/gtest.h>

#include <cstring>

#include "columns/compression.h"
#include "pointcloud/generator.h"
#include "util/binary_io.h"
#include "util/rng.h"
#include "util/tempdir.h"

namespace geocol {
namespace {

void ExpectColumnsEqual(const Column& a, const Column& b) {
  ASSERT_EQ(a.type(), b.type());
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(std::memcmp(a.raw_data(), b.raw_data(), a.raw_size_bytes()), 0);
}

void RoundTrip(const Column& col, ColumnCodec codec,
               ColumnCodec expect_chosen = ColumnCodec::kAuto) {
  CompressionStats stats;
  auto data = CompressColumn(col, codec, &stats);
  ASSERT_TRUE(data.ok());
  if (expect_chosen != ColumnCodec::kAuto) {
    EXPECT_EQ(stats.codec, expect_chosen)
        << "expected " << ColumnCodecName(expect_chosen) << " got "
        << ColumnCodecName(stats.codec);
  }
  auto back = DecompressColumn(*data, col.name());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  ExpectColumnsEqual(col, **back);
}

TEST(CompressionTest, FileStatsReportOnDiskSize) {
  TempDir tmp;
  std::vector<int32_t> vals(1000);
  for (size_t i = 0; i < vals.size(); ++i) vals[i] = static_cast<int32_t>(i);
  auto col = Column::FromVector("c", vals);
  std::string path = tmp.File("c.gcz");
  CompressionStats stats;
  ASSERT_TRUE(
      WriteCompressedColumnFile(*col, path, ColumnCodec::kAuto, &stats).ok());
  // compressed_bytes must count the whole file, CRC footer included.
  auto size = FileSizeBytes(path);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(stats.compressed_bytes, *size);
}

TEST(CompressionTest, RawRoundTripAllTypes) {
  Rng rng(201);
  for (int t = 0; t < kNumDataTypes; ++t) {
    auto col = std::make_shared<Column>("c", static_cast<DataType>(t));
    DispatchDataType(col->type(), [&]<typename T>() {
      for (int i = 0; i < 1000; ++i) {
        col->Append<T>(static_cast<T>(rng.UniformInt(-100, 100)));
      }
    });
    RoundTrip(*col, ColumnCodec::kRaw, ColumnCodec::kRaw);
  }
}

TEST(CompressionTest, RleRoundTripAndWins) {
  // Classification-like data: long runs of few values.
  std::vector<uint8_t> vals;
  Rng rng(202);
  while (vals.size() < 50000) {
    uint8_t v = static_cast<uint8_t>(rng.Uniform(6));
    size_t run = 50 + rng.Uniform(500);
    for (size_t i = 0; i < run; ++i) vals.push_back(v);
  }
  auto col = Column::FromVector("classification", vals);
  RoundTrip(*col, ColumnCodec::kRle, ColumnCodec::kRle);
  CompressionStats stats;
  auto data = CompressColumn(*col, ColumnCodec::kAuto, &stats);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(stats.codec, ColumnCodec::kRle);
  EXPECT_GT(stats.Ratio(), 10.0);
}

TEST(CompressionTest, ForRoundTripAndWinsOnBoundedInts) {
  // Intensity-like: uniform in a small range, no run structure.
  std::vector<uint16_t> vals(50000);
  Rng rng(203);
  for (auto& v : vals) v = static_cast<uint16_t>(100 + rng.Uniform(150));
  auto col = Column::FromVector("intensity", vals);
  RoundTrip(*col, ColumnCodec::kFor, ColumnCodec::kFor);
  CompressionStats stats;
  auto data = CompressColumn(*col, ColumnCodec::kAuto, &stats);
  ASSERT_TRUE(data.ok());
  // 150 distinct values fit in 8 bits vs 16 raw.
  EXPECT_GT(stats.Ratio(), 1.5);
}

TEST(CompressionTest, DeltaRoundTripAndWinsOnSortedData) {
  std::vector<int64_t> vals(50000);
  Rng rng(204);
  int64_t v = -1000000;
  for (auto& x : vals) {
    v += static_cast<int64_t>(rng.Uniform(20));
    x = v;
  }
  auto col = Column::FromVector("sorted", vals);
  RoundTrip(*col, ColumnCodec::kDelta, ColumnCodec::kDelta);
  CompressionStats stats;
  auto data = CompressColumn(*col, ColumnCodec::kAuto, &stats);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(stats.codec, ColumnCodec::kDelta);
  EXPECT_GT(stats.Ratio(), 8.0);  // ~5 bits/value vs 64
}

TEST(CompressionTest, FloatColumnsRoundTripExactly) {
  Rng rng(205);
  std::vector<double> vals(20000);
  for (auto& v : vals) v = rng.NextGaussian() * 1e6;
  vals[7] = 0.1 + 0.2;  // classic non-representable value
  vals[8] = -0.0;
  auto col = Column::FromVector("d", vals);
  for (ColumnCodec codec : {ColumnCodec::kRaw, ColumnCodec::kRle,
                            ColumnCodec::kFor, ColumnCodec::kDelta,
                            ColumnCodec::kAuto}) {
    RoundTrip(*col, codec);
  }
}

TEST(CompressionTest, NegativeValuesAllCodecs) {
  std::vector<int32_t> vals = {-2000000000, -1, 0, 1, 2000000000, -5, -5, -5};
  auto col = Column::FromVector("i", vals);
  for (ColumnCodec codec : {ColumnCodec::kRaw, ColumnCodec::kRle,
                            ColumnCodec::kFor, ColumnCodec::kDelta}) {
    RoundTrip(*col, codec);
  }
}

TEST(CompressionTest, EmptyColumn) {
  Column col("e", DataType::kFloat32);
  RoundTrip(col, ColumnCodec::kAuto, ColumnCodec::kRaw);
}

TEST(CompressionTest, SingleValue) {
  auto col = Column::FromVector<uint64_t>("one", {42});
  for (ColumnCodec codec : {ColumnCodec::kRaw, ColumnCodec::kRle,
                            ColumnCodec::kFor, ColumnCodec::kDelta}) {
    RoundTrip(*col, codec);
  }
}

TEST(CompressionTest, ConstantColumnTiny) {
  auto col = Column::FromVector<double>("k", std::vector<double>(100000, 3.14));
  CompressionStats stats;
  auto data = CompressColumn(*col, ColumnCodec::kAuto, &stats);
  ASSERT_TRUE(data.ok());
  EXPECT_LT(stats.compressed_bytes, 200u) << "constant column must collapse";
  auto back = DecompressColumn(*data, "k");
  ASSERT_TRUE(back.ok());
  ExpectColumnsEqual(*col, **back);
}

TEST(CompressionTest, CorruptInputsRejected) {
  auto col = Column::FromVector<int32_t>("c", {1, 2, 3, 4});
  auto data = CompressColumn(*col, ColumnCodec::kDelta);
  ASSERT_TRUE(data.ok());
  // Bad magic.
  {
    auto bad = *data;
    bad[0] = 'X';
    EXPECT_FALSE(DecompressColumn(bad, "c").ok());
  }
  // Bad codec byte.
  {
    auto bad = *data;
    bad[5] = 99;
    EXPECT_FALSE(DecompressColumn(bad, "c").ok());
  }
  // Truncated payload.
  {
    auto bad = *data;
    bad.resize(bad.size() - 2);
    EXPECT_FALSE(DecompressColumn(bad, "c").ok());
  }
  // Absurd count.
  {
    auto bad = *data;
    uint64_t huge = uint64_t{1} << 50;
    std::memcpy(bad.data() + 6, &huge, 8);
    EXPECT_FALSE(DecompressColumn(bad, "c").ok());
  }
}

TEST(CompressionTest, LasColumnsCompressWell) {
  // The §3.1 claim on real-ish survey data: the flat table's columns are
  // compressible; acquisition-ordered coordinates delta-compress, flags
  // run-length-compress.
  AhnGeneratorOptions opts;
  opts.extent = Box(85000, 444000, 85150, 444150);
  AhnGenerator gen(opts);
  auto table = *gen.GenerateTable(60000);
  uint64_t raw = 0, compressed = 0;
  for (const auto& col : table->columns()) {
    CompressionStats stats;
    auto data = CompressColumn(*col, ColumnCodec::kAuto, &stats);
    ASSERT_TRUE(data.ok()) << col->name();
    raw += stats.uncompressed_bytes;
    compressed += stats.compressed_bytes;
    auto back = DecompressColumn(*data, col->name());
    ASSERT_TRUE(back.ok()) << col->name();
    ExpectColumnsEqual(*col, **back);
  }
  EXPECT_GT(static_cast<double>(raw) / compressed, 2.0)
      << "whole-table compression ratio should exceed 2x";
}

TEST(CompressedTableDirTest, RoundTrip) {
  TempDir tmp;
  AhnGeneratorOptions opts;
  opts.extent = Box(85000, 444000, 85080, 444080);
  AhnGenerator gen(opts);
  auto table = *gen.GenerateTable(15000);
  uint64_t bytes = 0;
  ASSERT_TRUE(WriteCompressedTableDir(*table, tmp.File("tbl"), &bytes).ok());
  EXPECT_GT(bytes, 0u);
  EXPECT_LT(bytes, table->DataBytes());
  auto back = ReadCompressedTableDir(tmp.File("tbl"));
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->num_columns(), table->num_columns());
  ASSERT_EQ(back->num_rows(), table->num_rows());
  for (size_t c = 0; c < table->num_columns(); ++c) {
    ExpectColumnsEqual(*table->column(c), *back->column(c));
  }
}

TEST(CompressedTableDirTest, MissingDirFails) {
  EXPECT_FALSE(ReadCompressedTableDir("/nonexistent/dir").ok());
}

TEST(CompressionTest, CodecNames) {
  EXPECT_STREQ(ColumnCodecName(ColumnCodec::kRaw), "raw");
  EXPECT_STREQ(ColumnCodecName(ColumnCodec::kRle), "rle");
  EXPECT_STREQ(ColumnCodecName(ColumnCodec::kFor), "for");
  EXPECT_STREQ(ColumnCodecName(ColumnCodec::kDelta), "delta");
}

}  // namespace
}  // namespace geocol
