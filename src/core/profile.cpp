#include "core/profile.h"

#include <cstdio>

namespace geocol {

int64_t QueryProfile::TotalNanos() const {
  int64_t total = 0;
  for (const auto& op : ops_) total += op.nanos;
  return total;
}

std::string QueryProfile::ToString() const {
  std::string out;
  char line[512];
  for (const auto& op : ops_) {
    char workers[16] = "";
    if (op.workers > 1) {
      std::snprintf(workers, sizeof(workers), " x%u", op.workers);
    }
    std::snprintf(line, sizeof(line),
                  "  %-28s %10.3f ms%s  %12llu -> %-12llu %s\n",
                  op.name.c_str(), op.nanos / 1e6, workers,
                  static_cast<unsigned long long>(op.rows_in),
                  static_cast<unsigned long long>(op.rows_out),
                  op.detail.c_str());
    out += line;
  }
  std::snprintf(line, sizeof(line), "  %-28s %10.3f ms\n", "TOTAL",
                TotalNanos() / 1e6);
  out += line;
  return out;
}

}  // namespace geocol
