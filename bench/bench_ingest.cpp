// E15: live ingestion under queries (DESIGN.md §13).
//
// Two measurements over the same AHN-like survey:
//   imprints — incremental index maintenance vs full rebuild. A tail of
//              1–10% of the base rows is appended copy-on-write
//              (Column::CloneAppend); the manager extends the cached base
//              index over the tail (ImprintsIndex::ExtendAppend + stitch
//              verification) while the baseline rebuilds from scratch.
//              Acceptance bar: incremental >= 3x faster for tails <= 10%.
//   e2e      — a LiveTable ingest loop: staged batches published as
//              atomic epochs while a pinned reader queries a viewport,
//              reporting commit latency and the pinned-query latency.
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "core/imprint_scan.h"
#include "core/imprints.h"
#include "core/live_table.h"
#include "core/table_appender.h"
#include "util/rng.h"

using namespace geocol;
using namespace geocol::bench;

int main(int argc, char** argv) {
  geocol::bench::InitBench(argc, argv);
  const uint64_t n = BenchPoints(2000000);
  Banner("E15: live ingestion (incremental imprints, epoch publish)",
         "incremental imprint maintenance vs rebuild, epoch commit latency");

  auto table = GenerateSurvey(n);
  const Box extent = SurveyOptions(n).extent;
  const uint64_t rows = table->num_rows();
  std::printf("survey: %llu points\n", static_cast<unsigned long long>(rows));

  ColumnPtr base = table->column("x");
  const ColumnStats& bs = base->Stats();

  TablePrinter out({"tail", "tail rows", "rebuild ms", "incremental ms",
                    "speedup"},
                   14);
  double worst_speedup = 1e300;
  for (double frac : {0.01, 0.02, 0.05, 0.10}) {
    const size_t tail_n = static_cast<size_t>(frac * static_cast<double>(rows));
    Rng rng(static_cast<uint64_t>(frac * 1000));
    std::vector<double> tail(tail_n);
    for (size_t i = 0; i < tail_n; ++i) {
      tail[i] = rng.UniformDouble(bs.min, bs.max);
    }

    // Baseline: from-scratch build over base + tail.
    ColumnPtr appended = *Column::CloneAppend(base, tail.data(), tail_n);
    double rebuild_ms = TimeMs([&] {
      auto ix = ImprintsIndex::Build(*appended);
      if (!ix.ok()) {
        std::fprintf(stderr, "rebuild failed: %s\n",
                     ix.status().ToString().c_str());
        std::exit(1);
      }
    });

    // Incremental: the manager holds the base index; each rep extends it
    // over a FRESH CloneAppend column (manager results are cached per
    // column object, so reuse would measure a hash lookup).
    ImprintManager mgr;
    auto warm = mgr.GetOrBuild(base);
    if (!warm.ok()) {
      std::fprintf(stderr, "base build failed: %s\n",
                   warm.status().ToString().c_str());
      return 1;
    }
    const int reps = BenchReps();
    std::vector<ColumnPtr> fresh(static_cast<size_t>(reps));
    for (auto& c : fresh) c = *Column::CloneAppend(base, tail.data(), tail_n);
    size_t it = 0;
    double inc_ms = TimeMs(
        [&] {
          auto ix = mgr.GetOrBuild(fresh[it++]);
          if (!ix.ok()) {
            std::fprintf(stderr, "incremental failed: %s\n",
                         ix.status().ToString().c_str());
            std::exit(1);
          }
        },
        reps);

    double speedup = rebuild_ms / inc_ms;
    worst_speedup = std::min(worst_speedup, speedup);
    char tail_cell[16];
    std::snprintf(tail_cell, sizeof(tail_cell), "%.0f%%", frac * 100);
    out.Row({tail_cell, TablePrinter::Int(tail_n),
             TablePrinter::Num(rebuild_ms, 2), TablePrinter::Num(inc_ms, 2),
             TablePrinter::Num(speedup, 2)});
  }

  // End-to-end: LiveTable epoch publishes under a pinned reader.
  std::printf("\n");
  TablePrinter e2e({"batch rows", "commit ms", "pinned query ms", "epoch"},
                   15);
  LiveTableOptions lopts;
  auto live = LiveTable::Create(table, lopts);
  if (!live.ok()) {
    std::fprintf(stderr, "live table: %s\n", live.status().ToString().c_str());
    return 1;
  }
  const size_t batch_rows = static_cast<size_t>(rows / 100);
  FlatTable batch("pc", table->schema());
  for (size_t i = 0; i < batch.num_columns(); ++i) {
    batch.column(i)->AppendRaw(table->column(i)->raw_data(), batch_rows);
  }
  double side = extent.width() * 0.05;
  Box viewport(extent.min_x, extent.min_y, extent.min_x + side,
               extent.min_y + side);

  // Warm the epoch-0 imprints so commit timings measure maintenance, not
  // the first-build cost.
  EpochSnapshot pinned = (*live)->Pin();
  (void)pinned.engine->SelectInBox(viewport);

  double commit_ms = TimeMs([&] {
    TableAppender app(*live);
    if (!app.StageBatch(batch).ok() || !app.Commit().ok()) {
      std::fprintf(stderr, "commit failed\n");
      std::exit(1);
    }
  });
  // The pinned epoch answers at pre-ingest cost regardless of the
  // commits that landed meanwhile.
  double pinned_ms = TimeMs([&] {
    auto r = pinned.engine->SelectInBox(viewport);
    if (!r.ok()) std::exit(1);
  });
  e2e.Row({TablePrinter::Int(batch_rows), TablePrinter::Num(commit_ms, 2),
           TablePrinter::Num(pinned_ms, 2),
           TablePrinter::Int((*live)->epoch())});

  std::printf(
      "\nacceptance: incremental imprint maintenance >= 3x faster than "
      "full rebuild for tail appends <= 10%% (worst observed: %.2fx)\n",
      worst_speedup);
  return worst_speedup >= 3.0 ? 0 : 1;
}
