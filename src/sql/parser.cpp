#include "sql/parser.h"

#include <algorithm>
#include <cctype>

#include "geom/wkt.h"
#include "sql/lexer.h"

namespace geocol {
namespace sql {

namespace {

std::string Lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return s;
}

class Parser {
 public:
  explicit Parser(std::vector<Token> toks) : toks_(std::move(toks)) {}

  Result<SelectStmt> ParseStatement() {
    SelectStmt stmt;
    if (PeekKeyword("EXPLAIN")) {
      Advance();
      stmt.explain = true;
      if (EatKeyword("ANALYZE")) stmt.analyze = true;
    }
    GEOCOL_RETURN_NOT_OK(ExpectKeyword("SELECT"));
    GEOCOL_RETURN_NOT_OK(ParseSelectList(&stmt));
    GEOCOL_RETURN_NOT_OK(ExpectKeyword("FROM"));
    GEOCOL_ASSIGN_OR_RETURN(std::string table, ExpectIdent());
    stmt.table = Lower(table);
    if (PeekKeyword("WHERE")) {
      Advance();
      do {
        GEOCOL_RETURN_NOT_OK(ParsePredicate(&stmt));
      } while (EatKeyword("AND"));
    }
    if (PeekKeyword("ORDER")) {
      Advance();
      GEOCOL_RETURN_NOT_OK(ExpectKeyword("BY"));
      GEOCOL_ASSIGN_OR_RETURN(std::string col, ExpectIdent());
      stmt.order_by = Lower(col);
      if (EatKeyword("DESC")) {
        stmt.order_desc = true;
      } else {
        EatKeyword("ASC");
      }
    }
    if (PeekKeyword("LIMIT")) {
      Advance();
      GEOCOL_ASSIGN_OR_RETURN(double v, ExpectNumber());
      if (v < 0) return Status::InvalidArgument("SQL: negative LIMIT");
      stmt.limit = static_cast<int64_t>(v);
    }
    EatSymbol(";");
    if (Peek().kind != TokKind::kEnd) {
      return Status::InvalidArgument("SQL: trailing tokens after statement");
    }
    return stmt;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = std::min(pos_ + ahead, toks_.size() - 1);
    return toks_[i];
  }
  void Advance() {
    if (pos_ + 1 < toks_.size()) ++pos_;
  }
  bool PeekKeyword(const char* kw) const {
    return Peek().kind == TokKind::kIdent && Peek().text == kw;
  }
  bool EatKeyword(const char* kw) {
    if (PeekKeyword(kw)) {
      Advance();
      return true;
    }
    return false;
  }
  Status ExpectKeyword(const char* kw) {
    if (!EatKeyword(kw)) {
      return Status::InvalidArgument(std::string("SQL: expected ") + kw +
                                     " at offset " +
                                     std::to_string(Peek().offset));
    }
    return Status::OK();
  }
  bool PeekSymbol(const char* sym) const {
    return Peek().kind == TokKind::kSymbol && Peek().text == sym;
  }
  bool EatSymbol(const char* sym) {
    if (PeekSymbol(sym)) {
      Advance();
      return true;
    }
    return false;
  }
  Status ExpectSymbol(const char* sym) {
    if (!EatSymbol(sym)) {
      return Status::InvalidArgument(std::string("SQL: expected '") + sym +
                                     "' at offset " +
                                     std::to_string(Peek().offset));
    }
    return Status::OK();
  }
  Result<std::string> ExpectIdent() {
    if (Peek().kind != TokKind::kIdent) {
      return Status::InvalidArgument("SQL: expected identifier at offset " +
                                     std::to_string(Peek().offset));
    }
    std::string text = Peek().raw;
    Advance();
    return text;
  }
  Result<double> ExpectNumber() {
    if (Peek().kind != TokKind::kNumber) {
      return Status::InvalidArgument("SQL: expected number at offset " +
                                     std::to_string(Peek().offset));
    }
    double v = Peek().number;
    Advance();
    return v;
  }
  Result<std::string> ExpectString() {
    if (Peek().kind != TokKind::kString) {
      return Status::InvalidArgument("SQL: expected string at offset " +
                                     std::to_string(Peek().offset));
    }
    std::string v = Peek().text;
    Advance();
    return v;
  }

  static Result<AggFunc> AggFromKeyword(const std::string& kw) {
    if (kw == "COUNT") return AggFunc::kCount;
    if (kw == "SUM") return AggFunc::kSum;
    if (kw == "AVG") return AggFunc::kAvg;
    if (kw == "MIN") return AggFunc::kMin;
    if (kw == "MAX") return AggFunc::kMax;
    return Status::InvalidArgument("not an aggregate: " + kw);
  }

  Status ParseSelectList(SelectStmt* stmt) {
    do {
      SelectItem item;
      if (EatSymbol("*")) {
        item.star = true;
      } else if (Peek().kind == TokKind::kIdent && Peek(1).kind == TokKind::kSymbol &&
                 Peek(1).text == "(" &&
                 (Peek().text == "COUNT" || Peek().text == "SUM" ||
                  Peek().text == "AVG" || Peek().text == "MIN" ||
                  Peek().text == "MAX")) {
        GEOCOL_ASSIGN_OR_RETURN(item.agg, AggFromKeyword(Peek().text));
        Advance();
        GEOCOL_RETURN_NOT_OK(ExpectSymbol("("));
        if (EatSymbol("*")) {
          item.star = true;
          if (item.agg != AggFunc::kCount) {
            return Status::InvalidArgument("SQL: only COUNT(*) supports *");
          }
        } else {
          GEOCOL_ASSIGN_OR_RETURN(std::string col, ExpectIdent());
          item.column = Lower(col);
        }
        GEOCOL_RETURN_NOT_OK(ExpectSymbol(")"));
      } else {
        GEOCOL_ASSIGN_OR_RETURN(std::string col, ExpectIdent());
        item.column = Lower(col);
      }
      stmt->items.push_back(std::move(item));
    } while (EatSymbol(","));
    return Status::OK();
  }

  /// ST_GeomFromText('WKT') | 'WKT'
  Result<Geometry> ParseGeometryArg() {
    if (PeekKeyword("ST_GEOMFROMTEXT")) {
      Advance();
      GEOCOL_RETURN_NOT_OK(ExpectSymbol("("));
      GEOCOL_ASSIGN_OR_RETURN(std::string wkt, ExpectString());
      GEOCOL_RETURN_NOT_OK(ExpectSymbol(")"));
      return ParseWkt(wkt);
    }
    if (Peek().kind == TokKind::kString) {
      GEOCOL_ASSIGN_OR_RETURN(std::string wkt, ExpectString());
      return ParseWkt(wkt);
    }
    return Status::InvalidArgument(
        "SQL: expected geometry (ST_GeomFromText('...') or WKT string) at "
        "offset " + std::to_string(Peek().offset));
  }

  Status ParsePredicate(SelectStmt* stmt) {
    const Token& t = Peek();
    if (t.kind != TokKind::kIdent) {
      return Status::InvalidArgument("SQL: expected predicate at offset " +
                                     std::to_string(t.offset));
    }
    const std::string& kw = t.text;
    if (kw == "ST_WITHIN" || kw == "ST_CONTAINS" || kw == "ST_INTERSECTS" ||
        kw == "ST_DWITHIN") {
      Advance();
      GEOCOL_RETURN_NOT_OK(ExpectSymbol("("));
      SpatialPred sp;
      if (kw == "ST_CONTAINS") {
        // ST_Contains(G, pt): geometry first.
        GEOCOL_ASSIGN_OR_RETURN(sp.geometry, ParseGeometryArg());
        GEOCOL_RETURN_NOT_OK(ExpectSymbol(","));
        GEOCOL_ASSIGN_OR_RETURN(std::string col, ExpectIdent());
        (void)col;  // the row-geometry pseudo column (pt/geom)
        sp.kind = SpatialPred::Kind::kWithin;
      } else {
        GEOCOL_ASSIGN_OR_RETURN(std::string col, ExpectIdent());
        (void)col;
        GEOCOL_RETURN_NOT_OK(ExpectSymbol(","));
        GEOCOL_ASSIGN_OR_RETURN(sp.geometry, ParseGeometryArg());
        if (kw == "ST_WITHIN") {
          sp.kind = SpatialPred::Kind::kWithin;
        } else if (kw == "ST_INTERSECTS") {
          sp.kind = SpatialPred::Kind::kIntersects;
        } else {
          sp.kind = SpatialPred::Kind::kDWithin;
          GEOCOL_RETURN_NOT_OK(ExpectSymbol(","));
          GEOCOL_ASSIGN_OR_RETURN(sp.distance, ExpectNumber());
          if (sp.distance < 0) {
            return Status::InvalidArgument("SQL: negative ST_DWithin distance");
          }
        }
      }
      GEOCOL_RETURN_NOT_OK(ExpectSymbol(")"));
      stmt->spatial.push_back(std::move(sp));
      return Status::OK();
    }
    if (kw == "NEAR") {
      Advance();
      GEOCOL_RETURN_NOT_OK(ExpectSymbol("("));
      SpatialPred sp;
      sp.kind = SpatialPred::Kind::kNearLayer;
      GEOCOL_ASSIGN_OR_RETURN(std::string layer, ExpectIdent());
      sp.layer = Lower(layer);
      GEOCOL_RETURN_NOT_OK(ExpectSymbol(","));
      GEOCOL_ASSIGN_OR_RETURN(double cls, ExpectNumber());
      sp.feature_class = static_cast<uint32_t>(cls);
      GEOCOL_RETURN_NOT_OK(ExpectSymbol(","));
      GEOCOL_ASSIGN_OR_RETURN(sp.distance, ExpectNumber());
      if (sp.distance < 0) {
        return Status::InvalidArgument("SQL: negative NEAR distance");
      }
      GEOCOL_RETURN_NOT_OK(ExpectSymbol(")"));
      stmt->spatial.push_back(std::move(sp));
      return Status::OK();
    }
    // Attribute predicate: col op num | col BETWEEN a AND b.
    GEOCOL_ASSIGN_OR_RETURN(std::string col_raw, ExpectIdent());
    std::string col = Lower(col_raw);
    if (EatKeyword("BETWEEN")) {
      RangePred r;
      r.column = col;
      GEOCOL_ASSIGN_OR_RETURN(r.lo, ExpectNumber());
      GEOCOL_RETURN_NOT_OK(ExpectKeyword("AND"));  // BETWEEN's own AND
      GEOCOL_ASSIGN_OR_RETURN(r.hi, ExpectNumber());
      if (r.lo > r.hi) {
        return Status::InvalidArgument("SQL: BETWEEN bounds reversed");
      }
      stmt->ranges.push_back(std::move(r));
      return Status::OK();
    }
    if (Peek().kind == TokKind::kSymbol) {
      std::string op = Peek().text;
      if (op == "=" || op == "<" || op == "<=" || op == ">" || op == ">=" ||
          op == "<>") {
        Advance();
        GEOCOL_ASSIGN_OR_RETURN(double v, ExpectNumber());
        RangePred r;
        r.column = col;
        if (op == "=") {
          r.lo = r.hi = v;
          r.equality = true;
        } else if (op == "<" || op == "<=") {
          r.hi = v;  // the engine's ranges are closed; strictness of < on
                     // continuous data is immaterial for the demo queries
        } else if (op == ">" || op == ">=") {
          r.lo = v;
        } else {
          return Status::Unsupported("SQL: <> predicates are not supported");
        }
        stmt->ranges.push_back(std::move(r));
        return Status::OK();
      }
    }
    return Status::InvalidArgument("SQL: expected comparison after '" + col +
                                   "' at offset " +
                                   std::to_string(Peek().offset));
  }

  std::vector<Token> toks_;
  size_t pos_ = 0;
};

}  // namespace

Result<SelectStmt> Parse(const std::string& text) {
  GEOCOL_ASSIGN_OR_RETURN(std::vector<Token> toks, Tokenize(text));
  Parser p(std::move(toks));
  return p.ParseStatement();
}

}  // namespace sql
}  // namespace geocol
