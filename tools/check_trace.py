#!/usr/bin/env python3
"""Validates trace artifacts produced by the geocol tool.

Default mode checks a Chrome trace_event JSON file from `geocol_tool
trace` against the schema chrome://tracing / Perfetto require to load the
file without error: a top-level object with a `traceEvents` array, every
event a complete ("ph": "X") event carrying name/cat/ph/ts/dur/pid/tid
with numeric timestamps, and child spans nested inside their parents'
time range on the same thread. When the file carries `otherData` (query
wall-clock metadata), start_unix_nanos must be a positive integer.

With --flight the input is instead a flight-recorder JSONL export from
`geocol top --export`: one query_event object per line, each carrying the
query text, wall/start times, shard + cache + chunk activity and the
digest fields `geocol replay` depends on.

Exits non-zero with a message on the first violation.

Usage: check_trace.py <trace.json>
       check_trace.py --flight <events.jsonl>
"""
import json
import sys

REQUIRED_KEYS = ("name", "ph", "ts", "dur", "pid", "tid")

FLIGHT_REQUIRED = ("type", "query", "start_unix_nanos", "wall_nanos",
                   "shards", "cache", "rows_out", "ok", "digest_valid",
                   "result_digest", "spans")


def fail(msg):
    print("check_trace: FAIL: %s" % msg, file=sys.stderr)
    sys.exit(1)


def check_flight(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            lines = [ln for ln in f.read().splitlines() if ln.strip()]
    except OSError as e:
        fail("cannot read %s: %s" % (path, e))
    if not lines:
        fail("flight export is empty")
    for i, line in enumerate(lines):
        try:
            ev = json.loads(line)
        except ValueError as e:
            fail("line %d is not valid JSON: %s" % (i + 1, e))
        if not isinstance(ev, dict):
            fail("line %d is not an object" % (i + 1))
        for key in FLIGHT_REQUIRED:
            if key not in ev:
                fail("event %d missing key %r" % (i + 1, key))
        if ev["type"] != "query_event":
            fail("event %d has type %r" % (i + 1, ev["type"]))
        if not isinstance(ev["query"], str) or not ev["query"]:
            fail("event %d has empty query text" % (i + 1))
        if not isinstance(ev["start_unix_nanos"], int) or ev["start_unix_nanos"] <= 0:
            fail("event %d has bad start_unix_nanos: %r"
                 % (i + 1, ev["start_unix_nanos"]))
        if not isinstance(ev["wall_nanos"], int) or ev["wall_nanos"] < 0:
            fail("event %d has bad wall_nanos: %r" % (i + 1, ev["wall_nanos"]))
        for group, keys in (("shards", ("total", "scanned", "pruned",
                                        "covered")),
                            ("cache", ("selection", "grid", "aggregate"))):
            if not isinstance(ev[group], dict):
                fail("event %d: %s is not an object" % (i + 1, group))
            for key in keys:
                if key not in ev[group]:
                    fail("event %d: %s missing %r" % (i + 1, group, key))
        if ev["ok"] and ev["digest_valid"]:
            if not isinstance(ev["result_digest"], int):
                fail("event %d: digest_valid without integer digest" % (i + 1))
    print("check_trace: OK: %d flight event(s)" % len(lines))


def main():
    argv = sys.argv[1:]
    if len(argv) == 2 and argv[0] == "--flight":
        check_flight(argv[1])
        return
    if len(argv) != 1:
        print(__doc__.strip(), file=sys.stderr)
        sys.exit(2)
    path = argv[0]
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        fail("cannot parse %s: %s" % (path, e))

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail("top level must be an object with a traceEvents array")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        fail("traceEvents is not an array")
    if not events:
        fail("traceEvents is empty")

    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            fail("event %d is not an object" % i)
        for key in REQUIRED_KEYS:
            if key not in ev:
                fail("event %d (%r) missing key %r" % (i, ev.get("name"), key))
        if ev["ph"] != "X":
            fail("event %d has ph=%r, expected complete event 'X'" % (i, ev["ph"]))
        for key in ("ts", "dur"):
            if not isinstance(ev[key], (int, float)) or ev[key] < 0:
                fail("event %d has non-numeric/negative %s: %r" % (i, key, ev[key]))
        if not isinstance(ev["name"], str) or not ev["name"]:
            fail("event %d has empty name" % i)

    # Query wall-clock metadata rides in otherData when the exporter knows
    # the statement's start time.
    other = doc.get("otherData")
    if other is not None:
        if not isinstance(other, dict):
            fail("otherData is not an object")
        start = other.get("start_unix_nanos")
        if not isinstance(start, int) or start <= 0:
            fail("otherData.start_unix_nanos must be a positive integer, "
                 "got %r" % (start,))

    # Spans on one thread must nest: sorted by start, an event starting inside
    # a predecessor must also end inside it (allowing microsecond rounding).
    by_tid = {}
    for ev in events:
        by_tid.setdefault((ev["pid"], ev["tid"]), []).append(ev)
    for (pid, tid), evs in by_tid.items():
        evs.sort(key=lambda e: (e["ts"], -e["dur"]))
        stack = []
        for ev in evs:
            end = ev["ts"] + ev["dur"]
            while stack and ev["ts"] >= stack[-1] - 0.002:
                stack.pop()
            if stack and end > stack[-1] + 0.002:
                fail("overlapping spans on pid=%s tid=%s near %r" % (pid, tid, ev["name"]))
            stack.append(end)

    print("check_trace: OK: %d events, %d threads" % (len(events), len(by_tid)))


if __name__ == "__main__":
    main()
