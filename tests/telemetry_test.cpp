// Telemetry tests: metrics registry exactness under concurrency, histogram
// bucket boundaries, exposition formats, span trees (nesting, critical
// path, Append adoption), engine instrumentation (EXPLAIN ANALYZE span
// attributes vs. registry counters), Chrome trace export, and the trace
// ring. Counter assertions use deltas — the registry is process-global and
// shared with every other test in the binary.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/profile.h"
#include "core/spatial_engine.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"
#include "util/rng.h"

namespace geocol {
namespace {

using telemetry::Counter;
using telemetry::Gauge;
using telemetry::Histogram;
using telemetry::MetricsRegistry;

TEST(MetricsTest, ConcurrentCountersSumExactly) {
  Counter& c = MetricsRegistry::Global().GetCounter("test_concurrent_total");
  const uint64_t before = c.Value();
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 100000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (uint64_t i = 0; i < kPerThread; ++i) c.Increment();
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.Value() - before, kThreads * kPerThread);
}

TEST(MetricsTest, CounterDeltaIncrements) {
  Counter& c = MetricsRegistry::Global().GetCounter("test_delta_total");
  const uint64_t before = c.Value();
  c.Increment(41);
  c.Increment();
  EXPECT_EQ(c.Value() - before, 42u);
}

TEST(MetricsTest, GetCounterReturnsSameObject) {
  Counter& a = MetricsRegistry::Global().GetCounter("test_same_total");
  Counter& b = MetricsRegistry::Global().GetCounter("test_same_total");
  EXPECT_EQ(&a, &b);
}

TEST(MetricsTest, DisabledUpdatesAreDropped) {
  Counter& c = MetricsRegistry::Global().GetCounter("test_disabled_total");
  const uint64_t before = c.Value();
  telemetry::SetMetricsEnabled(false);
  c.Increment(100);
  telemetry::SetMetricsEnabled(true);
  EXPECT_EQ(c.Value(), before);
  c.Increment(1);
  EXPECT_EQ(c.Value() - before, 1u);
}

TEST(MetricsTest, GaugeSetAndAdd) {
  Gauge& g = MetricsRegistry::Global().GetGauge("test_depth");
  g.Set(7);
  EXPECT_EQ(g.Value(), 7);
  g.Add(-3);
  EXPECT_EQ(g.Value(), 4);
  g.Set(0);
}

TEST(MetricsTest, HistogramBucketLayout) {
  // Exact unit buckets below 32.
  for (int64_t v = 0; v < 32; ++v) {
    EXPECT_EQ(Histogram::BucketIndexFor(v), static_cast<size_t>(v));
    EXPECT_EQ(Histogram::BucketUpperBoundFor(static_cast<size_t>(v)), v);
  }
  // First log-linear octave: [32, 64) in unit-wide sub-buckets still.
  EXPECT_EQ(Histogram::BucketIndexFor(32), 32u);
  EXPECT_EQ(Histogram::BucketUpperBoundFor(32), 32);
  EXPECT_EQ(Histogram::BucketIndexFor(63), 63u);
  // Negative values clamp to bucket 0.
  EXPECT_EQ(Histogram::BucketIndexFor(-5), 0u);
  // The full int64 range maps inside the table, including the extremes.
  EXPECT_LT(Histogram::BucketIndexFor(std::numeric_limits<int64_t>::max()),
            Histogram::kNumBuckets);
  EXPECT_EQ(Histogram::BucketUpperBoundFor(Histogram::kNumBuckets - 1),
            std::numeric_limits<int64_t>::max());
}

TEST(MetricsTest, HistogramBoundContractAcrossMagnitudes) {
  // For every value: it maps into a bucket whose inclusive upper bound is
  // >= the value and overshoots by at most value/32 (the documented
  // relative-error contract, exact below 32).
  Rng rng(7);
  for (int i = 0; i < 200000; ++i) {
    int64_t v = static_cast<int64_t>(rng.Next() >> (rng.Uniform(63) + 1));
    size_t idx = Histogram::BucketIndexFor(v);
    ASSERT_LT(idx, Histogram::kNumBuckets);
    int64_t upper = Histogram::BucketUpperBoundFor(idx);
    ASSERT_GE(upper, v);
    ASSERT_LE(upper - v, v / 32) << "v=" << v;
    // Bucket bounds are monotone: the previous bucket ends below v.
    if (idx > 0) ASSERT_LT(Histogram::BucketUpperBoundFor(idx - 1), v);
  }
}

namespace {

/// Exact quantile of `sorted` (rank = ceil(q*N), 1-based).
int64_t ExactQuantile(const std::vector<int64_t>& sorted, double q) {
  size_t rank = static_cast<size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  if (rank < 1) rank = 1;
  return sorted[rank - 1];
}

/// Asserts the documented contract: reported >= exact, overshoot <= 1/32
/// relative (exact for values below 32).
void ExpectQuantileWithinBound(Histogram& h, const std::vector<int64_t>& data,
                               double q) {
  std::vector<int64_t> sorted = data;
  std::sort(sorted.begin(), sorted.end());
  const int64_t exact = ExactQuantile(sorted, q);
  const int64_t reported = h.ValueAtQuantile(q);
  EXPECT_GE(reported, exact) << "q=" << q;
  EXPECT_LE(reported - exact, exact / 32) << "q=" << q << " exact=" << exact;
}

void FillAndCheckQuantiles(const char* name,
                           const std::vector<int64_t>& data) {
  Histogram& h = MetricsRegistry::Global().GetHistogram(name);
  h.Reset();
  for (int64_t v : data) h.Observe(v);
  for (double q : {0.0, 0.5, 0.9, 0.99, 0.999, 1.0}) {
    ExpectQuantileWithinBound(h, data, q);
  }
}

}  // namespace

TEST(MetricsTest, HistogramQuantilesConstantDistribution) {
  FillAndCheckQuantiles("test_quant_const_nanos",
                        std::vector<int64_t>(10000, 123456));
}

TEST(MetricsTest, HistogramQuantilesBimodalDistribution) {
  // Fast path at ~100ns, slow path at ~50ms: p50 must report the fast
  // mode, p99 the slow one, neither smeared by bucketing.
  std::vector<int64_t> data;
  for (int i = 0; i < 9000; ++i) data.push_back(100 + (i % 7));
  for (int i = 0; i < 1000; ++i) data.push_back(50000000 + i * 13);
  FillAndCheckQuantiles("test_quant_bimodal_nanos", data);
}

TEST(MetricsTest, HistogramQuantilesHeavyTailDistribution) {
  // Pareto-ish tail spanning six orders of magnitude.
  Rng rng(42);
  std::vector<int64_t> data;
  for (int i = 0; i < 50000; ++i) {
    double u = rng.NextDouble();
    if (u < 1e-6) u = 1e-6;
    data.push_back(static_cast<int64_t>(1000.0 / std::pow(u, 1.5)));
  }
  FillAndCheckQuantiles("test_quant_pareto_nanos", data);
}

TEST(MetricsTest, HistogramQuantileEmptyAndClamped) {
  Histogram& h = MetricsRegistry::Global().GetHistogram("test_quant_empty");
  h.Reset();
  EXPECT_EQ(h.ValueAtQuantile(0.99), 0);
  h.Observe(77);
  EXPECT_EQ(h.ValueAtQuantile(-1.0), 77);  // clamped to q=0
  EXPECT_EQ(h.ValueAtQuantile(2.0), 77);   // clamped to q=1
}

TEST(MetricsTest, ConcurrentHistogramCountsExactly) {
  // TSan-covered: concurrent Observe against one histogram must stay
  // race-free and lose no samples; quantiles stay inside the recorded
  // value range.
  Histogram& h = MetricsRegistry::Global().GetHistogram("test_conc_nanos");
  h.Reset();
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) h.Observe(t * 1000 + 1);
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(h.Count(), uint64_t{kThreads} * kPerThread);
  EXPECT_GE(h.ValueAtQuantile(0.5), 1);
  EXPECT_LE(h.ValueAtQuantile(1.0), 3001 + 3001 / 32);
}

TEST(MetricsTest, PrometheusRendering) {
  MetricsRegistry::Global().GetCounter("test_prom_total").Increment(5);
  MetricsRegistry::Global().GetGauge("test_prom_gauge").Set(3);
  MetricsRegistry::Global().GetHistogram("test_prom_nanos").Observe(1500);
  std::string text = MetricsRegistry::Global().RenderPrometheus();
  EXPECT_NE(text.find("# HELP test_prom_total"), std::string::npos);
  EXPECT_NE(text.find("# TYPE test_prom_total counter"), std::string::npos);
  EXPECT_NE(text.find("test_prom_total"), std::string::npos);
  EXPECT_NE(text.find("# TYPE test_prom_gauge gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE test_prom_nanos histogram"), std::string::npos);
  EXPECT_NE(text.find("test_prom_nanos_bucket{le=\""), std::string::npos);
  EXPECT_NE(text.find("test_prom_nanos_bucket{le=\"+Inf\"}"),
            std::string::npos);
  EXPECT_NE(text.find("test_prom_nanos_sum"), std::string::npos);
  EXPECT_NE(text.find("test_prom_nanos_count"), std::string::npos);
}

TEST(MetricsTest, PrometheusGoldenOutput) {
  // Byte-exact golden blocks for one counter and one histogram. The
  // bucket bounds pin the HDR layout: 5 -> exact bucket, 100 -> bucket
  // ending at 101, 1000000 -> bucket ending at 1015807.
  MetricsRegistry::Global().GetCounter("zz_golden_total").Increment(7);
  Histogram& h = MetricsRegistry::Global().GetHistogram("zz_golden_nanos");
  h.Reset();
  h.Observe(5);
  h.Observe(100);
  h.Observe(1000000);
  std::string text = MetricsRegistry::Global().RenderPrometheus();
  const char* kCounterGolden =
      "# HELP zz_golden_total GeoColumn engine metric (auto-registered).\n"
      "# TYPE zz_golden_total counter\n"
      "zz_golden_total 7\n";
  const char* kHistogramGolden =
      "# HELP zz_golden_nanos GeoColumn engine metric (auto-registered).\n"
      "# TYPE zz_golden_nanos histogram\n"
      "zz_golden_nanos_bucket{le=\"5\"} 1\n"
      "zz_golden_nanos_bucket{le=\"101\"} 2\n"
      "zz_golden_nanos_bucket{le=\"1015807\"} 3\n"
      "zz_golden_nanos_bucket{le=\"+Inf\"} 3\n"
      "zz_golden_nanos_sum 1000105\n"
      "zz_golden_nanos_count 3\n";
  EXPECT_NE(text.find(kCounterGolden), std::string::npos) << text;
  EXPECT_NE(text.find(kHistogramGolden), std::string::npos) << text;
}

TEST(MetricsTest, EscapeLabelValue) {
  EXPECT_EQ(telemetry::EscapeLabelValue("plain"), "plain");
  EXPECT_EQ(telemetry::EscapeLabelValue("a\"b"), "a\\\"b");
  EXPECT_EQ(telemetry::EscapeLabelValue("a\\b"), "a\\\\b");
  EXPECT_EQ(telemetry::EscapeLabelValue("a\nb"), "a\\nb");
}

TEST(MetricsTest, JsonRendering) {
  MetricsRegistry::Global().GetCounter("test_json_total").Increment();
  std::string json = MetricsRegistry::Global().RenderJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"test_json_total\""), std::string::npos);
}

TEST(MetricsTest, SummaryLineMentionsCoreCounters) {
  std::string line = telemetry::SummaryLine();
  EXPECT_NE(line.find("[telemetry]"), std::string::npos);
  EXPECT_NE(line.find("queries="), std::string::npos);
  EXPECT_NE(line.find("imprint_scans="), std::string::npos);
  EXPECT_NE(line.find("io_read="), std::string::npos);
}

// ---------------------------------------------------------------- spans

TEST(ProfileTest, OpenCloseBuildsTree) {
  QueryProfile p;
  int32_t root = p.OpenSpan("query");
  int32_t child = p.Add("filter.x", 1000, 100, 10);
  p.CloseSpan(100, 10);
  ASSERT_EQ(p.operators().size(), 2u);
  EXPECT_EQ(p.operators()[root].parent, -1);
  EXPECT_EQ(p.operators()[child].parent, root);
  EXPECT_EQ(p.operators()[root].rows_in, 100u);
  EXPECT_EQ(p.operators()[root].rows_out, 10u);
}

TEST(ProfileTest, NestedSpans) {
  QueryProfile p;
  int32_t a = p.OpenSpan("a");
  int32_t b = p.OpenSpan("b");
  int32_t leaf = p.Add("leaf", 10, 1, 1);
  p.CloseSpan();
  p.CloseSpan();
  EXPECT_EQ(p.operators()[a].parent, -1);
  EXPECT_EQ(p.operators()[b].parent, a);
  EXPECT_EQ(p.operators()[leaf].parent, b);
}

TEST(ProfileTest, TotalNanosCountsLeavesOnly) {
  QueryProfile p;
  p.OpenSpan("wrapper");
  p.AddSpanAt("leaf1", 0, 1000, 0, 0);
  p.AddSpanAt("leaf2", 1000, 2000, 0, 0);
  p.CloseSpan();
  // The wrapper's own duration covers the leaves; only leaves count.
  EXPECT_EQ(p.TotalNanos(), 3000);
}

TEST(ProfileTest, CriticalPathMergesOverlaps) {
  QueryProfile p;
  // Two concurrent roots [0, 1000) and [500, 1500): union = 1500, sum 2000.
  p.AddSpanAt("x", 0, 1000, 0, 0);
  p.AddSpanAt("y", 500, 1000, 0, 0);
  EXPECT_EQ(p.TotalNanos(), 2000);
  EXPECT_EQ(p.CriticalPathNanos(), 1500);
}

TEST(ProfileTest, CriticalPathWithGap) {
  QueryProfile p;
  p.AddSpanAt("a", 0, 100, 0, 0);
  p.AddSpanAt("b", 500, 100, 0, 0);  // disjoint: gap is not covered
  EXPECT_EQ(p.CriticalPathNanos(), 200);
}

TEST(ProfileTest, AppendAdoptsIntoOpenSpan) {
  QueryProfile branch;
  branch.AddSpanAt("branch.op", 0, 100, 5, 3);

  QueryProfile main;
  int32_t filter = main.OpenSpan("filter");
  main.Append(branch);
  main.CloseSpan();
  ASSERT_EQ(main.operators().size(), 2u);
  EXPECT_EQ(main.operators()[1].name, "branch.op");
  EXPECT_EQ(main.operators()[1].parent, filter);
}

TEST(ProfileTest, AttrsRenderInToString) {
  QueryProfile p;
  int32_t s = p.Add("filter.imprints.x", 1000000, 100, 10);
  p.AddAttr(s, "cachelines_probed", uint64_t{42});
  p.AddAttr(s, "false_positive_rate", 0.125);
  std::string text = p.ToString();
  EXPECT_NE(text.find("cachelines_probed=42"), std::string::npos);
  EXPECT_NE(text.find("false_positive_rate="), std::string::npos);
  EXPECT_NE(text.find("TOTAL (sum)"), std::string::npos);
  EXPECT_NE(text.find("WALL (critical path)"), std::string::npos);
}

TEST(ProfileTest, ClearRebasesEpoch) {
  QueryProfile p;
  p.Add("op", 10, 1, 1);
  p.Clear();
  EXPECT_TRUE(p.empty());
  EXPECT_EQ(p.TotalNanos(), 0);
  EXPECT_EQ(p.CriticalPathNanos(), 0);
}

// ------------------------------------------------- engine instrumentation

std::shared_ptr<FlatTable> MakeTable(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> xs(n), ys(n);
  for (size_t i = 0; i < n; ++i) {
    xs[i] = rng.UniformDouble(0, 1000);
    ys[i] = rng.UniformDouble(0, 1000);
  }
  auto t = std::make_shared<FlatTable>("pc");
  EXPECT_TRUE(t->AddColumn(Column::FromVector("x", xs)).ok());
  EXPECT_TRUE(t->AddColumn(Column::FromVector("y", ys)).ok());
  return t;
}

uint64_t AttrSum(const QueryProfile& p, const std::string& key) {
  uint64_t sum = 0;
  for (const OperatorProfile& op : p.operators()) {
    for (const auto& kv : op.attrs) {
      if (kv.first == key) sum += std::stoull(kv.second);
    }
  }
  return sum;
}

TEST(EngineTelemetryTest, SpanAttributesMatchCounterDeltas) {
  auto table = MakeTable(50000, 7);
  EngineOptions opts;
  opts.num_threads = 1;
  SpatialQueryEngine eng(table, opts);

  // Warm the imprint cache so the measured query does scans only.
  ASSERT_TRUE(eng.SelectInBox(Box(0, 0, 10, 10)).ok());

  MetricsRegistry& reg = MetricsRegistry::Global();
  const uint64_t scans0 =
      reg.GetCounter("geocol_imprint_scans_total").Value();
  const uint64_t probed0 =
      reg.GetCounter("geocol_imprint_cachelines_probed_total").Value();
  const uint64_t checked0 =
      reg.GetCounter("geocol_imprint_values_checked_total").Value();
  const uint64_t selected0 =
      reg.GetCounter("geocol_imprint_rows_selected_total").Value();
  const uint64_t queries0 = reg.GetCounter("geocol_queries_total").Value();

  auto res = eng.SelectInBox(Box(100, 100, 400, 500));
  ASSERT_TRUE(res.ok());

  EXPECT_EQ(reg.GetCounter("geocol_imprint_scans_total").Value() - scans0,
            2u);  // x and y
  EXPECT_EQ(reg.GetCounter("geocol_queries_total").Value() - queries0, 1u);

  // EXPLAIN ANALYZE's span attributes must agree with `geocol metrics`:
  // the per-span numbers sum to exactly the registry counter deltas.
  EXPECT_EQ(AttrSum(res->profile, "cachelines_probed"),
            reg.GetCounter("geocol_imprint_cachelines_probed_total").Value() -
                probed0);
  EXPECT_EQ(AttrSum(res->profile, "values_checked"),
            reg.GetCounter("geocol_imprint_values_checked_total").Value() -
                checked0);
  EXPECT_EQ(AttrSum(res->profile, "rows_selected"),
            reg.GetCounter("geocol_imprint_rows_selected_total").Value() -
                selected0);
}

TEST(EngineTelemetryTest, FilterSpanParentsImprintOps) {
  auto table = MakeTable(30000, 8);
  EngineOptions opts;
  opts.num_threads = 4;  // exercise the morsel-parallel merge path
  SpatialQueryEngine eng(table, opts);
  auto res = eng.SelectInBox(Box(50, 50, 600, 600));
  ASSERT_TRUE(res.ok());

  const auto& ops = res->profile.operators();
  int32_t filter = -1;
  for (size_t i = 0; i < ops.size(); ++i) {
    if (ops[i].name == "filter") filter = static_cast<int32_t>(i);
  }
  ASSERT_GE(filter, 0);
  int children = 0;
  for (const auto& op : ops) {
    if (op.parent == filter) {
      ++children;
      EXPECT_EQ(op.name.rfind("filter.", 0), 0u) << op.name;
    }
  }
  EXPECT_GE(children, 2);  // x and y imprint scans at least
  EXPECT_GT(res->profile.CriticalPathNanos(), 0);
}

// ------------------------------------------------------------ trace export

TEST(TraceTest, ChromeTraceShape) {
  QueryProfile p;
  int32_t root = p.OpenSpan("query");
  p.AddSpanAt("filter.imprints.x", 10, 500, 100, 10, "mask");
  p.AddAttr(1, "cachelines_probed", uint64_t{3});
  p.CloseSpan(100, 10);
  (void)root;

  std::string json = telemetry::ProfileToChromeTrace(p, "test query");
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"filter.imprints.x\""), std::string::npos);
  EXPECT_NE(json.find("\"cachelines_probed\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\""), std::string::npos);
  EXPECT_NE(json.find("\"tid\""), std::string::npos);
  // Balanced braces/brackets (cheap well-formedness proxy).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(TraceTest, JsonlOneObjectPerSpan) {
  QueryProfile p;
  p.Add("a", 10, 1, 1);
  p.Add("b", 20, 2, 2);
  std::string jsonl = telemetry::ProfileToJsonl(p, "q");
  size_t lines = std::count(jsonl.begin(), jsonl.end(), '\n');
  EXPECT_EQ(lines, 2u);
  EXPECT_EQ(jsonl.front(), '{');
}

TEST(TraceTest, RingKeepsLastCapacity) {
  telemetry::TraceRing ring(4);
  for (int i = 0; i < 10; ++i) {
    telemetry::TraceRecord r;
    r.query = "q" + std::to_string(i);
    r.wall_nanos = i;
    ring.Record(std::move(r));
  }
  auto snap = ring.Snapshot();
  ASSERT_EQ(snap.size(), 4u);
  EXPECT_EQ(snap.front().query, "q6");
  EXPECT_EQ(snap.back().query, "q9");
  telemetry::TraceRecord latest;
  ASSERT_TRUE(ring.Latest(&latest));
  EXPECT_EQ(latest.query, "q9");
  ring.Clear();
  EXPECT_FALSE(ring.Latest(&latest));
  EXPECT_TRUE(ring.Snapshot().empty());
}

}  // namespace
}  // namespace geocol
