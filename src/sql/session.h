// The user-facing SQL entry point: parse -> plan -> execute, keeping the
// last query's plan and per-operator profile available — the demo's
// interactive front end in library form.
#ifndef GEOCOL_SQL_SESSION_H_
#define GEOCOL_SQL_SESSION_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "sql/executor.h"
#include "util/timer.h"

namespace geocol {
namespace telemetry {
struct QueryEvent;
}  // namespace telemetry

namespace sql {

/// Telemetry knobs for a Session.
struct SessionOptions {
  /// Record every executed query (text + span tree + wall time) into
  /// telemetry::TraceRing::Global() for later export via `geocol trace`.
  bool record_trace = true;

  /// Append a structured event per statement to the process-wide flight
  /// recorder when it is open (telemetry/recorder.h). Off only for
  /// sessions that must not observe themselves — `geocol replay` replays
  /// a log without appending to it.
  bool record_flight = true;

  /// Queries slower than this (end-to-end: parse + plan + execute) are
  /// logged at Warning with their plan and span tree. <0 disables; the
  /// default comes from the GEOCOL_SLOW_QUERY_MS env var (unset = off).
  double slow_query_ms = -1.0;

  /// Result-cache budget applied to every point-cloud engine this session
  /// queries (DESIGN.md §11). <0 leaves each engine's own configuration
  /// untouched; 0 forces the cache off; >0 binds the engine to the
  /// process-wide cache with at least this many bytes. The default comes
  /// from the GEOCOL_CACHE_MB env var (unset = leave engines alone).
  int64_t cache_budget_bytes = -1;

  /// Fills slow_query_ms from GEOCOL_SLOW_QUERY_MS and cache_budget_bytes
  /// from GEOCOL_CACHE_MB when set.
  static SessionOptions FromEnv();
};

/// A lightweight SQL session over a catalog (not thread safe; create one
/// per thread).
class Session {
 public:
  explicit Session(Catalog* catalog)
      : catalog_(catalog), options_(SessionOptions::FromEnv()) {}
  Session(Catalog* catalog, SessionOptions options)
      : catalog_(catalog), options_(options) {}

  /// Parses, plans and executes `sql_text`.
  Result<ResultSet> Execute(const std::string& sql_text);

  /// Executes an already-planned statement (the server plans at admission
  /// time so a live-table epoch is pinned per statement, then hands the
  /// plan to a worker session). Telemetry (flight event, trace, slow-query
  /// log) matches Execute except that wall time excludes the parse/plan
  /// already paid by the caller.
  Result<ResultSet> ExecutePrepared(const std::string& sql_text,
                                    PlannedQuery plan);

  /// Executes a planned flat point-cloud statement whose selection was
  /// already computed by a shared superset scan (server shared-scan
  /// batching): renders over `rows` via ExecutePointCloudWithRows.
  /// `pre_profile` carries the shared-scan spans into this statement's
  /// profile/flight event. The caller guarantees the plan is batchable
  /// (flat target, no NEAR, no EXPLAIN [ANALYZE]).
  Result<ResultSet> ExecutePreparedWithRows(const std::string& sql_text,
                                            PlannedQuery plan,
                                            std::vector<uint64_t> rows,
                                            QueryProfile pre_profile);

  /// Tags this session's flight events with a client/connection id
  /// (QueryEvent::client); "" (the default) means a local CLI session.
  void set_client_tag(std::string tag) { client_tag_ = std::move(tag); }
  const std::string& client_tag() const { return client_tag_; }

  /// Plan description of the last executed (or explained) statement.
  const std::string& last_plan() const { return last_plan_; }

  /// Per-operator profile of the last executed statement.
  const QueryProfile& last_profile() const { return last_profile_; }

  const SessionOptions& options() const { return options_; }

 private:
  /// Wraps `body` (the parse/plan/execute core, or a prepared variant)
  /// with flight recording: counter-delta sampling, heat drain, digest,
  /// client tag and the recorder append — so error paths are recorded
  /// too. When the recorder is closed or record_flight is off, `body`
  /// runs bare with a null event.
  Result<ResultSet> ExecuteRecorded(
      const std::string& sql_text,
      const std::function<Result<ResultSet>(telemetry::QueryEvent*)>& body);

  /// The parse/plan/execute core. When `ev` is non-null it is filled with
  /// the statement's identity (table, generation, epochs, digest
  /// validity) and profile-derived breakdown as execution proceeds.
  Result<ResultSet> ExecuteInternal(const std::string& sql_text,
                                    telemetry::QueryEvent* ev);

  /// Everything after planning: event identity fill, cache budget,
  /// execution (ExecuteQuery, or the batched fan-out when `batched_rows`
  /// is non-null), wall histogram, profile mining, trace ring, slow-query
  /// log. `timer`/`start_unix_nanos` were started by the caller so wall
  /// time covers whatever work preceded planning.
  Result<ResultSet> RunPlanned(const std::string& sql_text, PlannedQuery& plan,
                               telemetry::QueryEvent* ev,
                               std::vector<uint64_t>* batched_rows,
                               QueryProfile* batched_profile,
                               const Timer& timer, int64_t start_unix_nanos);

  Catalog* catalog_;
  SessionOptions options_;
  std::string client_tag_;
  std::string last_plan_;
  QueryProfile last_profile_;
};

}  // namespace sql
}  // namespace geocol

#endif  // GEOCOL_SQL_SESSION_H_
