// End-to-end engine tests: the two-step executor against the full-scan
// oracle, thematic pushdown, aggregates, profiles, and ablation toggles.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <thread>
#include <vector>

#include "baselines/full_scan.h"
#include "core/spatial_engine.h"
#include "geom/wkt.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace geocol {
namespace {

std::shared_ptr<FlatTable> MakeTable(size_t n, uint64_t seed,
                                     const Box& extent) {
  Rng rng(seed);
  std::vector<double> xs(n), ys(n), zs(n);
  std::vector<uint8_t> cls(n);
  std::vector<uint16_t> intensity(n);
  for (size_t i = 0; i < n; ++i) {
    xs[i] = rng.UniformDouble(extent.min_x, extent.max_x);
    ys[i] = rng.UniformDouble(extent.min_y, extent.max_y);
    zs[i] = rng.UniformDouble(-5, 40);
    cls[i] = static_cast<uint8_t>(rng.Uniform(10));
    intensity[i] = static_cast<uint16_t>(rng.Uniform(256));
  }
  auto t = std::make_shared<FlatTable>("pc");
  EXPECT_TRUE(t->AddColumn(Column::FromVector("x", xs)).ok());
  EXPECT_TRUE(t->AddColumn(Column::FromVector("y", ys)).ok());
  EXPECT_TRUE(t->AddColumn(Column::FromVector("z", zs)).ok());
  EXPECT_TRUE(t->AddColumn(Column::FromVector("classification", cls)).ok());
  EXPECT_TRUE(t->AddColumn(Column::FromVector("intensity", intensity)).ok());
  return t;
}

TEST(SpatialEngineTest, BoxSelectMatchesOracle) {
  auto table = MakeTable(30000, 91, Box(0, 0, 1000, 1000));
  SpatialQueryEngine eng(table);
  Box q(100, 100, 300, 400);
  auto res = eng.SelectInBox(q);
  ASSERT_TRUE(res.ok());
  auto oracle = FullScanSelectBox(*table, q);
  ASSERT_TRUE(oracle.ok());
  EXPECT_EQ(res->row_ids, *oracle);
  EXPECT_GT(res->count(), 0u);
}

TEST(SpatialEngineTest, PolygonSelectMatchesOracle) {
  auto table = MakeTable(30000, 92, Box(0, 0, 1000, 1000));
  SpatialQueryEngine eng(table);
  Polygon poly;
  poly.shell.points = {{100, 100}, {900, 200}, {700, 800}, {200, 600}};
  Geometry g(poly);
  auto res = eng.SelectInGeometry(g);
  ASSERT_TRUE(res.ok());
  auto oracle = FullScanSelect(*table, g);
  ASSERT_TRUE(oracle.ok());
  EXPECT_EQ(res->row_ids, *oracle);
}

TEST(SpatialEngineTest, DWithinMatchesOracle) {
  auto table = MakeTable(20000, 93, Box(0, 0, 1000, 1000));
  SpatialQueryEngine eng(table);
  LineString road;
  road.points = {{0, 500}, {400, 520}, {1000, 480}};
  Geometry g(road);
  auto res = eng.SelectWithinDistance(g, 25.0);
  ASSERT_TRUE(res.ok());
  auto oracle = FullScanSelect(*table, g, 25.0);
  ASSERT_TRUE(oracle.ok());
  EXPECT_EQ(res->row_ids, *oracle);
  EXPECT_FALSE(res->row_ids.empty());
}

TEST(SpatialEngineTest, NegativeDistanceRejected) {
  auto table = MakeTable(100, 94, Box(0, 0, 10, 10));
  SpatialQueryEngine eng(table);
  EXPECT_FALSE(eng.SelectWithinDistance(Geometry(Point{5, 5}), -1).ok());
}

TEST(SpatialEngineTest, ThematicPredicatesNarrowSelection) {
  auto table = MakeTable(30000, 95, Box(0, 0, 1000, 1000));
  SpatialQueryEngine eng(table);
  Geometry g(Box(0, 0, 1000, 1000));
  auto all = eng.Select(g, 0.0, {});
  ASSERT_TRUE(all.ok());
  auto veg = eng.Select(g, 0.0, {{"classification", 3, 5}});
  ASSERT_TRUE(veg.ok());
  EXPECT_LT(veg->count(), all->count());
  // Verify against a manual filter.
  ColumnPtr cls = table->column("classification");
  std::vector<uint64_t> expected;
  for (uint64_t r : all->row_ids) {
    double c = cls->GetDouble(r);
    if (c >= 3 && c <= 5) expected.push_back(r);
  }
  EXPECT_EQ(veg->row_ids, expected);
}

TEST(SpatialEngineTest, ConjunctiveThematicRanges) {
  auto table = MakeTable(20000, 96, Box(0, 0, 100, 100));
  SpatialQueryEngine eng(table);
  auto res = eng.Select(Geometry(Box(0, 0, 100, 100)), 0.0,
                        {{"classification", 2, 2}, {"intensity", 100, 200}});
  ASSERT_TRUE(res.ok());
  ColumnPtr cls = table->column("classification");
  ColumnPtr inten = table->column("intensity");
  for (uint64_t r : res->row_ids) {
    EXPECT_EQ(cls->GetInt64(r), 2);
    EXPECT_GE(inten->GetInt64(r), 100);
    EXPECT_LE(inten->GetInt64(r), 200);
  }
}

TEST(SpatialEngineTest, UnknownThematicColumnRejected) {
  auto table = MakeTable(100, 97, Box(0, 0, 10, 10));
  SpatialQueryEngine eng(table);
  EXPECT_EQ(eng.Select(Geometry(Box(0, 0, 1, 1)), 0.0, {{"bogus", 0, 1}})
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST(SpatialEngineTest, AggregatesMatchManualComputation) {
  auto table = MakeTable(10000, 98, Box(0, 0, 100, 100));
  SpatialQueryEngine eng(table);
  Geometry g(Box(10, 10, 60, 60));
  auto sel = eng.SelectInGeometry(g);
  ASSERT_TRUE(sel.ok());
  ColumnPtr z = table->column("z");
  double sum = 0;
  for (uint64_t r : sel->row_ids) sum += z->GetDouble(r);

  auto count = eng.Aggregate(g, 0.0, {}, "z", AggKind::kCount);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, sel->count());
  auto avg = eng.Aggregate(g, 0.0, {}, "z", AggKind::kAvg);
  ASSERT_TRUE(avg.ok());
  EXPECT_NEAR(*avg, sum / sel->count(), 1e-9);
  auto mn = eng.Aggregate(g, 0.0, {}, "z", AggKind::kMin);
  auto mx = eng.Aggregate(g, 0.0, {}, "z", AggKind::kMax);
  ASSERT_TRUE(mn.ok());
  ASSERT_TRUE(mx.ok());
  EXPECT_LE(*mn, *avg);
  EXPECT_GE(*mx, *avg);
}

TEST(SpatialEngineTest, EmptySelectionAggregates) {
  auto table = MakeTable(1000, 99, Box(0, 0, 10, 10));
  SpatialQueryEngine eng(table);
  Geometry far(Box(1000, 1000, 1001, 1001));
  auto count = eng.Aggregate(far, 0.0, {}, "z", AggKind::kCount);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 0.0);
  auto avg = eng.Aggregate(far, 0.0, {}, "z", AggKind::kAvg);
  ASSERT_TRUE(avg.ok());
  EXPECT_TRUE(std::isnan(*avg));
}

// Contract pin: AggregateRows over an empty selection returns NaN for the
// value aggregates and 0 for COUNT. The SQL layer relies on this exact
// behaviour to render NULL (executor.cpp maps empty-selection aggregates to
// Value::Null()), and the result cache stores the NaN bit pattern verbatim.
TEST(SpatialEngineTest, AggregateRowsEmptySelectionReturnsNaN) {
  auto table = MakeTable(100, 101, Box(0, 0, 10, 10));
  ColumnPtr z = table->column("z");
  const std::vector<uint64_t> empty;
  EXPECT_EQ(*AggregateRows(*z, empty, AggKind::kCount), 0.0);
  EXPECT_TRUE(std::isnan(*AggregateRows(*z, empty, AggKind::kSum)));
  EXPECT_TRUE(std::isnan(*AggregateRows(*z, empty, AggKind::kAvg)));
  EXPECT_TRUE(std::isnan(*AggregateRows(*z, empty, AggKind::kMin)));
  EXPECT_TRUE(std::isnan(*AggregateRows(*z, empty, AggKind::kMax)));
}

// Contract pin: parallel AggregateRows merges per-chunk partial sums in
// chunk order, so its SUM/AVG are bit-identical to a serial reduction that
// sums each 2^16-row chunk and then adds the partials in order. The cache
// equivalence suite depends on this — a cached aggregate computed by a
// parallel engine must compare bit-equal to a serial recomputation.
TEST(SpatialEngineTest, ParallelAggregateRowsSumsInDeterministicChunkOrder) {
  constexpr size_t kRows = size_t{1} << 17;       // >= kMinParallelAggRows
  constexpr size_t kChunk = size_t{1} << 16;      // == kAggChunkRows
  auto table = MakeTable(kRows, 102, Box(0, 0, 1000, 1000));
  ColumnPtr z = table->column("z");
  std::vector<uint64_t> rows(kRows);
  for (size_t i = 0; i < kRows; ++i) rows[i] = i;

  // Chunk-ordered serial reference.
  double ref_sum = 0.0;
  for (size_t begin = 0; begin < kRows; begin += kChunk) {
    double partial = 0.0;
    size_t end = std::min(kRows, begin + kChunk);
    for (size_t i = begin; i < end; ++i) partial += z->GetDouble(rows[i]);
    ref_sum += partial;
  }
  double ref_avg = ref_sum / static_cast<double>(kRows);

  ThreadPool pool(3);
  double par_sum = *AggregateRows(*z, rows, AggKind::kSum, &pool);
  double par_avg = *AggregateRows(*z, rows, AggKind::kAvg, &pool);
  uint64_t ref_bits, par_bits;
  std::memcpy(&ref_bits, &ref_sum, sizeof(ref_bits));
  std::memcpy(&par_bits, &par_sum, sizeof(par_bits));
  EXPECT_EQ(ref_bits, par_bits);
  std::memcpy(&ref_bits, &ref_avg, sizeof(ref_bits));
  std::memcpy(&par_bits, &par_avg, sizeof(par_bits));
  EXPECT_EQ(ref_bits, par_bits);

  // Repeated parallel runs are deterministic — thread scheduling must not
  // leak into the merge order.
  for (int repeat = 0; repeat < 3; ++repeat) {
    EXPECT_EQ(*AggregateRows(*z, rows, AggKind::kSum, &pool), par_sum);
  }
}

TEST(SpatialEngineTest, ProfileHasFilterAndRefineOperators) {
  auto table = MakeTable(5000, 100, Box(0, 0, 100, 100));
  SpatialQueryEngine eng(table);
  auto res = eng.SelectInGeometry(Geometry(Polygon::Circle({50, 50}, 20)));
  ASSERT_TRUE(res.ok());
  const auto& ops = res->profile.operators();
  ASSERT_GE(ops.size(), 5u);
  // Since PR 4 the profile is a span tree: a "filter" wrapper span parents
  // the imprint scans, which keep their serial recording order.
  EXPECT_EQ(ops[0].name, "filter");
  EXPECT_EQ(ops[1].name, "filter.imprints.x");
  EXPECT_EQ(ops[2].name, "filter.imprints.y");
  EXPECT_EQ(ops[1].parent, 0);
  EXPECT_EQ(ops[2].parent, 0);
  bool has_refine = false;
  for (const auto& op : ops) has_refine |= op.name.rfind("refine", 0) == 0;
  EXPECT_TRUE(has_refine);
  EXPECT_GT(res->profile.TotalNanos(), 0);
  EXPECT_FALSE(res->profile.ToString().empty());
}

TEST(SpatialEngineTest, ImprintsDisabledStillCorrect) {
  auto table = MakeTable(20000, 101, Box(0, 0, 1000, 1000));
  EngineOptions opts;
  opts.use_imprints = false;
  SpatialQueryEngine eng(table, opts);
  Geometry g(Polygon::Circle({500, 500}, 200));
  auto res = eng.SelectInGeometry(g);
  ASSERT_TRUE(res.ok());
  auto oracle = FullScanSelect(*table, g);
  ASSERT_TRUE(oracle.ok());
  EXPECT_EQ(res->row_ids, *oracle);
}

TEST(SpatialEngineTest, GridDisabledStillCorrect) {
  auto table = MakeTable(20000, 102, Box(0, 0, 1000, 1000));
  EngineOptions opts;
  opts.refine.use_grid = false;
  SpatialQueryEngine eng(table, opts);
  Geometry g(Polygon::Circle({500, 500}, 200));
  auto res = eng.SelectInGeometry(g);
  ASSERT_TRUE(res.ok());
  auto oracle = FullScanSelect(*table, g);
  ASSERT_TRUE(oracle.ok());
  EXPECT_EQ(res->row_ids, *oracle);
}

TEST(SpatialEngineTest, AppendTriggersImprintRebuild) {
  auto table = MakeTable(10000, 103, Box(0, 0, 100, 100));
  SpatialQueryEngine eng(table);
  Box q(10, 10, 50, 50);
  auto before = eng.SelectInBox(q);
  ASSERT_TRUE(before.ok());
  // Append one in-range point to every column.
  table->column("x")->Append<double>(20.0);
  table->column("y")->Append<double>(20.0);
  table->column("z")->Append<double>(1.0);
  table->column("classification")->Append<uint8_t>(2);
  table->column("intensity")->Append<uint16_t>(5);
  auto after = eng.SelectInBox(q);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->count(), before->count() + 1);
  EXPECT_EQ(after->row_ids.back(), table->num_rows() - 1);
}

TEST(SpatialEngineTest, MissingCoordinateColumnsRejected) {
  auto t = std::make_shared<FlatTable>("bad");
  ASSERT_TRUE(t->AddColumn(Column::FromVector<double>("a", {1, 2})).ok());
  SpatialQueryEngine eng(t);
  EXPECT_EQ(eng.SelectInBox(Box(0, 0, 1, 1)).status().code(),
            StatusCode::kNotFound);
}

TEST(SpatialEngineTest, EmptyTableYieldsEmptyResult) {
  auto t = std::make_shared<FlatTable>(
      "empty", Schema({{"x", DataType::kFloat64}, {"y", DataType::kFloat64}}));
  SpatialQueryEngine eng(t);
  auto res = eng.SelectInBox(Box(0, 0, 1, 1));
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->count(), 0u);
}

TEST(SpatialEngineTest, DisjointQueryBoxEmptyResult) {
  auto table = MakeTable(1000, 104, Box(0, 0, 10, 10));
  SpatialQueryEngine eng(table);
  auto res = eng.SelectInBox(Box(100, 100, 200, 200));
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->count(), 0u);
}

TEST(SpatialEngineTest, IndexStorageReported) {
  auto table = MakeTable(50000, 105, Box(0, 0, 1000, 1000));
  SpatialQueryEngine eng(table);
  EXPECT_EQ(eng.IndexStorageBytes(), 0u);  // lazy: nothing built yet
  ASSERT_TRUE(eng.SelectInBox(Box(0, 0, 10, 10)).ok());
  EXPECT_GT(eng.IndexStorageBytes(), 0u);  // x and y imprints exist now
}

// ---------------- parallel execution ----------------

TEST(SpatialEngineTest, NumThreadsKnob) {
  auto table = MakeTable(1000, 110, Box(0, 0, 10, 10));
  EngineOptions serial;
  serial.num_threads = 1;
  EXPECT_EQ(SpatialQueryEngine(table, serial).num_effective_threads(), 1u);
  EngineOptions four;
  four.num_threads = 4;
  EXPECT_EQ(SpatialQueryEngine(table, four).num_effective_threads(), 4u);
  EngineOptions hw;  // 0 = hardware concurrency
  EXPECT_GE(SpatialQueryEngine(table, hw).num_effective_threads(), 1u);
}

TEST(SpatialEngineTest, ParallelMatchesSerialExactly) {
  // Big enough that the morsel paths (scan, build, refine) all engage.
  auto table = MakeTable(600000, 111, Box(0, 0, 1000, 1000));
  EngineOptions serial_opts;
  serial_opts.num_threads = 1;
  EngineOptions parallel_opts;
  parallel_opts.num_threads = 4;
  SpatialQueryEngine serial(table, serial_opts);
  SpatialQueryEngine parallel(table, parallel_opts);

  Geometry g(Polygon::Circle({500, 500}, 300, 32));
  auto s = serial.Select(g, 0.0, {{"classification", 2, 6}});
  auto p = parallel.Select(g, 0.0, {{"classification", 2, 6}});
  ASSERT_TRUE(s.ok());
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->row_ids, s->row_ids);

  // Merged stats equal the serial stats field for field (workers aside).
  EXPECT_EQ(p->filter_x.lines_candidate, s->filter_x.lines_candidate);
  EXPECT_EQ(p->filter_x.lines_full, s->filter_x.lines_full);
  EXPECT_EQ(p->filter_x.values_checked, s->filter_x.values_checked);
  EXPECT_EQ(p->filter_x.rows_selected, s->filter_x.rows_selected);
  EXPECT_EQ(p->filter_y.rows_selected, s->filter_y.rows_selected);
  EXPECT_GT(p->filter_x.workers, 1u);
  EXPECT_EQ(p->refine.candidates, s->refine.candidates);
  EXPECT_EQ(p->refine.accepted, s->refine.accepted);
  EXPECT_EQ(p->refine.cells_nonempty, s->refine.cells_nonempty);
  EXPECT_EQ(p->refine.cells_inside, s->refine.cells_inside);
  EXPECT_EQ(p->refine.cells_outside, s->refine.cells_outside);
  EXPECT_EQ(p->refine.cells_boundary, s->refine.cells_boundary);
  EXPECT_EQ(p->refine.exact_tests, s->refine.exact_tests);
  EXPECT_GT(p->refine.workers, 1u);

  // Operator order in the profile is canonical regardless of which branch
  // finished first.
  const auto& s_ops = s->profile.operators();
  const auto& p_ops = p->profile.operators();
  ASSERT_EQ(p_ops.size(), s_ops.size());
  for (size_t i = 0; i < s_ops.size(); ++i) {
    EXPECT_EQ(p_ops[i].name, s_ops[i].name) << "op " << i;
    EXPECT_EQ(p_ops[i].rows_out, s_ops[i].rows_out) << "op " << i;
  }
}

TEST(SpatialEngineTest, ConcurrentQueriesMatchSerialOracle) {
  // Satellite: N threads firing mixed selections and aggregates at one
  // parallel engine — including the racing first queries that trigger the
  // imprint build — must all observe the serial engine's answers.
  auto table = MakeTable(250000, 112, Box(0, 0, 1000, 1000));
  EngineOptions serial_opts;
  serial_opts.num_threads = 1;
  SpatialQueryEngine oracle(table, serial_opts);

  Geometry circle(Polygon::Circle({400, 400}, 250, 24));
  Geometry box_g(Box(100, 200, 600, 700));
  auto oracle_circle = oracle.SelectInGeometry(circle);
  auto oracle_box = oracle.SelectInGeometry(box_g);
  ASSERT_TRUE(oracle_circle.ok());
  ASSERT_TRUE(oracle_box.ok());
  auto oracle_cnt = oracle.Aggregate(circle, 0.0, {}, "z", AggKind::kCount);
  auto oracle_min = oracle.Aggregate(circle, 0.0, {}, "z", AggKind::kMin);
  auto oracle_max = oracle.Aggregate(circle, 0.0, {}, "z", AggKind::kMax);
  auto oracle_avg = oracle.Aggregate(circle, 0.0, {}, "z", AggKind::kAvg);
  ASSERT_TRUE(oracle_cnt.ok());
  ASSERT_TRUE(oracle_min.ok());
  ASSERT_TRUE(oracle_max.ok());
  ASSERT_TRUE(oracle_avg.ok());

  EngineOptions parallel_opts;
  parallel_opts.num_threads = 4;
  SpatialQueryEngine eng(table, parallel_opts);  // fresh: no imprints yet

  constexpr int kThreads = 6;
  constexpr int kIters = 3;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        switch ((t + i) % 4) {
          case 0: {
            auto r = eng.SelectInGeometry(circle);
            ASSERT_TRUE(r.ok());
            EXPECT_EQ(r->row_ids, oracle_circle->row_ids);
            break;
          }
          case 1: {
            auto r = eng.SelectInGeometry(box_g);
            ASSERT_TRUE(r.ok());
            EXPECT_EQ(r->row_ids, oracle_box->row_ids);
            break;
          }
          case 2: {
            auto c = eng.Aggregate(circle, 0.0, {}, "z", AggKind::kCount);
            auto mn = eng.Aggregate(circle, 0.0, {}, "z", AggKind::kMin);
            auto mx = eng.Aggregate(circle, 0.0, {}, "z", AggKind::kMax);
            ASSERT_TRUE(c.ok());
            ASSERT_TRUE(mn.ok());
            ASSERT_TRUE(mx.ok());
            EXPECT_EQ(*c, *oracle_cnt);   // bit-exact
            EXPECT_EQ(*mn, *oracle_min);  // bit-exact
            EXPECT_EQ(*mx, *oracle_max);  // bit-exact
            break;
          }
          default: {
            auto a = eng.Aggregate(circle, 0.0, {}, "z", AggKind::kAvg);
            ASSERT_TRUE(a.ok());
            // Chunked summation may reorder additions.
            EXPECT_NEAR(*a, *oracle_avg, 1e-9 * std::abs(*oracle_avg));
            break;
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(eng.imprint_manager().num_indexes(), 2u);  // x and y, built once
}

// Random-query equivalence sweep across geometry kinds.
class EngineOracleSweep : public ::testing::TestWithParam<int> {};

TEST_P(EngineOracleSweep, RandomGeometryAgainstOracle) {
  auto table = MakeTable(15000, 200 + GetParam(), Box(0, 0, 500, 500));
  SpatialQueryEngine eng(table);
  Rng rng(300 + GetParam());
  for (int q = 0; q < 5; ++q) {
    double cx = rng.UniformDouble(0, 500), cy = rng.UniformDouble(0, 500);
    double r = rng.UniformDouble(5, 150);
    Geometry g;
    double buffer = 0;
    switch (GetParam() % 3) {
      case 0:
        g = Geometry(Box(cx - r, cy - r, cx + r, cy + r));
        break;
      case 1:
        g = Geometry(Polygon::Circle({cx, cy}, r, 24));
        break;
      default: {
        LineString l;
        l.points = {{cx - r, cy}, {cx, cy + r / 2}, {cx + r, cy}};
        g = Geometry(l);
        buffer = r / 4;
        break;
      }
    }
    auto res = buffer > 0 ? eng.SelectWithinDistance(g, buffer)
                          : eng.SelectInGeometry(g);
    ASSERT_TRUE(res.ok());
    auto oracle = FullScanSelect(*table, g, buffer);
    ASSERT_TRUE(oracle.ok());
    EXPECT_EQ(res->row_ids, *oracle);
  }
}

INSTANTIATE_TEST_SUITE_P(Kinds, EngineOracleSweep, ::testing::Range(0, 6));

}  // namespace
}  // namespace geocol
