#include "simd/dispatch.h"

#include <cstdlib>
#include <cstring>

#include "simd/kernels_generic.h"
#include "telemetry/metrics.h"

#if defined(__x86_64__) || defined(_M_X64)
#define GEOCOL_X86_64 1
#include <cpuid.h>
#endif

namespace geocol {
namespace simd {

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kSse2:
      return "sse2";
    case SimdLevel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

bool ParseSimdLevel(const char* s, SimdLevel* out) {
  if (s == nullptr) return false;
  if (std::strcmp(s, "scalar") == 0) {
    *out = SimdLevel::kScalar;
    return true;
  }
  if (std::strcmp(s, "sse2") == 0) {
    *out = SimdLevel::kSse2;
    return true;
  }
  if (std::strcmp(s, "avx2") == 0) {
    *out = SimdLevel::kAvx2;
    return true;
  }
  return false;
}

namespace {

CpuFeatures DetectCpuFeaturesImpl() {
  CpuFeatures f;
#if GEOCOL_X86_64
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (__get_cpuid(1, &eax, &ebx, &ecx, &edx) != 0) {
    f.sse2 = (edx & (1u << 26)) != 0;
    f.sse42 = (ecx & (1u << 20)) != 0;
    f.avx = (ecx & (1u << 28)) != 0;
    const bool osxsave = (ecx & (1u << 27)) != 0;
    if (osxsave) {
      // xgetbv(0): bit 1 = xmm state, bit 2 = ymm state saved by the OS.
      unsigned lo = 0, hi = 0;
      __asm__ volatile("xgetbv" : "=a"(lo), "=d"(hi) : "c"(0));
      f.os_ymm = (lo & 0x6) == 0x6;
    }
  }
  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx) != 0) {
    f.avx2 = (ebx & (1u << 5)) != 0;
    f.bmi2 = (ebx & (1u << 8)) != 0;
    f.avx512f = (ebx & (1u << 16)) != 0;
  }
#endif
  return f;
}

struct Runtime {
  SimdLevel level = SimdLevel::kScalar;
  KernelTable table;
};

SimdLevel ClampLevel(SimdLevel level) {
  const SimdLevel max = MaxSupportedSimdLevel();
  return level > max ? max : level;
}

/// Publishes the active dispatch level (0=scalar, 1=sse2, 2=avx2) so
/// `geocol metrics` can attribute results to the code path that ran.
void PublishSimdLevelGauge(SimdLevel level) {
  GEOCOL_METRIC_GAUGE(g_level, "geocol_simd_dispatch_level");
  g_level.Set(static_cast<int64_t>(level));
}

Runtime& GetRuntime() {
  static Runtime rt = [] {
    Runtime r;
    r.level = MaxSupportedSimdLevel();
    SimdLevel forced;
    if (ParseSimdLevel(std::getenv("GEOCOL_SIMD"), &forced)) {
      r.level = ClampLevel(forced);
    }
    BindKernelsForLevel(r.level, &r.table);
    PublishSimdLevelGauge(r.level);
    return r;
  }();
  return rt;
}

}  // namespace

const CpuFeatures& DetectCpuFeatures() {
  static const CpuFeatures features = DetectCpuFeaturesImpl();
  return features;
}

SimdLevel MaxSupportedSimdLevel() {
  const CpuFeatures& f = DetectCpuFeatures();
  if (f.avx2 && f.avx && f.os_ymm) return SimdLevel::kAvx2;
  if (f.sse2) return SimdLevel::kSse2;
  return SimdLevel::kScalar;
}

SimdLevel ActiveSimdLevel() { return GetRuntime().level; }

SimdLevel SetSimdLevel(SimdLevel level) {
  Runtime& rt = GetRuntime();
  const SimdLevel applied = ClampLevel(level);
  if (applied != rt.level) {
    KernelTable table;
    BindKernelsForLevel(applied, &table);
    rt.table = table;
    rt.level = applied;
    PublishSimdLevelGauge(applied);
  }
  return applied;
}

const KernelTable& Kernels() { return GetRuntime().table; }

void BindKernelsForLevel(SimdLevel level, KernelTable* table) {
  BindScalarKernels(table);
  if (level >= SimdLevel::kSse2) BindSse2Kernels(table);
  if (level >= SimdLevel::kAvx2) BindAvx2Kernels(table);
}

}  // namespace simd
}  // namespace geocol
