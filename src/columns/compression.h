// Column compression codecs for the flat-table storage. Paper §3.1: the
// flat table "is more flexible to exploit compression techniques which are
// more advantageous for column-stores such as run length encoding."
//
// Codecs:
//   kRaw         verbatim values
//   kRle         run-length (value, count) pairs — flags, classification
//   kFor         frame-of-reference + bit packing — bounded-range integers
//   kDelta       delta + zigzag + bit packing — sorted/acquisition-ordered
//                integers (coordinates, gps_time bit patterns)
// kAuto sizes every applicable codec and picks the smallest.
#ifndef GEOCOL_COLUMNS_COMPRESSION_H_
#define GEOCOL_COLUMNS_COMPRESSION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "columns/column.h"
#include "columns/flat_table.h"
#include "util/status.h"

namespace geocol {

enum class ColumnCodec : uint8_t {
  kRaw = 0,
  kRle = 1,
  kFor = 2,
  kDelta = 3,
  kAuto = 255,  ///< choose per column (never appears in encoded payloads)
};

const char* ColumnCodecName(ColumnCodec codec);

/// Outcome of one column compression.
struct CompressionStats {
  ColumnCodec codec = ColumnCodec::kRaw;
  uint64_t uncompressed_bytes = 0;
  uint64_t compressed_bytes = 0;
  double Ratio() const {
    return compressed_bytes > 0
               ? static_cast<double>(uncompressed_bytes) / compressed_bytes
               : 0.0;
  }
};

/// Encodes `count` values of `type` from a raw little-endian buffer as one
/// bare codec payload (no magic/type/count header — the caller's framing
/// holds those). kAuto sizes every applicable codec and picks the
/// smallest; the codec actually used lands in `*chosen` (kFor of an empty
/// input falls back to kRaw). This is the chunk-granular encode path of
/// the paged tier's GPC1 files.
std::vector<uint8_t> CompressChunkPayload(DataType type, const void* values,
                                          uint64_t count, ColumnCodec codec,
                                          ColumnCodec* chosen);

/// Decodes a CompressChunkPayload buffer into `out` (`count` values of
/// `type`, caller-allocated). Corruption when the payload does not decode
/// to exactly `count` values.
Status DecompressChunkPayload(DataType type, ColumnCodec codec,
                              const uint8_t* data, size_t size,
                              uint64_t count, void* out);

/// Encodes a column into a self-describing buffer:
/// magic "GCC2" | type u8 | codec u8 | count u64 | payload.
Result<std::vector<uint8_t>> CompressColumn(
    const Column& column, ColumnCodec codec = ColumnCodec::kAuto,
    CompressionStats* stats = nullptr);

/// Decodes a CompressColumn buffer into a new column named `name`.
Result<ColumnPtr> DecompressColumn(const std::vector<uint8_t>& data,
                                   const std::string& name);

/// Writes/reads one compressed column file: a CompressColumn buffer plus a
/// whole-file CRC32C footer, written atomically. The reader verifies the
/// footer before decoding; legacy footer-less "GCC1" files still load.
/// `stats->compressed_bytes` reports the full on-disk size.
Status WriteCompressedColumnFile(const Column& column, const std::string& path,
                                 ColumnCodec codec = ColumnCodec::kAuto,
                                 CompressionStats* stats = nullptr);
Result<ColumnPtr> ReadCompressedColumnFile(const std::string& path,
                                           const std::string& name);

/// Persists a whole table compressed: `<dir>/schema.gct` manifest (same as
/// the uncompressed layout) + `<dir>/<col>.gcz` per column. Returns total
/// compressed bytes via `total_bytes` when non-null.
Status WriteCompressedTableDir(const FlatTable& table, const std::string& dir,
                               uint64_t* total_bytes = nullptr);
Result<FlatTable> ReadCompressedTableDir(const std::string& dir);

}  // namespace geocol

#endif  // GEOCOL_COLUMNS_COMPRESSION_H_
