// Zone maps (min/max per fixed block of rows) — the classic lightweight
// secondary index the imprints paper positions itself against. Zone maps
// are cheap and effective on clustered data but their filter quality
// collapses on unclustered data (each zone's [min,max] widens to the whole
// domain); E5 reproduces exactly this contrast.
#ifndef GEOCOL_BASELINES_ZONEMAP_H_
#define GEOCOL_BASELINES_ZONEMAP_H_

#include <cstdint>
#include <vector>

#include "columns/column.h"
#include "util/bitvector.h"
#include "util/status.h"

namespace geocol {

/// Scan accounting, mirroring ImprintScanStats for apples-to-apples rows.
struct ZoneMapScanStats {
  uint64_t zones_total = 0;
  uint64_t zones_candidate = 0;
  uint64_t zones_full = 0;      ///< zone entirely inside [lo, hi]
  uint64_t values_checked = 0;
  uint64_t rows_selected = 0;

  double TouchedFraction() const {
    return zones_total > 0
               ? static_cast<double>(zones_candidate) / zones_total
               : 0.0;
  }
};

/// Min/max-per-zone index over one column.
class ZoneMapIndex {
 public:
  /// Builds with `rows_per_zone` granularity (default roughly one memory
  /// page of doubles).
  static Result<ZoneMapIndex> Build(const Column& column,
                                    uint32_t rows_per_zone = 512);

  uint64_t num_zones() const { return mins_.size(); }
  uint32_t rows_per_zone() const { return rows_per_zone_; }
  uint64_t built_epoch() const { return built_epoch_; }

  /// Sets bit z in `candidates` when zone z's [min,max] overlaps [lo,hi];
  /// in `full_zones` when it is contained in it.
  void FilterRange(double lo, double hi, BitVector* candidates,
                   BitVector* full_zones = nullptr) const;

  /// Row-level range selection through the zone map.
  Status RangeSelect(const Column& column, double lo, double hi,
                     BitVector* out_rows,
                     ZoneMapScanStats* stats = nullptr) const;

  uint64_t StorageBytes() const {
    return (mins_.size() + maxs_.size()) * sizeof(double);
  }

 private:
  uint32_t rows_per_zone_ = 0;
  uint64_t num_rows_ = 0;
  uint64_t built_epoch_ = 0;
  std::vector<double> mins_;
  std::vector<double> maxs_;
};

}  // namespace geocol

#endif  // GEOCOL_BASELINES_ZONEMAP_H_
