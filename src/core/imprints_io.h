// Disk persistence for column imprints. MonetDB keeps imprints alongside
// the BAT heaps so a restarted server does not pay the rebuild; we mirror
// that with a compact sidecar file per column:
//   magic "GIM1" | epoch | rows | values_per_line | num_bins |
//   bounds[num_bins] | dict entries | vectors.
#ifndef GEOCOL_CORE_IMPRINTS_IO_H_
#define GEOCOL_CORE_IMPRINTS_IO_H_

#include <string>

#include "core/imprints.h"
#include "util/status.h"

namespace geocol {

/// Writes `index` to `path` (truncating).
Status WriteImprintsFile(const ImprintsIndex& index, const std::string& path);

/// Reads an imprints file. The caller is responsible for checking
/// `built_epoch()` against the live column before trusting the index.
Result<ImprintsIndex> ReadImprintsFile(const std::string& path);

/// Convenience: loads the sidecar if it exists and matches the column's
/// epoch and row count, else builds fresh and writes the sidecar.
Result<ImprintsIndex> LoadOrBuildImprints(const Column& column,
                                          const std::string& path,
                                          const ImprintsOptions& options = {});

}  // namespace geocol

#endif  // GEOCOL_CORE_IMPRINTS_IO_H_
