#include "sql/planner.h"

#include <algorithm>
#include <map>

#include "geom/wkt.h"

namespace geocol {
namespace sql {

bool IsLayerColumn(const std::string& name) {
  return name == "id" || name == "class" || name == "name" || name == "geom";
}

namespace {

Status ValidateItems(const PlannedQuery& pq, const Schema* schema) {
  for (const SelectItem& it : pq.stmt.items) {
    if (it.star) continue;
    if (pq.target == PlannedQuery::Target::kLayer) {
      if (!IsLayerColumn(it.column)) {
        return Status::NotFound("no column '" + it.column + "' in layer '" +
                                pq.stmt.table + "'");
      }
      if (it.agg != AggFunc::kNone && it.column == "geom") {
        return Status::InvalidArgument("cannot aggregate geometry column");
      }
      if (it.agg != AggFunc::kNone && it.column == "name" &&
          it.agg != AggFunc::kCount) {
        return Status::InvalidArgument("cannot aggregate text column 'name'");
      }
    } else {
      if (!schema->HasField(it.column)) {
        return Status::NotFound("no column '" + it.column + "' in table '" +
                                pq.stmt.table + "'");
      }
    }
  }
  return Status::OK();
}

}  // namespace

Result<PlannedQuery> PlanQuery(Catalog* catalog, SelectStmt stmt) {
  PlannedQuery pq;
  if (stmt.items.empty()) {
    return Status::InvalidArgument("SQL: empty select list");
  }
  // Aggregates and plain columns cannot mix (no GROUP BY in the dialect).
  bool any_agg = false, any_plain = false;
  for (const SelectItem& it : stmt.items) {
    (it.agg != AggFunc::kNone ? any_agg : any_plain) = true;
  }
  if (any_agg && any_plain) {
    return Status::InvalidArgument(
        "SQL: mixing aggregates and plain columns requires GROUP BY, which "
        "this dialect does not support");
  }

  // Resolve FROM.
  Schema schema;
  if (catalog->HasPointCloud(stmt.table)) {
    pq.target = PlannedQuery::Target::kPointCloud;
    GEOCOL_ASSIGN_OR_RETURN(pq.engine, catalog->GetEngine(stmt.table));
    schema = pq.engine->table().schema();
  } else if (catalog->HasShardedPointCloud(stmt.table)) {
    pq.target = PlannedQuery::Target::kPointCloud;
    GEOCOL_ASSIGN_OR_RETURN(pq.router, catalog->GetRouter(stmt.table));
    schema = pq.router->schema();
  } else if (catalog->HasLivePointCloud(stmt.table)) {
    pq.target = PlannedQuery::Target::kPointCloud;
    GEOCOL_ASSIGN_OR_RETURN(std::shared_ptr<LiveTable> live,
                            catalog->GetLiveTable(stmt.table));
    // Pin the current epoch for the whole statement: the snapshot engine
    // is bound to exactly this epoch's column versions.
    EpochSnapshot snapshot = live->Pin();
    pq.engine_owner = snapshot.engine;
    pq.engine = snapshot.engine.get();
    schema = snapshot.table->schema();
  } else if (catalog->HasLayer(stmt.table)) {
    pq.target = PlannedQuery::Target::kLayer;
    GEOCOL_ASSIGN_OR_RETURN(pq.layer, catalog->GetLayer(stmt.table));
  } else {
    return Status::NotFound("unknown dataset '" + stmt.table + "'");
  }

  // Normalise spatial predicates: at most one geometry predicate and at
  // most one NEAR join.
  for (SpatialPred& sp : stmt.spatial) {
    if (sp.kind == SpatialPred::Kind::kNearLayer) {
      if (pq.near) {
        return Status::Unsupported("SQL: multiple NEAR predicates");
      }
      if (pq.target == PlannedQuery::Target::kLayer) {
        return Status::Unsupported("SQL: NEAR on a vector layer");
      }
      if (pq.router != nullptr) {
        return Status::Unsupported("SQL: NEAR on a sharded point cloud");
      }
      GEOCOL_ASSIGN_OR_RETURN(pq.near_layer, catalog->GetLayer(sp.layer));
      pq.near = true;
      pq.near_class = sp.feature_class;
      pq.near_distance = sp.distance;
    } else {
      if (pq.has_geometry) {
        return Status::Unsupported("SQL: multiple spatial predicates");
      }
      pq.has_geometry = true;
      pq.geometry = sp.geometry;
      pq.buffer = sp.kind == SpatialPred::Kind::kDWithin ? sp.distance : 0.0;
    }
  }

  // Merge attribute ranges per column.
  std::map<std::string, AttributeRange> merged;
  for (const RangePred& r : stmt.ranges) {
    if (pq.target == PlannedQuery::Target::kLayer) {
      if (r.column != "id" && r.column != "class") {
        return Status::NotFound("no numeric column '" + r.column +
                                "' in layer '" + stmt.table + "'");
      }
    } else if (!schema.HasField(r.column)) {
      return Status::NotFound("no column '" + r.column + "' in table '" +
                              stmt.table + "'");
    }
    auto [it, inserted] = merged.emplace(
        r.column, AttributeRange{r.column, r.lo, r.hi});
    if (!inserted) {
      it->second.lo = std::max(it->second.lo, r.lo);
      it->second.hi = std::min(it->second.hi, r.hi);
    }
  }
  for (auto& [col, range] : merged) pq.thematic.push_back(range);

  // ORDER BY validation.
  if (!stmt.order_by.empty()) {
    if (stmt.IsAggregate()) {
      return Status::InvalidArgument("SQL: ORDER BY with aggregates");
    }
    if (pq.target == PlannedQuery::Target::kLayer) {
      if (!IsLayerColumn(stmt.order_by) || stmt.order_by == "geom") {
        return Status::NotFound("SQL: cannot ORDER BY '" + stmt.order_by +
                                "' on a layer");
      }
    } else if (!schema.HasField(stmt.order_by)) {
      return Status::NotFound("SQL: no ORDER BY column '" + stmt.order_by +
                              "'");
    }
  }

  pq.stmt = std::move(stmt);
  GEOCOL_RETURN_NOT_OK(
      ValidateItems(pq, pq.target == PlannedQuery::Target::kPointCloud
                            ? &schema
                            : nullptr));
  return pq;
}

std::string PlannedQuery::Describe() const {
  std::string s;
  s += "plan for: " + stmt.ToString() + "\n";
  s += std::string("  target: ") +
       (target == Target::kPointCloud
            ? (router != nullptr
                   ? "sharded point cloud (" +
                         std::to_string(router->num_shards()) +
                         " Hilbert shards + imprints)"
                   : std::string("point cloud (flat table + imprints)"))
            : std::string("vector layer (envelope R-tree)")) +
       " '" + stmt.table + "'\n";
  if (router != nullptr) {
    s += "  step 0: bbox-prune shards against query envelope, "
         "scatter-gather the rest\n";
  }
  if (has_geometry) {
    s += "  step 1: imprint filter on x/y over envelope of " +
         ToWkt(geometry) + (buffer > 0 ? " buffered " + std::to_string(buffer)
                                       : std::string()) +
         "\n";
    s += "  step 2: regular-grid refinement, exact tests on boundary cells\n";
  }
  if (near) {
    s += "  join: NEAR layer '" + near_layer->name() + "' class " +
         std::to_string(near_class) + " within " +
         std::to_string(near_distance) + " (per-feature two-step + union)\n";
  }
  for (const AttributeRange& a : thematic) {
    s += "  thematic: imprint filter on " + a.column + " in [" +
         std::to_string(a.lo) + ", " + std::to_string(a.hi) + "]\n";
  }
  if (!has_geometry && !near && thematic.empty()) {
    s += "  full scan (no predicates)\n";
  }
  if (stmt.IsAggregate()) s += "  aggregate over selection\n";
  if (!stmt.order_by.empty()) {
    s += "  sort by " + stmt.order_by + (stmt.order_desc ? " desc" : " asc") +
         "\n";
  }
  if (stmt.limit >= 0) s += "  limit " + std::to_string(stmt.limit) + "\n";
  return s;
}

}  // namespace sql
}  // namespace geocol
