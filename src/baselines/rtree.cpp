#include "baselines/rtree.h"

#include <algorithm>
#include <cmath>

#include "columns/flat_table.h"

namespace geocol {

RTree RTree::BulkLoad(std::vector<Entry> entries, uint32_t fanout) {
  RTree tree;
  tree.num_entries_ = entries.size();
  if (entries.empty()) return tree;
  fanout = std::max<uint32_t>(fanout, 2);

  // ---- Sort-Tile-Recursive leaf packing.
  size_t n = entries.size();
  size_t num_leaves = (n + fanout - 1) / fanout;
  size_t slabs = static_cast<size_t>(
      std::ceil(std::sqrt(static_cast<double>(num_leaves))));
  size_t per_slab = slabs > 0 ? (n + slabs - 1) / slabs : n;

  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    return a.box.center().x < b.box.center().x;
  });
  for (size_t s = 0; s * per_slab < n; ++s) {
    auto first = entries.begin() + s * per_slab;
    auto last = entries.begin() + std::min(n, (s + 1) * per_slab);
    std::sort(first, last, [](const Entry& a, const Entry& b) {
      return a.box.center().y < b.box.center().y;
    });
  }
  tree.leaf_entries_ = std::move(entries);

  // Leaf nodes over contiguous slices.
  std::vector<uint32_t> level;
  for (size_t first = 0; first < n; first += fanout) {
    Node node;
    node.leaf = true;
    node.first = static_cast<uint32_t>(first);
    node.count = static_cast<uint32_t>(std::min<size_t>(fanout, n - first));
    for (uint32_t i = 0; i < node.count; ++i) {
      node.box.Extend(tree.leaf_entries_[node.first + i].box);
    }
    level.push_back(static_cast<uint32_t>(tree.nodes_.size()));
    tree.nodes_.push_back(node);
  }
  tree.height_ = 1;

  // ---- Upper levels: STR over node MBR centers.
  while (level.size() > 1) {
    std::sort(level.begin(), level.end(), [&](uint32_t a, uint32_t b) {
      return tree.nodes_[a].box.center().x < tree.nodes_[b].box.center().x;
    });
    size_t groups = (level.size() + fanout - 1) / fanout;
    size_t gslabs = static_cast<size_t>(
        std::ceil(std::sqrt(static_cast<double>(groups))));
    size_t gper = gslabs > 0 ? (level.size() + gslabs - 1) / gslabs : level.size();
    for (size_t s = 0; s * gper < level.size(); ++s) {
      auto first = level.begin() + s * gper;
      auto last = level.begin() + std::min(level.size(), (s + 1) * gper);
      std::sort(first, last, [&](uint32_t a, uint32_t b) {
        return tree.nodes_[a].box.center().y < tree.nodes_[b].box.center().y;
      });
    }
    std::vector<uint32_t> parents;
    for (size_t first = 0; first < level.size(); first += fanout) {
      Node node;
      node.leaf = false;
      node.first = static_cast<uint32_t>(tree.children_.size());
      node.count = static_cast<uint32_t>(
          std::min<size_t>(fanout, level.size() - first));
      for (uint32_t i = 0; i < node.count; ++i) {
        uint32_t child = level[first + i];
        tree.children_.push_back(child);
        node.box.Extend(tree.nodes_[child].box);
      }
      parents.push_back(static_cast<uint32_t>(tree.nodes_.size()));
      tree.nodes_.push_back(node);
    }
    level = std::move(parents);
    ++tree.height_;
  }
  tree.root_ = level[0];
  return tree;
}

void RTree::QueryBox(const Box& query, std::vector<uint64_t>* out) const {
  last_nodes_visited_ = 0;
  VisitIntersecting(query, [out](uint64_t payload, const Box&) {
    out->push_back(payload);
  });
}

Result<RTree> BuildPointRTree(const FlatTable& table, uint32_t fanout) {
  GEOCOL_ASSIGN_OR_RETURN(ColumnPtr xc, table.GetColumn("x"));
  GEOCOL_ASSIGN_OR_RETURN(ColumnPtr yc, table.GetColumn("y"));
  std::vector<RTree::Entry> entries;
  entries.reserve(xc->size());
  for (uint64_t r = 0; r < xc->size(); ++r) {
    double x = xc->GetDouble(r), y = yc->GetDouble(r);
    entries.push_back({Box(x, y, x, y), r});
  }
  return RTree::BulkLoad(std::move(entries), fanout);
}

}  // namespace geocol
