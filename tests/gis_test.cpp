// GIS layer tests: vector generators, layers, catalog, and the scenario-2
// point-cloud x layer joins.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "geom/predicates.h"
#include "gis/catalog.h"
#include "gis/spatial_join.h"
#include "pointcloud/generator.h"
#include "pointcloud/vector_gen.h"

namespace geocol {
namespace {

const Box kExtent(85000, 444000, 86000, 445000);

TEST(VectorGenTest, RoadsHaveClassesAndGeometry) {
  TerrainModel terrain(1);
  OsmGenerator gen(1, kExtent, terrain);
  auto roads = gen.GenerateRoads(50);
  EXPECT_EQ(roads.size(), 50u);
  std::set<uint32_t> classes;
  for (const auto& r : roads) {
    EXPECT_TRUE(r.geometry.is_line());
    EXPECT_GE(r.geometry.line().points.size(), 2u);
    EXPECT_FALSE(r.name.empty());
    classes.insert(r.feature_class);
    // All vertices inside the extent.
    Box env = r.geometry.Envelope();
    EXPECT_TRUE(kExtent.Contains(env)) << r.name;
  }
  EXPECT_GE(classes.size(), 2u) << "expected a mix of road classes";
}

TEST(VectorGenTest, Deterministic) {
  TerrainModel terrain(2);
  OsmGenerator g1(7, kExtent, terrain), g2(7, kExtent, terrain);
  auto r1 = g1.GenerateRoads(10);
  auto r2 = g2.GenerateRoads(10);
  ASSERT_EQ(r1.size(), r2.size());
  for (size_t i = 0; i < r1.size(); ++i) {
    EXPECT_EQ(r1[i].geometry.line().points.size(),
              r2[i].geometry.line().points.size());
  }
}

TEST(VectorGenTest, PoisClusterInUrbanAreas) {
  TerrainModel terrain(3);
  OsmGenerator gen(3, kExtent, terrain);
  auto pois = gen.GeneratePois(200);
  EXPECT_GT(pois.size(), 0u);
  for (const auto& p : pois) EXPECT_TRUE(p.geometry.is_point());
}

TEST(VectorGenTest, LandUseCoversExtent) {
  TerrainModel terrain(4);
  UrbanAtlasGenerator gen(4, kExtent, terrain);
  auto blocks = gen.GenerateLandUse(8);
  EXPECT_EQ(blocks.size(), 64u);
  double area = 0;
  for (const auto& b : blocks) {
    ASSERT_TRUE(b.geometry.is_polygon());
    area += b.geometry.polygon().Area();
    EXPECT_STRNE(UrbanAtlasClassName(
                     static_cast<UrbanAtlasClass>(b.feature_class)),
                 "Unknown");
  }
  EXPECT_NEAR(area, kExtent.area(), kExtent.area() * 1e-9);
}

TEST(VectorGenTest, TransitCorridorsOnlyFromMotorways) {
  TerrainModel terrain(5);
  OsmGenerator og(5, kExtent, terrain);
  UrbanAtlasGenerator ug(5, kExtent, terrain);
  auto roads = og.GenerateRoads(100);
  auto corridors = ug.GenerateTransitCorridors(roads, 25.0);
  size_t motorways = 0;
  for (const auto& r : roads) {
    motorways += r.feature_class == static_cast<uint32_t>(RoadClass::kMotorway);
  }
  EXPECT_EQ(corridors.size(), motorways);
  for (const auto& c : corridors) {
    EXPECT_EQ(c.feature_class,
              static_cast<uint32_t>(UrbanAtlasClass::kFastTransitRoads));
    EXPECT_TRUE(c.geometry.is_multipolygon());
  }
}

TEST(BufferLineTest, CorridorContainsPointsNearLine) {
  LineString l;
  l.points = {{0, 0}, {100, 0}, {100, 100}};
  MultiPolygon corridor = BufferLine(l, 10.0);
  Geometry g(corridor);
  EXPECT_TRUE(GeometryContainsPoint(g, {50, 5}));
  EXPECT_TRUE(GeometryContainsPoint(g, {50, -5}));
  EXPECT_TRUE(GeometryContainsPoint(g, {105, 50}));
  EXPECT_TRUE(GeometryContainsPoint(g, {100, 0}));  // joint
  EXPECT_FALSE(GeometryContainsPoint(g, {50, 50}));
  EXPECT_FALSE(GeometryContainsPoint(g, {50, 20}));
}

// ---------------- VectorLayer ----------------

std::shared_ptr<VectorLayer> MakeTestLayer() {
  std::vector<VectorFeature> fs;
  VectorFeature a;
  a.id = 1;
  a.geometry = Geometry(Polygon::FromBox(Box(0, 0, 10, 10)));
  a.feature_class = 100;
  a.name = "a";
  VectorFeature b;
  b.id = 2;
  b.geometry = Geometry(Polygon::FromBox(Box(20, 20, 30, 30)));
  b.feature_class = 200;
  b.name = "b";
  VectorFeature c;
  c.id = 3;
  LineString l;
  l.points = {{0, 15}, {30, 15}};
  c.geometry = Geometry(l);
  c.feature_class = 100;
  c.name = "c";
  fs = {a, b, c};
  return VectorLayer::FromFeatures("test", std::move(fs));
}

TEST(VectorLayerTest, SelectByClass) {
  auto layer = MakeTestLayer();
  EXPECT_EQ(layer->SelectByClass(100), (std::vector<uint64_t>{0, 2}));
  EXPECT_EQ(layer->SelectByClass(200), (std::vector<uint64_t>{1}));
  EXPECT_TRUE(layer->SelectByClass(999).empty());
}

TEST(VectorLayerTest, QueryEnvelopesAndIntersecting) {
  auto layer = MakeTestLayer();
  auto env_hits = layer->QueryEnvelopes(Box(5, 5, 25, 25));
  EXPECT_EQ(env_hits, (std::vector<uint64_t>{0, 1, 2}));
  auto exact = layer->QueryIntersecting(Geometry(Box(5, 5, 8, 8)));
  EXPECT_EQ(exact, (std::vector<uint64_t>{0}));
  auto line_hit = layer->QueryIntersecting(Geometry(Box(5, 14, 6, 16)));
  EXPECT_EQ(line_hit, (std::vector<uint64_t>{2}));
}

TEST(VectorLayerTest, QueryWithinDistance) {
  auto layer = MakeTestLayer();
  // 3 units above polygon a: within 5, not within 2.
  auto near = layer->QueryWithinDistance(Geometry(Point{5, 13}), 5);
  EXPECT_TRUE(std::find(near.begin(), near.end(), 0u) != near.end());
  auto far = layer->QueryWithinDistance(Geometry(Point{5, 13}), 2);
  EXPECT_TRUE(std::find(far.begin(), far.end(), 0u) == far.end());
  // The line at y=15 is 2 away.
  EXPECT_TRUE(std::find(near.begin(), near.end(), 2u) != near.end());
}

TEST(VectorLayerTest, EnvelopeUnion) {
  auto layer = MakeTestLayer();
  Box env = layer->Envelope();
  EXPECT_EQ(env.min_x, 0);
  EXPECT_EQ(env.max_x, 30);
  EXPECT_EQ(env.max_y, 30);
}

TEST(VectorLayerTest, AddInvalidatesIndex) {
  auto layer = MakeTestLayer();
  EXPECT_TRUE(layer->QueryEnvelopes(Box(100, 100, 110, 110)).empty());
  VectorFeature d;
  d.id = 4;
  d.geometry = Geometry(Point{105, 105});
  layer->Add(d);
  EXPECT_EQ(layer->QueryEnvelopes(Box(100, 100, 110, 110)).size(), 1u);
}

// ---------------- Catalog ----------------

TEST(CatalogTest, RegistrationAndLookup) {
  Catalog cat;
  auto table = std::make_shared<FlatTable>(
      "pc", Schema({{"x", DataType::kFloat64}, {"y", DataType::kFloat64}}));
  ASSERT_TRUE(cat.AddPointCloud("ahn2", table).ok());
  ASSERT_TRUE(cat.AddLayer(MakeTestLayer()).ok());
  EXPECT_TRUE(cat.HasPointCloud("ahn2"));
  EXPECT_FALSE(cat.HasPointCloud("test"));
  EXPECT_TRUE(cat.HasLayer("test"));
  EXPECT_TRUE(cat.GetEngine("ahn2").ok());
  EXPECT_TRUE(cat.GetTable("ahn2").ok());
  EXPECT_TRUE(cat.GetLayer("test").ok());
  EXPECT_EQ(cat.GetEngine("nope").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(cat.GetLayer("ahn2").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(cat.PointCloudNames(), (std::vector<std::string>{"ahn2"}));
  EXPECT_EQ(cat.LayerNames(), (std::vector<std::string>{"test"}));
}

TEST(CatalogTest, DuplicateNamesRejected) {
  Catalog cat;
  auto table = std::make_shared<FlatTable>(
      "pc", Schema({{"x", DataType::kFloat64}}));
  ASSERT_TRUE(cat.AddPointCloud("d", table).ok());
  EXPECT_EQ(cat.AddPointCloud("d", table).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(cat.AddLayer(VectorLayer::FromFeatures("d", {})).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(cat.AddPointCloud("n", nullptr).code(),
            StatusCode::kInvalidArgument);
}

// ---------------- spatial joins ----------------

class SpatialJoinTest : public ::testing::Test {
 protected:
  void SetUp() override {
    AhnGeneratorOptions opts;
    opts.extent = Box(85000, 444000, 85300, 444300);
    AhnGenerator gen(opts);
    auto table = gen.GenerateTable(30000);
    ASSERT_TRUE(table.ok());
    table_ = *table;
    engine_ = std::make_unique<SpatialQueryEngine>(table_);

    std::vector<VectorFeature> fs;
    VectorFeature road;
    road.id = 1;
    LineString l;
    l.points = {{85000, 444150}, {85300, 444160}};
    road.geometry = Geometry(l);
    road.feature_class =
        static_cast<uint32_t>(UrbanAtlasClass::kFastTransitRoads);
    road.name = "transit";
    VectorFeature park;
    park.id = 2;
    park.geometry =
        Geometry(Polygon::FromBox(Box(85050, 444050, 85120, 444120)));
    park.feature_class = static_cast<uint32_t>(UrbanAtlasClass::kGreenUrbanAreas);
    park.name = "park";
    layer_ = VectorLayer::FromFeatures("ua", {road, park});
  }

  std::shared_ptr<FlatTable> table_;
  std::unique_ptr<SpatialQueryEngine> engine_;
  std::shared_ptr<VectorLayer> layer_;
};

TEST_F(SpatialJoinTest, PointsNearTransitRoadMatchesManualQuery) {
  auto near = PointsNearLayerClass(
      engine_.get(), layer_.get(),
      static_cast<uint32_t>(UrbanAtlasClass::kFastTransitRoads), 20.0);
  ASSERT_TRUE(near.ok());
  EXPECT_EQ(near->features_matched, 1u);
  auto direct =
      engine_->SelectWithinDistance(layer_->feature(0).geometry, 20.0);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(near->row_ids, direct->row_ids);
  EXPECT_FALSE(near->row_ids.empty());
  EXPECT_FALSE(near->profile.empty());
}

TEST_F(SpatialJoinTest, ClassZeroMeansAnyFeature) {
  auto any = PointsNearLayerClass(engine_.get(), layer_.get(), 0, 10.0);
  ASSERT_TRUE(any.ok());
  auto transit = PointsNearLayerClass(
      engine_.get(), layer_.get(),
      static_cast<uint32_t>(UrbanAtlasClass::kFastTransitRoads), 10.0);
  ASSERT_TRUE(transit.ok());
  EXPECT_GE(any->row_ids.size(), transit->row_ids.size());
  EXPECT_EQ(any->features_matched, 2u);
}

TEST_F(SpatialJoinTest, ResultsAreSortedAndUnique) {
  auto near = PointsNearLayerClass(engine_.get(), layer_.get(), 0, 30.0);
  ASSERT_TRUE(near.ok());
  EXPECT_TRUE(std::is_sorted(near->row_ids.begin(), near->row_ids.end()));
  EXPECT_EQ(std::adjacent_find(near->row_ids.begin(), near->row_ids.end()),
            near->row_ids.end());
}

TEST_F(SpatialJoinTest, AverageElevationNearTransitRoad) {
  // The demo's flagship query: "compute the average elevation of the LIDAR
  // points that are near a fast transit road".
  auto avg = AggregateNearLayerClass(
      engine_.get(), layer_.get(),
      static_cast<uint32_t>(UrbanAtlasClass::kFastTransitRoads), 20.0, "z",
      AggKind::kAvg);
  ASSERT_TRUE(avg.ok());
  auto near = PointsNearLayerClass(
      engine_.get(), layer_.get(),
      static_cast<uint32_t>(UrbanAtlasClass::kFastTransitRoads), 20.0);
  ASSERT_TRUE(near.ok());
  ColumnPtr z = table_->column("z");
  double sum = 0;
  for (uint64_t r : near->row_ids) sum += z->GetDouble(r);
  EXPECT_NEAR(*avg, sum / near->row_ids.size(), 1e-9);
  auto count = AggregateNearLayerClass(
      engine_.get(), layer_.get(),
      static_cast<uint32_t>(UrbanAtlasClass::kFastTransitRoads), 20.0, "z",
      AggKind::kCount);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, near->row_ids.size());
}

TEST_F(SpatialJoinTest, NoMatchingClassYieldsEmpty) {
  auto near = PointsNearLayerClass(engine_.get(), layer_.get(), 99999, 50.0);
  ASSERT_TRUE(near.ok());
  EXPECT_TRUE(near->row_ids.empty());
  EXPECT_EQ(near->features_matched, 0u);
}

TEST_F(SpatialJoinTest, LayerIntersectingLayer) {
  // Roads layer intersecting the UA layer's park polygons.
  std::vector<VectorFeature> roads;
  VectorFeature through_park;
  through_park.id = 10;
  LineString l1;
  l1.points = {{85000, 444080}, {85300, 444085}};
  through_park.geometry = Geometry(l1);
  through_park.feature_class = 1;
  VectorFeature elsewhere;
  elsewhere.id = 11;
  LineString l2;
  l2.points = {{85000, 444290}, {85300, 444295}};
  elsewhere.geometry = Geometry(l2);
  elsewhere.feature_class = 1;
  auto road_layer =
      VectorLayer::FromFeatures("roads", {through_park, elsewhere});
  auto hits = LayerIntersectingLayer(
      road_layer.get(), layer_.get(),
      static_cast<uint32_t>(UrbanAtlasClass::kGreenUrbanAreas));
  EXPECT_EQ(hits, (std::vector<uint64_t>{0}));
}

}  // namespace
}  // namespace geocol
