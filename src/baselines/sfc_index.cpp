#include "baselines/sfc_index.h"

#include <algorithm>
#include <numeric>

#include "sfc/morton.h"

namespace geocol {

namespace {

/// Recursive quadrant descent. `prefix` holds the Morton bits fixed so
/// far; a quadrant at depth d covers codes
/// [prefix << 2*(bits-d), (prefix+1) << 2*(bits-d)).
void Descend(uint64_t prefix, uint32_t depth, uint32_t bits,
             const Box& cell, const Box& query,
             std::vector<MortonInterval>* out) {
  if (!cell.Intersects(query)) return;
  uint32_t shift = 2 * (bits - depth);
  uint64_t lo = prefix << shift;
  uint64_t hi = ((prefix + 1) << shift) - 1;
  if (query.Contains(cell) || depth == bits) {
    out->push_back({lo, hi});
    return;
  }
  double mx = (cell.min_x + cell.max_x) / 2;
  double my = (cell.min_y + cell.max_y) / 2;
  // Quadrant order = Morton order: (x-low,y-low), (x-high,y-low),
  // (x-low,y-high), (x-high,y-high) — children emit sorted intervals.
  Box q00(cell.min_x, cell.min_y, mx, my);
  Box q10(mx, cell.min_y, cell.max_x, my);
  Box q01(cell.min_x, my, mx, cell.max_y);
  Box q11(mx, my, cell.max_x, cell.max_y);
  Descend(prefix * 4 + 0, depth + 1, bits, q00, query, out);
  Descend(prefix * 4 + 1, depth + 1, bits, q10, query, out);
  Descend(prefix * 4 + 2, depth + 1, bits, q01, query, out);
  Descend(prefix * 4 + 3, depth + 1, bits, q11, query, out);
}

}  // namespace

std::vector<MortonInterval> DecomposeBoxToMortonIntervals(
    const Box& query, const Box& extent, uint32_t bits,
    size_t max_intervals) {
  std::vector<MortonInterval> out;
  if (max_intervals == 0 || bits == 0 || extent.empty()) return out;
  // Depth-limit the descent so the raw interval count stays manageable;
  // the exactness loss only widens candidate ranges.
  uint32_t depth_limit = std::min<uint32_t>(bits, 8);
  // Descend with an artificial "bits" equal to depth_limit, then widen the
  // codes back to full resolution.
  std::vector<MortonInterval> coarse;
  Descend(0, 0, depth_limit, extent, query, &coarse);
  uint32_t widen = 2 * (bits - depth_limit);
  out.reserve(coarse.size());
  for (const MortonInterval& iv : coarse) {
    out.push_back({iv.lo << widen, ((iv.hi + 1) << widen) - 1});
  }
  // Merge touching intervals (children of a fully-covered parent).
  std::sort(out.begin(), out.end(),
            [](const MortonInterval& a, const MortonInterval& b) {
              return a.lo < b.lo;
            });
  std::vector<MortonInterval> merged;
  for (const MortonInterval& iv : out) {
    if (!merged.empty() && iv.lo <= merged.back().hi + 1) {
      merged.back().hi = std::max(merged.back().hi, iv.hi);
    } else {
      merged.push_back(iv);
    }
  }
  // Coalesce past the budget by repeatedly closing the smallest gap.
  while (merged.size() > max_intervals) {
    size_t best = 1;
    uint64_t best_gap = ~uint64_t{0};
    for (size_t i = 1; i < merged.size(); ++i) {
      uint64_t gap = merged[i].lo - merged[i - 1].hi;
      if (gap < best_gap) {
        best_gap = gap;
        best = i;
      }
    }
    merged[best - 1].hi = merged[best].hi;
    merged.erase(merged.begin() + best);
  }
  return merged;
}

Result<MortonSfcIndex> MortonSfcIndex::Build(FlatTable* table,
                                             Options options) {
  if (table == nullptr) return Status::InvalidArgument("null table");
  if (options.bits == 0 || options.bits > 21) {
    return Status::InvalidArgument("bits must be in [1, 21]");
  }
  GEOCOL_ASSIGN_OR_RETURN(ColumnPtr xc, table->GetColumn("x"));
  GEOCOL_ASSIGN_OR_RETURN(ColumnPtr yc, table->GetColumn("y"));
  if (xc->type() != DataType::kFloat64 || yc->type() != DataType::kFloat64) {
    return Status::InvalidArgument("x/y must be float64");
  }
  MortonSfcIndex ix;
  ix.table_ = table;
  ix.options_ = options;
  {
    std::span<const double> xs = xc->Values<double>();
    std::span<const double> ys = yc->Values<double>();
    for (size_t r = 0; r < xs.size(); ++r) ix.extent_.Extend(xs[r], ys[r]);
    std::vector<uint64_t> codes(xs.size());
    for (size_t r = 0; r < xs.size(); ++r) {
      codes[r] = MortonEncodeScaled(xs[r], ys[r], ix.extent_, options.bits);
    }
    // The DBMS-side lassort: physically reorder every column by the key.
    std::vector<uint64_t> perm(codes.size());
    std::iota(perm.begin(), perm.end(), 0);
    std::sort(perm.begin(), perm.end(),
              [&](uint64_t a, uint64_t b) { return codes[a] < codes[b]; });
    GEOCOL_RETURN_NOT_OK(table->PermuteRows(perm));
    ix.keys_.resize(codes.size());
    for (size_t r = 0; r < perm.size(); ++r) ix.keys_[r] = codes[perm[r]];
  }
  return ix;
}

Result<std::vector<uint64_t>> MortonSfcIndex::QueryBox(
    const Box& box, QueryStats* stats) const {
  QueryStats local;
  std::vector<uint64_t> out;
  if (table_ == nullptr) return Status::Internal("index not built");
  GEOCOL_ASSIGN_OR_RETURN(ColumnPtr xc, table_->GetColumn("x"));
  GEOCOL_ASSIGN_OR_RETURN(ColumnPtr yc, table_->GetColumn("y"));
  std::span<const double> xs = xc->Values<double>();
  std::span<const double> ys = yc->Values<double>();

  std::vector<MortonInterval> intervals = DecomposeBoxToMortonIntervals(
      box, extent_, options_.bits, options_.max_intervals);
  local.intervals = intervals.size();
  for (const MortonInterval& iv : intervals) {
    auto first = std::lower_bound(keys_.begin(), keys_.end(), iv.lo);
    auto last = std::upper_bound(first, keys_.end(), iv.hi);
    for (auto it = first; it != last; ++it) {
      uint64_t r = static_cast<uint64_t>(it - keys_.begin());
      ++local.rows_scanned;
      if (xs[r] >= box.min_x && xs[r] <= box.max_x && ys[r] >= box.min_y &&
          ys[r] <= box.max_y) {
        out.push_back(r);
      }
    }
  }
  std::sort(out.begin(), out.end());
  local.results = out.size();
  if (stats != nullptr) *stats = local;
  return out;
}

}  // namespace geocol
