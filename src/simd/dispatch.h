// Runtime CPU dispatch for the SIMD kernel layer. The best instruction-set
// level is detected once at startup (cpuid + OS ymm-state check) and can be
// forced down with GEOCOL_SIMD=scalar|sse2|avx2 for testing and debugging.
// Every kernel has a scalar reference implementation with *identical*
// results (bit-identical selection words, row ids and stats), so switching
// levels is purely a performance decision.
#ifndef GEOCOL_SIMD_DISPATCH_H_
#define GEOCOL_SIMD_DISPATCH_H_

#include <cstdint>

namespace geocol {
namespace simd {

/// Kernel instruction-set tiers, ordered: a higher level implies the lower
/// ones are also usable. kSse2 is the x86-64 baseline; kAvx2 requires CPU
/// and OS support for 256-bit state.
enum class SimdLevel : uint8_t { kScalar = 0, kSse2 = 1, kAvx2 = 2 };

const char* SimdLevelName(SimdLevel level);

/// Parses "scalar" / "sse2" / "avx2"; returns false on anything else.
bool ParseSimdLevel(const char* s, SimdLevel* out);

/// Raw CPU capability bits, for `geocol simd` and diagnostics.
struct CpuFeatures {
  bool sse2 = false;
  bool sse42 = false;
  bool avx = false;
  bool os_ymm = false;  ///< OS saves/restores ymm state (xgetbv)
  bool avx2 = false;
  bool bmi2 = false;
  bool avx512f = false;
};

/// Detected once, cached.
const CpuFeatures& DetectCpuFeatures();

/// Highest level this process can run (hardware + OS).
SimdLevel MaxSupportedSimdLevel();

/// The level the kernel table is currently bound to. On first use this is
/// MaxSupportedSimdLevel() clamped by a valid GEOCOL_SIMD override.
SimdLevel ActiveSimdLevel();

/// Rebinds the kernel table to `level` (clamped to hardware support) and
/// returns the level actually applied. Intended for tests and benchmarks;
/// not thread-safe with respect to concurrently running queries.
SimdLevel SetSimdLevel(SimdLevel level);

}  // namespace simd
}  // namespace geocol

#endif  // GEOCOL_SIMD_DISPATCH_H_
