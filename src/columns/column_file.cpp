#include "columns/column_file.h"

#include <cstring>

#include "telemetry/metrics.h"
#include "util/binary_io.h"
#include "util/crc32c.h"
#include "util/tempdir.h"

namespace geocol {

namespace {

constexpr char kColumnMagicV1[4] = {'G', 'C', 'L', '1'};
constexpr char kColumnMagicV2[4] = {'G', 'C', 'L', '2'};
constexpr char kTableMagicV1[4] = {'G', 'C', 'T', '1'};
constexpr char kTableMagicV2[4] = {'G', 'C', 'T', '2'};

constexpr uint64_t kMaxPlausibleRows = uint64_t{1} << 40;

uint64_t NumChunks(uint64_t payload_bytes, uint64_t chunk_bytes) {
  return payload_bytes == 0 ? 0
                            : (payload_bytes + chunk_bytes - 1) / chunk_bytes;
}

std::string CrcHex(uint32_t crc) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%08x", crc);
  return buf;
}

/// The parsed fixed-size part of a column file.
struct ColumnFileHeader {
  DataType type = DataType::kFloat64;
  uint64_t count = 0;
  uint32_t chunk_bytes = 0;       ///< 0 in legacy files
  std::vector<uint32_t> chunk_crcs;
  bool legacy = false;
};

Result<ColumnFileHeader> ReadColumnFileHeader(BinaryReader* r,
                                              const std::string& path) {
  ColumnFileHeader h;
  char magic[4];
  GEOCOL_RETURN_NOT_OK(r->ReadBytes(magic, 4));
  if (std::memcmp(magic, kColumnMagicV1, 4) == 0) {
    h.legacy = true;
  } else if (std::memcmp(magic, kColumnMagicV2, 4) != 0) {
    return Status::Corruption("bad column file magic: " + path);
  }

  uint8_t type_byte = 0;
  GEOCOL_RETURN_NOT_OK(r->ReadScalar(&type_byte));
  GEOCOL_RETURN_NOT_OK(r->ReadScalar(&h.count));
  if (!h.legacy) {
    uint32_t header_crc = 0;
    GEOCOL_RETURN_NOT_OK(r->ReadScalar(&h.chunk_bytes));
    GEOCOL_RETURN_NOT_OK(r->ReadScalar(&header_crc));
    uint32_t computed = Crc32c(magic, 4);
    computed = Crc32cExtend(computed, &type_byte, 1);
    computed = Crc32cExtend(computed, &h.count, 8);
    computed = Crc32cExtend(computed, &h.chunk_bytes, 4);
    if (computed != header_crc) {
      return Status::Corruption("column file header crc mismatch (stored " +
                                CrcHex(header_crc) + ", computed " +
                                CrcHex(computed) + "): " + path);
    }
    if (h.chunk_bytes == 0 || h.chunk_bytes > (1u << 30)) {
      return Status::Corruption("column file: bad chunk size: " + path);
    }
  }
  if (type_byte >= kNumDataTypes) {
    return Status::Corruption("bad column type byte " +
                              std::to_string(type_byte) + ": " + path);
  }
  h.type = static_cast<DataType>(type_byte);
  if (h.count > kMaxPlausibleRows) {
    return Status::Corruption("column file: implausible row count " +
                              std::to_string(h.count) + ": " + path);
  }
  if (!h.legacy) {
    uint64_t payload = h.count * DataTypeSize(h.type);
    GEOCOL_RETURN_NOT_OK(
        r->ReadVector(&h.chunk_crcs, NumChunks(payload, h.chunk_bytes)));
  }
  return h;
}

/// Reads (and, for v2, chunk-verifies) the payload into `out`; the exact
/// file-size check also rejects truncated and padded files.
Status ReadColumnPayload(BinaryReader* r, const ColumnFileHeader& h,
                         const std::string& path, bool verify, uint8_t* out) {
  uint64_t payload = h.count * DataTypeSize(h.type);
  if (r->Remaining() != payload) {
    return Status::Corruption("column file size mismatch (payload " +
                              std::to_string(r->Remaining()) + " bytes, " +
                              std::to_string(payload) + " expected): " + path);
  }
  if (h.legacy || !verify) {
    return r->ReadBytes(out, payload);
  }
  // Verify chunk by chunk, while the freshly read bytes are hot in cache.
  GEOCOL_METRIC_COUNTER(c_verifies, "geocol_crc_chunk_verifies_total");
  GEOCOL_METRIC_COUNTER(c_failures, "geocol_crc_failures_total");
  for (uint64_t c = 0; c < h.chunk_crcs.size(); ++c) {
    uint64_t off = c * h.chunk_bytes;
    uint64_t len = std::min<uint64_t>(h.chunk_bytes, payload - off);
    GEOCOL_RETURN_NOT_OK(r->ReadBytes(out + off, len));
    uint32_t crc = Crc32c(out + off, len);
    c_verifies.Increment();
    if (crc != h.chunk_crcs[c]) {
      c_failures.Increment();
      return Status::Corruption("column chunk " + std::to_string(c) +
                                " crc mismatch (stored " +
                                CrcHex(h.chunk_crcs[c]) + ", computed " +
                                CrcHex(crc) + "): " + path);
    }
  }
  return Status::OK();
}

}  // namespace

Status WriteColumnFile(const Column& column, const std::string& path) {
  if (column.paged()) {
    return Status::InvalidArgument(
        "WriteColumnFile: paged columns are read-only (reopen the table "
        "resident to rewrite)");
  }
  const uint8_t* payload = column.raw_data();
  const uint64_t payload_bytes = column.raw_size_bytes();
  const uint32_t chunk_bytes = kColumnChunkBytes;

  BufferWriter header;
  header.WriteBytes(kColumnMagicV2, 4);
  header.WriteScalar<uint8_t>(static_cast<uint8_t>(column.type()));
  header.WriteScalar<uint64_t>(column.size());
  header.WriteScalar<uint32_t>(chunk_bytes);
  uint32_t header_crc = Crc32c(header.buffer().data(), header.size());

  std::vector<uint32_t> chunk_crcs(NumChunks(payload_bytes, chunk_bytes));
  for (uint64_t c = 0; c < chunk_crcs.size(); ++c) {
    uint64_t off = c * uint64_t{chunk_bytes};
    uint64_t len = std::min<uint64_t>(chunk_bytes, payload_bytes - off);
    chunk_crcs[c] = Crc32c(payload + off, len);
  }

  BinaryWriter w;
  GEOCOL_RETURN_NOT_OK(w.OpenAtomic(path));
  Status st = [&]() -> Status {
    GEOCOL_RETURN_NOT_OK(w.WriteBytes(header.buffer().data(), header.size()));
    GEOCOL_RETURN_NOT_OK(w.WriteScalar<uint32_t>(header_crc));
    GEOCOL_RETURN_NOT_OK(w.WriteVector(chunk_crcs));
    for (uint64_t c = 0; c < chunk_crcs.size(); ++c) {
      uint64_t off = c * uint64_t{chunk_bytes};
      uint64_t len = std::min<uint64_t>(chunk_bytes, payload_bytes - off);
      GEOCOL_RETURN_NOT_OK(w.WriteBytes(payload + off, len));
    }
    return w.Commit();
  }();
  if (!st.ok()) w.Abandon();
  return st;
}

Result<ColumnPtr> ReadColumnFile(const std::string& path,
                                 const std::string& name,
                                 bool verify_checksums) {
  BinaryReader r;
  GEOCOL_RETURN_NOT_OK(r.Open(path));
  GEOCOL_ASSIGN_OR_RETURN(ColumnFileHeader h, ReadColumnFileHeader(&r, path));
  auto col = std::make_shared<Column>(name, h.type);
  col->Reserve(h.count);
  std::vector<uint8_t> buf(h.count * DataTypeSize(h.type));
  GEOCOL_RETURN_NOT_OK(
      ReadColumnPayload(&r, h, path, verify_checksums, buf.data()));
  col->AppendRaw(buf.data(), h.count);
  return col;
}

Result<ColumnFileLayout> ReadColumnFileLayout(const std::string& path) {
  BinaryReader r;
  GEOCOL_RETURN_NOT_OK(r.Open(path));
  GEOCOL_ASSIGN_OR_RETURN(ColumnFileHeader h, ReadColumnFileHeader(&r, path));
  if (h.legacy) {
    return Status::InvalidArgument(
        "legacy GCL1 file has no chunk checksums and cannot be opened "
        "paged: " + path);
  }
  uint64_t payload = h.count * DataTypeSize(h.type);
  if (r.Remaining() != payload) {
    return Status::Corruption("column file size mismatch (payload " +
                              std::to_string(r.Remaining()) + " bytes, " +
                              std::to_string(payload) + " expected): " + path);
  }
  ColumnFileLayout layout;
  layout.type = h.type;
  layout.count = h.count;
  layout.chunk_bytes = h.chunk_bytes;
  layout.payload_offset = r.Tell();
  layout.chunk_crcs = std::move(h.chunk_crcs);
  return layout;
}

Status AppendColumnFile(const std::string& path, Column* column) {
  BinaryReader r;
  GEOCOL_RETURN_NOT_OK(r.Open(path));
  GEOCOL_ASSIGN_OR_RETURN(ColumnFileHeader h, ReadColumnFileHeader(&r, path));
  if (h.type != column->type()) {
    return Status::InvalidArgument("type mismatch appending " + path);
  }
  std::vector<uint8_t> buf(h.count * DataTypeSize(h.type));
  GEOCOL_RETURN_NOT_OK(
      ReadColumnPayload(&r, h, path, /*verify=*/true, buf.data()));
  column->AppendRaw(buf.data(), h.count);
  return Status::OK();
}

Status WriteRawDump(const Column& column, const std::string& path) {
  if (column.paged()) {
    return Status::InvalidArgument(
        "WriteRawDump: paged columns are read-only (reopen the table "
        "resident to dump)");
  }
  return WriteFileAtomic(path, column.raw_data(), column.raw_size_bytes());
}

Status AppendRawDump(const std::string& path, Column* column) {
  GEOCOL_ASSIGN_OR_RETURN(uint64_t size, FileSizeBytes(path));
  size_t width = column->width();
  if (size % width != 0) {
    return Status::Corruption("raw dump size not a multiple of value width: " +
                              path);
  }
  std::vector<uint8_t> buf;
  GEOCOL_RETURN_NOT_OK(ReadFileBytes(path, &buf));
  column->AppendRaw(buf.data(), buf.size() / width);
  return Status::OK();
}

Status WriteTableManifest(const std::string& dir, const TableManifest& m) {
  BufferWriter b;
  b.WriteBytes(kTableMagicV2, 4);
  b.WriteScalar<uint64_t>(m.generation);
  b.WriteString(m.table_name);
  b.WriteScalar<uint32_t>(static_cast<uint32_t>(m.columns.size()));
  for (const auto& col : m.columns) {
    b.WriteString(col.name);
    b.WriteScalar<uint8_t>(static_cast<uint8_t>(col.type));
    b.WriteString(col.filename);
  }
  uint32_t crc = Crc32c(b.buffer().data(), b.size());
  b.WriteScalar<uint32_t>(crc);
  return WriteFileAtomic(dir + "/schema.gct", b.buffer().data(), b.size());
}

Result<TableManifest> ReadTableManifest(const std::string& dir) {
  const std::string path = dir + "/schema.gct";
  std::vector<uint8_t> bytes;
  GEOCOL_RETURN_NOT_OK(ReadFileBytes(path, &bytes));
  if (bytes.size() < 4) {
    return Status::Corruption("table manifest too small: " + path);
  }

  TableManifest m;
  size_t body_size = bytes.size();
  if (std::memcmp(bytes.data(), kTableMagicV1, 4) == 0) {
    m.legacy = true;
  } else if (std::memcmp(bytes.data(), kTableMagicV2, 4) == 0) {
    if (bytes.size() < 8) {
      return Status::Corruption("table manifest too small: " + path);
    }
    body_size = bytes.size() - 4;
    uint32_t stored = 0;
    std::memcpy(&stored, bytes.data() + body_size, 4);
    uint32_t computed = Crc32c(bytes.data(), body_size);
    if (stored != computed) {
      return Status::Corruption("table manifest crc mismatch (stored " +
                                CrcHex(stored) + ", computed " +
                                CrcHex(computed) + "): " + path);
    }
  } else {
    return Status::Corruption("bad table manifest magic: " + path);
  }

  BufferReader r(bytes.data(), body_size);
  char magic[4];
  GEOCOL_RETURN_NOT_OK(r.ReadBytes(magic, 4));
  if (!m.legacy) GEOCOL_RETURN_NOT_OK(r.ReadScalar(&m.generation));
  GEOCOL_RETURN_NOT_OK(r.ReadString(&m.table_name));
  uint32_t ncols = 0;
  GEOCOL_RETURN_NOT_OK(r.ReadScalar(&ncols));
  // Each column entry is at least 9 bytes; with the 4096 cap a corrupt
  // count fails here instead of allocating.
  if (ncols > 4096 || ncols > r.remaining()) {
    return Status::Corruption("implausible column count " +
                              std::to_string(ncols) + ": " + path);
  }
  m.columns.reserve(ncols);
  for (uint32_t i = 0; i < ncols; ++i) {
    TableManifest::ManifestColumn col;
    GEOCOL_RETURN_NOT_OK(r.ReadString(&col.name));
    uint8_t type_byte = 0;
    GEOCOL_RETURN_NOT_OK(r.ReadScalar(&type_byte));
    if (type_byte >= kNumDataTypes) {
      return Status::Corruption("bad column type in manifest: " + path);
    }
    col.type = static_cast<DataType>(type_byte);
    if (!m.legacy) GEOCOL_RETURN_NOT_OK(r.ReadString(&col.filename));
    m.columns.push_back(std::move(col));
  }
  return m;
}

void CleanStaleTableFiles(const std::string& dir, const TableManifest& keep) {
  std::vector<std::string> files;
  for (const char* suffix : {".gcl", ".gcz", ".tmp"}) {
    ListFiles(dir, suffix, &files);
  }
  for (const std::string& full : files) {
    std::string base = full.substr(full.find_last_of('/') + 1);
    if (base == "schema.gct") continue;
    bool referenced = false;
    for (const auto& col : keep.columns) {
      const std::string& fname =
          col.filename.empty() ? col.name + ".gcl" : col.filename;
      if (base == fname) {
        referenced = true;
        break;
      }
    }
    if (!referenced) RemoveFile(full);
  }
}

Status WriteTableDir(const FlatTable& table, const std::string& dir) {
  GEOCOL_RETURN_NOT_OK(table.Validate());
  GEOCOL_RETURN_NOT_OK(MakeDir(dir));
  // Write the next generation's column files under fresh names; the files
  // the current manifest references are never touched, so the old table
  // stays fully readable until the manifest swap below.
  uint64_t gen = 1;
  if (PathExists(dir + "/schema.gct")) {
    auto old = ReadTableManifest(dir);
    if (old.ok()) gen = old->generation + 1;
  }
  TableManifest m;
  m.table_name = table.name();
  m.generation = gen;
  for (const auto& col : table.columns()) {
    std::string fname = col->name() + ".g" + std::to_string(gen) + ".gcl";
    GEOCOL_RETURN_NOT_OK(WriteColumnFile(*col, dir + "/" + fname));
    m.columns.push_back({col->name(), col->type(), fname});
  }
  GEOCOL_RETURN_NOT_OK(WriteTableManifest(dir, m));  // the commit point
  CleanStaleTableFiles(dir, m);
  return Status::OK();
}

Result<FlatTable> ReadTableDir(const std::string& dir, bool verify_checksums) {
  GEOCOL_ASSIGN_OR_RETURN(TableManifest m, ReadTableManifest(dir));
  FlatTable table(m.table_name);
  for (const auto& mc : m.columns) {
    const std::string fname =
        mc.filename.empty() ? mc.name + ".gcl" : mc.filename;
    GEOCOL_ASSIGN_OR_RETURN(
        ColumnPtr col,
        ReadColumnFile(dir + "/" + fname, mc.name, verify_checksums));
    if (col->type() != mc.type) {
      return Status::Corruption("manifest/file type mismatch for " + mc.name);
    }
    GEOCOL_RETURN_NOT_OK(table.AddColumn(std::move(col)));
  }
  GEOCOL_RETURN_NOT_OK(table.Validate());
  return table;
}

}  // namespace geocol
