// E14: Hilbert spatial sharding with bbox-pruned scatter-gather
// (DESIGN.md §12).
//
// Two workloads over the same AHN-like survey, one engine per layout:
//   viewport — an interactive client inspects small clustered viewports;
//              the router prunes every shard whose bbox misses the query
//              before any imprint work. Acceptance bar: >=3x faster than
//              the unsharded engine at the best K.
//   full     — a full-extent selection touches every shard; the scatter
//              and merge machinery must stay within 5% of the unsharded
//              engine (nothing can be pruned, so this is pure overhead).
//
// The unsharded baseline runs over the generator's native scan-line row
// order — exactly the layout a plain `geocol load` produces. The sharded
// layouts are built by ShardedTable::Create, whose Hilbert sort is part
// of the technique being measured.
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "columns/sharded_table.h"
#include "core/shard_router.h"
#include "core/spatial_engine.h"
#include "util/rng.h"

using namespace geocol;
using namespace geocol::bench;

namespace {

Box Viewport(const Box& extent, double fraction, double cx, double cy) {
  double side = std::sqrt(extent.area() * fraction);
  double x = extent.min_x + extent.width() * cx;
  double y = extent.min_y + extent.height() * cy;
  return Box(x - side / 2, y - side / 2, x + side / 2, y + side / 2);
}

/// The clustered-viewport batch: small windows around a handful of
/// hotspots, the access pattern of a map client inspecting sites.
std::vector<Box> ViewportBatch(const Box& extent) {
  std::vector<Box> batch;
  Rng rng(42);
  const double hotspots[4][2] = {
      {0.2, 0.3}, {0.7, 0.6}, {0.45, 0.8}, {0.85, 0.15}};
  for (int q = 0; q < 32; ++q) {
    const double* h = hotspots[q % 4];
    double cx = h[0] + rng.UniformDouble(-0.03, 0.03);
    double cy = h[1] + rng.UniformDouble(-0.03, 0.03);
    batch.push_back(Viewport(extent, 0.0005, cx, cy));
  }
  return batch;
}

}  // namespace

int main(int argc, char** argv) {
  geocol::bench::InitBench(argc, argv);
  const uint64_t n = BenchPoints(2000000);
  Banner("E14: Hilbert sharding (bbox-pruned scatter-gather)",
         "clustered-viewport speedup from shard pruning, full-extent overhead");

  auto table = GenerateSurvey(n);
  const Box extent = SurveyOptions(n).extent;
  std::printf("survey: %llu points\n",
              static_cast<unsigned long long>(table->num_rows()));

  const std::vector<Box> viewports = ViewportBatch(extent);
  const Box full = extent;

  auto& reg = telemetry::MetricsRegistry::Global();
  auto scanned_total = [&reg] {
    return reg.GetCounter("geocol_shards_scanned_total").Value();
  };

  TablePrinter out({"layout", "viewport ms", "speedup", "full ms",
                    "full ratio", "scanned/query"},
                   13);

  // Unsharded baseline.
  SpatialQueryEngine flat(table);
  uint64_t viewport_rows = 0;
  double flat_viewport = TimeMs([&] {
    viewport_rows = 0;
    for (const Box& q : viewports) {
      auto r = flat.SelectInBox(q);
      viewport_rows += r.ok() ? r->count() : 0;
    }
  });
  uint64_t full_rows = 0;
  double flat_full = TimeMs([&] {
    auto r = flat.SelectInBox(full);
    full_rows = r.ok() ? r->count() : 0;
  });
  out.Row({"unsharded", TablePrinter::Num(flat_viewport, 2), "1.00",
           TablePrinter::Num(flat_full, 2), "1.00", "-"});

  for (uint32_t k : {1u, 4u, 16u, 64u}) {
    ShardingOptions so;
    so.num_shards = k;
    auto sharded = ShardedTable::Create(*table, so);
    if (!sharded.ok()) {
      std::fprintf(stderr, "shard build failed: %s\n",
                   sharded.status().ToString().c_str());
      return 1;
    }
    ShardRouter router(*sharded);

    uint64_t rows = 0;
    double viewport_ms = TimeMs([&] {
      rows = 0;
      for (const Box& q : viewports) {
        auto r = router.SelectInBox(q);
        rows += r.ok() ? r->count() : 0;
      }
    });
    if (rows != viewport_rows) {
      std::fprintf(stderr, "viewport row mismatch at K=%u: %llu vs %llu\n", k,
                   static_cast<unsigned long long>(rows),
                   static_cast<unsigned long long>(viewport_rows));
      return 1;
    }
    uint64_t frows = 0;
    double full_ms = TimeMs([&] {
      auto r = router.SelectInBox(full);
      frows = r.ok() ? r->count() : 0;
    });
    if (frows != full_rows) {
      std::fprintf(stderr, "full row mismatch at K=%u\n", k);
      return 1;
    }
    // Average shards scanned per clustered viewport (one untimed pass, so
    // the timed reps above don't skew the counter read).
    const uint64_t s0 = scanned_total();
    for (const Box& q : viewports) (void)router.SelectInBox(q);
    double scanned_per_query =
        static_cast<double>(scanned_total() - s0) /
        static_cast<double>(viewports.size());

    char layout[32];
    std::snprintf(layout, sizeof(layout), "K=%u", k);
    char scanned_cell[32];
    std::snprintf(scanned_cell, sizeof(scanned_cell), "%.1f/%u",
                  scanned_per_query, k);
    out.Row({layout, TablePrinter::Num(viewport_ms, 2),
             TablePrinter::Num(flat_viewport / viewport_ms, 2),
             TablePrinter::Num(full_ms, 2),
             TablePrinter::Num(full_ms / flat_full, 2), scanned_cell});
  }

  std::printf(
      "\nacceptance: best-K viewport speedup >= 3x, full-extent ratio "
      "<= 1.05\n");
  return 0;
}
