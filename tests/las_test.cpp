// LAS-like format tests: record serialization, header round trips, LAZ
// compression, corruption handling, table conversion.
#include <gtest/gtest.h>

#include <cstring>

#include "las/las_format.h"
#include "las/las_reader.h"
#include "las/las_writer.h"
#include "las/laz.h"
#include "util/binary_io.h"
#include "util/rng.h"
#include "util/tempdir.h"

namespace geocol {
namespace {

LasPointRecord MakeRecord(Rng* rng) {
  LasPointRecord p;
  p.x = static_cast<int32_t>(rng->UniformInt(-1000000, 1000000));
  p.y = static_cast<int32_t>(rng->UniformInt(-1000000, 1000000));
  p.z = static_cast<int32_t>(rng->UniformInt(-5000, 50000));
  p.intensity = static_cast<uint16_t>(rng->Uniform(65536));
  p.return_number = static_cast<uint8_t>(1 + rng->Uniform(5));
  p.number_of_returns = static_cast<uint8_t>(p.return_number + rng->Uniform(3));
  p.scan_direction = rng->NextBool() ? 1 : 0;
  p.edge_of_flight_line = rng->NextBool(0.1) ? 1 : 0;
  p.classification = static_cast<uint8_t>(rng->Uniform(20));
  p.synthetic_flag = rng->NextBool(0.01);
  p.key_point_flag = rng->NextBool(0.01);
  p.withheld_flag = rng->NextBool(0.01);
  p.scan_angle = static_cast<int8_t>(rng->UniformInt(-30, 30));
  p.user_data = static_cast<uint8_t>(rng->Uniform(256));
  p.point_source_id = static_cast<uint16_t>(rng->Uniform(65536));
  p.gps_time = rng->UniformDouble(0, 1e6);
  p.red = static_cast<uint16_t>(rng->Uniform(65536));
  p.green = static_cast<uint16_t>(rng->Uniform(65536));
  p.blue = static_cast<uint16_t>(rng->Uniform(65536));
  p.nir = static_cast<uint16_t>(rng->Uniform(65536));
  p.wave_descriptor = static_cast<uint8_t>(rng->Uniform(4));
  p.wave_offset = rng->Uniform(1u << 30);
  p.wave_packet_size = static_cast<uint32_t>(rng->Uniform(1024));
  p.wave_return_location = static_cast<float>(rng->NextDouble());
  p.wave_x = static_cast<float>(rng->NextDouble());
  p.wave_y = static_cast<float>(rng->NextDouble());
  return p;
}

bool RecordsEqual(const LasPointRecord& a, const LasPointRecord& b) {
  uint8_t ba[kLasRecordBytes], bb[kLasRecordBytes];
  SerializeRecord(a, ba);
  SerializeRecord(b, bb);
  return std::memcmp(ba, bb, kLasRecordBytes) == 0;
}

LasTile MakeTile(size_t n, uint64_t seed) {
  LasTile tile;
  tile.header.scale[0] = tile.header.scale[1] = tile.header.scale[2] = 0.01;
  tile.header.offset[0] = 85000;
  tile.header.offset[1] = 444000;
  Rng rng(seed);
  // Acquisition-like ordering: slow drift in x/y.
  int32_t x = 0, y = 0;
  for (size_t i = 0; i < n; ++i) {
    LasPointRecord p = MakeRecord(&rng);
    x += static_cast<int32_t>(rng.UniformInt(-50, 60));
    y += static_cast<int32_t>(rng.UniformInt(-10, 12));
    p.x = x;
    p.y = y;
    p.gps_time = i * 1e-4;
    tile.points.push_back(p);
  }
  return tile;
}

TEST(LasFormatTest, RecordSerializationRoundTrip) {
  Rng rng(111);
  for (int i = 0; i < 100; ++i) {
    LasPointRecord p = MakeRecord(&rng);
    uint8_t buf[kLasRecordBytes];
    SerializeRecord(p, buf);
    LasPointRecord q;
    DeserializeRecord(buf, &q);
    EXPECT_TRUE(RecordsEqual(p, q));
  }
}

TEST(LasFormatTest, SchemaHas26Attributes) {
  EXPECT_EQ(LasPointFields().size(), kLasAttributeCount);
  Schema s = LasPointSchema();
  EXPECT_TRUE(s.HasField("x"));
  EXPECT_TRUE(s.HasField("gps_time"));
  EXPECT_TRUE(s.HasField("classification"));
  EXPECT_TRUE(s.HasField("wave_y"));
  EXPECT_EQ(s.FieldIndex("x"), 0);
  EXPECT_EQ(s.FieldIndex("z"), 2);
}

TEST(LasFormatTest, WorldCoordinateConversion) {
  LasTile tile;
  tile.header.scale[0] = 0.01;
  tile.header.offset[0] = 85000;
  LasPointRecord p;
  p.x = 12345;
  EXPECT_DOUBLE_EQ(tile.WorldX(p), 85123.45);
  EXPECT_EQ(tile.RawX(85123.45), 12345);
}

TEST(LasFormatTest, RecomputeHeader) {
  LasTile tile = MakeTile(500, 112);
  tile.RecomputeHeader();
  EXPECT_EQ(tile.header.point_count, 500u);
  Box fp = tile.header.Footprint();
  EXPECT_FALSE(fp.empty());
  for (const auto& p : tile.points) {
    EXPECT_TRUE(fp.Contains(Point{tile.WorldX(p), tile.WorldY(p)}));
    EXPECT_GE(tile.WorldZ(p), tile.header.min_world[2]);
    EXPECT_LE(tile.WorldZ(p), tile.header.max_world[2]);
  }
}

TEST(LasFileTest, UncompressedRoundTrip) {
  TempDir tmp;
  LasTile tile = MakeTile(1000, 113);
  ASSERT_TRUE(WriteLasFile(tile, tmp.File("t.las")).ok());
  auto back = ReadLasFile(tmp.File("t.las"));
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->points.size(), 1000u);
  for (size_t i = 0; i < 1000; ++i) {
    EXPECT_TRUE(RecordsEqual(tile.points[i], back->points[i])) << i;
  }
  EXPECT_EQ(back->header.compressed, 0);
}

TEST(LasFileTest, CompressedRoundTrip) {
  TempDir tmp;
  LasTile tile = MakeTile(10000, 114);
  ASSERT_TRUE(WriteLazFile(tile, tmp.File("t.laz")).ok());
  auto back = ReadLasFile(tmp.File("t.laz"));
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->points.size(), 10000u);
  for (size_t i = 0; i < tile.points.size(); ++i) {
    ASSERT_TRUE(RecordsEqual(tile.points[i], back->points[i])) << i;
  }
  EXPECT_EQ(back->header.compressed, 1);
}

TEST(LasFileTest, CompressionShrinksCoherentData) {
  TempDir tmp;
  LasTile tile = MakeTile(20000, 115);
  // Make attribute streams coherent the way real sensors are.
  for (auto& p : tile.points) {
    p.user_data = 0;
    p.point_source_id = 7;
    p.wave_offset = 0;
    p.wave_packet_size = 0;
    p.wave_return_location = 0;
    p.wave_x = 0;
    p.wave_y = 0;
    p.red = 100;
    p.green = 120;
    p.blue = 90;
    p.nir = 150;
  }
  ASSERT_TRUE(WriteLasFile(tile, tmp.File("t.las")).ok());
  ASSERT_TRUE(WriteLazFile(tile, tmp.File("t.laz")).ok());
  auto las_size = FileSizeBytes(tmp.File("t.las"));
  auto laz_size = FileSizeBytes(tmp.File("t.laz"));
  ASSERT_TRUE(las_size.ok());
  ASSERT_TRUE(laz_size.ok());
  EXPECT_LT(*laz_size, *las_size / 2) << "LAZ-like must at least halve size";
}

TEST(LasFileTest, WriteTileFileDispatchesOnSuffix) {
  TempDir tmp;
  LasTile t1 = MakeTile(100, 116);
  ASSERT_TRUE(WriteTileFile(t1, tmp.File("a.las")).ok());
  LasTile t2 = MakeTile(100, 116);
  ASSERT_TRUE(WriteTileFile(t2, tmp.File("b.laz")).ok());
  auto h1 = ReadLasHeader(tmp.File("a.las"));
  auto h2 = ReadLasHeader(tmp.File("b.laz"));
  ASSERT_TRUE(h1.ok());
  ASSERT_TRUE(h2.ok());
  EXPECT_EQ(h1->compressed, 0);
  EXPECT_EQ(h2->compressed, 1);
}

TEST(LasFileTest, HeaderOnlyReadIsCheap) {
  TempDir tmp;
  LasTile tile = MakeTile(5000, 117);
  ASSERT_TRUE(WriteLasFile(tile, tmp.File("t.las")).ok());
  auto h = ReadLasHeader(tmp.File("t.las"));
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->point_count, 5000u);
  EXPECT_EQ(h->record_length, kLasRecordBytes);
}

TEST(LasFileTest, EmptyTileRoundTrip) {
  TempDir tmp;
  LasTile tile;
  ASSERT_TRUE(WriteLasFile(tile, tmp.File("e.las")).ok());
  auto back = ReadLasFile(tmp.File("e.las"));
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->points.empty());
}

// ---------------- corruption ----------------

TEST(LasCorruptionTest, BadMagicRejected) {
  TempDir tmp;
  ASSERT_TRUE(WriteFileBytes(tmp.File("bad.las"), "NOPE----", 8).ok());
  EXPECT_EQ(ReadLasHeader(tmp.File("bad.las")).status().code(),
            StatusCode::kCorruption);
}

TEST(LasCorruptionTest, TruncatedHeaderRejected) {
  TempDir tmp;
  ASSERT_TRUE(WriteFileBytes(tmp.File("bad.las"), "GLAS\x01", 5).ok());
  EXPECT_EQ(ReadLasHeader(tmp.File("bad.las")).status().code(),
            StatusCode::kCorruption);
}

TEST(LasCorruptionTest, TruncatedPointsRejected) {
  TempDir tmp;
  LasTile tile = MakeTile(100, 118);
  ASSERT_TRUE(WriteLasFile(tile, tmp.File("t.las")).ok());
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(ReadFileBytes(tmp.File("t.las"), &bytes).ok());
  bytes.resize(bytes.size() - 30);
  ASSERT_TRUE(
      WriteFileBytes(tmp.File("t.las"), bytes.data(), bytes.size()).ok());
  EXPECT_EQ(ReadLasFile(tmp.File("t.las")).status().code(),
            StatusCode::kCorruption);
}

TEST(LasCorruptionTest, TruncatedLazPayloadRejected) {
  TempDir tmp;
  LasTile tile = MakeTile(5000, 119);
  ASSERT_TRUE(WriteLazFile(tile, tmp.File("t.laz")).ok());
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(ReadFileBytes(tmp.File("t.laz"), &bytes).ok());
  bytes.resize(bytes.size() / 2);
  ASSERT_TRUE(
      WriteFileBytes(tmp.File("t.laz"), bytes.data(), bytes.size()).ok());
  EXPECT_FALSE(ReadLasFile(tmp.File("t.laz")).ok());
}

TEST(LasCorruptionTest, ZeroScaleRejected) {
  TempDir tmp;
  LasTile tile = MakeTile(10, 120);
  tile.header.scale[1] = 0.0;
  // Writer does not validate; the reader must.
  ASSERT_TRUE(WriteLasFile(tile, tmp.File("t.las")).ok());
  EXPECT_EQ(ReadLasFile(tmp.File("t.las")).status().code(),
            StatusCode::kCorruption);
}

// ---------------- LAZ codec directly ----------------

TEST(LazCodecTest, EmptyInput) {
  std::vector<uint8_t> payload;
  ASSERT_TRUE(LazCompress({}, &payload).ok());
  std::vector<LasPointRecord> out;
  ASSERT_TRUE(LazDecompress(payload, 0, &out).ok());
  EXPECT_TRUE(out.empty());
}

TEST(LazCodecTest, SinglePoint) {
  Rng rng(121);
  std::vector<LasPointRecord> pts = {MakeRecord(&rng)};
  std::vector<uint8_t> payload;
  ASSERT_TRUE(LazCompress(pts, &payload).ok());
  std::vector<LasPointRecord> out;
  ASSERT_TRUE(LazDecompress(payload, 1, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_TRUE(RecordsEqual(pts[0], out[0]));
}

TEST(LazCodecTest, ChunkBoundaryExactMultiple) {
  LasTile tile = MakeTile(kLazChunkSize * 2, 122);
  std::vector<uint8_t> payload;
  ASSERT_TRUE(LazCompress(tile.points, &payload).ok());
  std::vector<LasPointRecord> out;
  ASSERT_TRUE(LazDecompress(payload, tile.points.size(), &out).ok());
  ASSERT_EQ(out.size(), tile.points.size());
  for (size_t i = 0; i < out.size(); ++i) {
    ASSERT_TRUE(RecordsEqual(tile.points[i], out[i])) << i;
  }
}

TEST(LazCodecTest, ChunkBoundaryPlusOne) {
  LasTile tile = MakeTile(kLazChunkSize + 1, 123);
  std::vector<uint8_t> payload;
  ASSERT_TRUE(LazCompress(tile.points, &payload).ok());
  std::vector<LasPointRecord> out;
  ASSERT_TRUE(LazDecompress(payload, tile.points.size(), &out).ok());
  ASSERT_EQ(out.size(), tile.points.size());
  EXPECT_TRUE(RecordsEqual(tile.points.back(), out.back()));
}

TEST(LazCodecTest, NegativeAndExtremeValues) {
  std::vector<LasPointRecord> pts(3);
  pts[0].x = INT32_MIN;
  pts[0].z = INT32_MAX;
  pts[0].gps_time = -1.5e300;
  pts[1].x = INT32_MAX;
  pts[1].gps_time = 1.5e300;
  pts[2].scan_angle = -30;
  pts[2].wave_offset = ~uint64_t{0} >> 1;
  std::vector<uint8_t> payload;
  ASSERT_TRUE(LazCompress(pts, &payload).ok());
  std::vector<LasPointRecord> out;
  ASSERT_TRUE(LazDecompress(payload, 3, &out).ok());
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_TRUE(RecordsEqual(pts[i], out[i])) << i;
  }
}

// ---------------- table conversion ----------------

TEST(AppendTileTest, ConvertsToWorldCoordinates) {
  LasTile tile = MakeTile(2000, 124);
  tile.RecomputeHeader();
  FlatTable table("pc", LasPointSchema());
  ASSERT_TRUE(AppendTileToTable(tile, &table).ok());
  EXPECT_EQ(table.num_rows(), 2000u);
  for (size_t i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(table.column("x")->GetDouble(i), tile.WorldX(tile.points[i]));
    EXPECT_DOUBLE_EQ(table.column("z")->GetDouble(i), tile.WorldZ(tile.points[i]));
    EXPECT_EQ(table.column("classification")->GetInt64(i),
              tile.points[i].classification);
    EXPECT_EQ(table.column("gps_time")->GetDouble(i), tile.points[i].gps_time);
    EXPECT_EQ(table.column("wave_offset")->GetInt64(i),
              static_cast<int64_t>(tile.points[i].wave_offset));
  }
}

TEST(AppendTileTest, AccumulatesAcrossTiles) {
  FlatTable table("pc", LasPointSchema());
  LasTile t1 = MakeTile(100, 125);
  LasTile t2 = MakeTile(200, 126);
  ASSERT_TRUE(AppendTileToTable(t1, &table).ok());
  ASSERT_TRUE(AppendTileToTable(t2, &table).ok());
  EXPECT_EQ(table.num_rows(), 300u);
}

TEST(AppendTileTest, TableToRecordsIsInverse) {
  LasTile tile = MakeTile(1500, 128);
  tile.RecomputeHeader();
  FlatTable table("pc", LasPointSchema());
  ASSERT_TRUE(AppendTileToTable(tile, &table).ok());
  auto records = TableToRecords(table, tile.header);
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), tile.points.size());
  for (size_t i = 0; i < records->size(); ++i) {
    ASSERT_TRUE(RecordsEqual(tile.points[i], (*records)[i])) << i;
  }
}

TEST(AppendTileTest, TableToRecordsWrongSchemaRejected) {
  FlatTable bad("bad");
  ASSERT_TRUE(bad.AddColumn(Column::FromVector<double>("x", {1.0})).ok());
  LasHeader header;
  EXPECT_FALSE(TableToRecords(bad, header).ok());
}

TEST(AppendTileTest, WrongSchemaRejected) {
  LasTile tile = MakeTile(10, 127);
  FlatTable table("bad");
  ASSERT_TRUE(table.AddColumn(Column::FromVector<double>("x", {})).ok());
  EXPECT_FALSE(AppendTileToTable(tile, &table).ok());
}

}  // namespace
}  // namespace geocol
