// On-disk persistence of columns and tables: one binary file per column
// plus a schema manifest per table, mirroring MonetDB's per-BAT files and
// the COPY BINARY bulk-append path (paper §3.2).
#ifndef GEOCOL_COLUMNS_COLUMN_FILE_H_
#define GEOCOL_COLUMNS_COLUMN_FILE_H_

#include <string>

#include "columns/flat_table.h"
#include "util/status.h"

namespace geocol {

/// Writes a column to `path`:
/// magic "GCL1" | type(u8) | count(u64) | raw values.
Status WriteColumnFile(const Column& column, const std::string& path);

/// Reads a column file written by WriteColumnFile. The column name is not
/// stored in the file; callers supply it (it is the file's role in the
/// table manifest).
Result<ColumnPtr> ReadColumnFile(const std::string& path,
                                 const std::string& name);

/// Appends the raw value payload of a column file to `column` — the
/// COPY BINARY fast path. Types must match.
Status AppendColumnFile(const std::string& path, Column* column);

/// Writes a raw C-array dump (no header): exactly what the paper's binary
/// loader emits per attribute before COPY BINARY.
Status WriteRawDump(const Column& column, const std::string& path);

/// Appends a raw C-array dump of `type` to `column`.
Status AppendRawDump(const std::string& path, Column* column);

/// Persists a whole table into directory `dir`:
/// `<dir>/schema.gct` manifest + `<dir>/<col>.gcl` per column.
Status WriteTableDir(const FlatTable& table, const std::string& dir);

/// Loads a table persisted by WriteTableDir.
Result<FlatTable> ReadTableDir(const std::string& dir);

}  // namespace geocol

#endif  // GEOCOL_COLUMNS_COLUMN_FILE_H_
