// Epoch-aware query result cache. Real GIS navigation traffic is dominated
// by repeated and overlapping viewport queries (GeoBlocks, PowerDrill serve
// such workloads from caches); the engine's two-step filter/refine model
// recomputes everything per query. This cache closes that gap at three
// tiers:
//
//   (a) kSelection — the final row-id list plus the filter/refine stats of
//       a whole `SpatialQueryEngine::Execute`, for exact repeats;
//   (b) kGridCells — the per-cell kInside/kOutside/kBoundary classification
//       of a refinement grid against one (geometry, buffer). Any query that
//       lands on the same grid reuses the classifications and skips the
//       geometry evaluations, even when its candidate rows differ;
//   (c) kAggregate — AggregateRows results over a cached selection.
//
// Correctness model: a key is the *complete* byte image of everything a
// result depends on — table identity, the epoch of every referenced column
// (bumped by the existing append/shuffle invalidation), the exact geometry
// coordinates, the attribute ranges, and every engine knob that shapes the
// result or its stats (thread count, imprint and refine options). Epoch
// bumps therefore invalidate by construction: a mutated column yields a new
// key and the stale entry ages out through the LRU. Keys compare by full
// byte equality — hashes only pick the shard/bucket — so a hit can never
// alias a different query.
//
// Concurrency: lookups and inserts are thread-safe behind sharded mutexes
// (16 shards, budget split evenly); values are immutable shared_ptrs, so an
// entry returned to one query survives a concurrent eviction. Budget 0
// disables nothing here — engines simply do not consult the cache, keeping
// the cache-off path bit-identical to an engine built before this layer.
//
// Admission: entries of kDoorkeeperBytes or more are only admitted on
// their *second* sighting (a TinyLFU-style doorkeeper of key fingerprints
// per shard). A client panning across a map issues a stream of
// never-repeated queries; copying and retaining each large row-id list
// would cost fresh-page writes on every miss for entries nobody reuses.
// With the doorkeeper a one-shot miss costs one fingerprint store, and
// only keys that come back pay the copy. Small entries (aggregates, grid
// cell tables, short row lists) are admitted immediately — their insert
// cost is noise against the query that produced them.
#ifndef GEOCOL_CACHE_QUERY_CACHE_H_
#define GEOCOL_CACHE_QUERY_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/imprint_scan.h"
#include "core/refinement.h"
#include "geom/geometry.h"

namespace geocol {
namespace cache {

/// Cache tiers, in lookup order.
enum class Tier : uint8_t { kSelection = 0, kGridCells = 1, kAggregate = 2 };
constexpr size_t kNumTiers = 3;
const char* TierName(Tier tier);

/// Tier (a) value: everything of a SelectionResult except the profile
/// (wall times are per-execution; a hit reports itself via a cache.hit
/// span instead).
struct CachedSelection {
  std::vector<uint64_t> row_ids;
  ImprintScanStats filter_x;
  ImprintScanStats filter_y;
  RefinementStats refine;

  size_t MemoryBytes() const {
    return sizeof(*this) + row_ids.capacity() * sizeof(uint64_t);
  }
};

/// Incremental builder of cache key bytes. Numeric appends store raw
/// little-endian bits (doubles via their IEEE-754 image, so -0.0/0.0 and
/// every NaN payload stay distinct keys — never semantically merged);
/// strings are length-prefixed so concatenations cannot alias.
class KeyBuilder {
 public:
  explicit KeyBuilder(const char* tag) { Append(tag); }

  void AppendU64(uint64_t v);
  void AppendU32(uint32_t v);
  void AppendDouble(double v);
  void Append(const std::string& s);
  void Append(const char* s);
  /// Type tag + exact coordinate bits of `g`.
  void AppendGeometry(const Geometry& g);

  const std::string& bytes() const { return bytes_; }
  std::string Take() { return std::move(bytes_); }

 private:
  std::string bytes_;
};

/// Per-tier accounting (monotonic; `entries`/`bytes` are instantaneous).
struct TierStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t inserts = 0;
  uint64_t evictions = 0;
  uint64_t entries = 0;
  uint64_t bytes = 0;
};

struct CacheStats {
  TierStats tier[kNumTiers];
  uint64_t budget_bytes = 0;
  uint64_t bytes_used = 0;

  uint64_t TotalHits() const;
  uint64_t TotalMisses() const;
};

/// The sharded LRU store. One process-wide instance serves every engine
/// (Global()); tests and benchmarks create private instances for cold
/// state and budget control.
class QueryResultCache {
 public:
  static constexpr size_t kShards = 16;
  /// Entries at least this large go through the second-sighting doorkeeper.
  static constexpr uint64_t kDoorkeeperBytes = 64 * 1024;

  explicit QueryResultCache(uint64_t budget_bytes = 0);
  ~QueryResultCache();

  QueryResultCache(const QueryResultCache&) = delete;
  QueryResultCache& operator=(const QueryResultCache&) = delete;

  /// The process-wide cache engines bind to by default.
  static QueryResultCache& Global();

  /// Sets the total memory budget; shrinking evicts immediately.
  void SetBudget(uint64_t budget_bytes);
  /// SetBudget(max(budget, current)) — engines declare what they need and
  /// the process-wide cache takes the largest request.
  void GrowBudget(uint64_t budget_bytes);
  uint64_t budget_bytes() const {
    return budget_.load(std::memory_order_relaxed);
  }

  // ---- Tier (a): whole selections.
  std::shared_ptr<const CachedSelection> LookupSelection(
      const std::string& key);
  void InsertSelection(const std::string& key,
                       std::shared_ptr<const CachedSelection> value);

  // ---- Tier (b): grid cell classifications. Entries merge: unclassified
  // slots (kCellUnclassified) of an existing table are filled from later
  // publishes, so overlapping queries keep enriching one entry.
  std::shared_ptr<const std::vector<uint8_t>> LookupGridCells(
      const std::string& key);
  void MergeGridCells(const std::string& key, std::vector<uint8_t> cells);

  // ---- Tier (c): aggregates.
  bool LookupAggregate(const std::string& key, double* out);
  void InsertAggregate(const std::string& key, double value);

  /// Doorkeeper pre-check: would an insert of `approx_bytes` under `key`
  /// be admitted right now? Records the sighting, exactly as the insert
  /// itself would — callers use this to skip *building* a large value
  /// whose insert would be deferred anyway. Small values and keys already
  /// present always admit.
  bool ShouldAdmit(Tier tier, const std::string& key, uint64_t approx_bytes);

  /// Drops every entry (budget unchanged).
  void Clear();

  CacheStats Stats() const;
  uint64_t bytes_used() const;

  /// Multi-line human rendering of Stats() for `geocol cache`.
  std::string StatsToString() const;

 private:
  struct Entry {
    Tier tier;
    std::shared_ptr<const CachedSelection> selection;
    std::shared_ptr<const std::vector<uint8_t>> cells;
    double aggregate = 0.0;
    size_t bytes = 0;  ///< total charge incl. key and bookkeeping overhead
    std::list<std::string>::iterator lru_it;
  };

  struct alignas(64) Shard {
    mutable std::mutex mu;
    std::unordered_map<std::string, Entry> map;
    /// Front = most recent. Holds the map keys; Entry::lru_it points in.
    std::list<std::string> lru;
    uint64_t bytes = 0;
    uint64_t tier_bytes[kNumTiers] = {0, 0, 0};
    uint64_t tier_entries[kNumTiers] = {0, 0, 0};
    uint64_t evictions[kNumTiers] = {0, 0, 0};
    /// Doorkeeper: key-hash fingerprints of large entries seen once (0 =
    /// empty slot). A colliding newcomer overwrites the slot, which only
    /// delays that key's admission by one more sighting.
    std::vector<uint64_t> seen;
  };

  Shard& ShardFor(const std::string& key);
  /// True once `key_hash` has been seen before; otherwise records it.
  /// Caller holds the shard lock.
  bool NoteSightingLocked(Shard& shard, size_t key_hash);
  uint64_t ShardBudget() const;
  /// Inserts or replaces under the shard lock, then evicts LRU entries
  /// until the shard fits its budget slice. Oversized values are dropped
  /// without insertion.
  void InsertEntry(const std::string& key, Entry entry);
  /// Removes `it` from `shard` (lock held).
  void EraseLocked(Shard& shard,
                   std::unordered_map<std::string, Entry>::iterator it,
                   bool count_eviction);
  void RecordHit(Tier tier);
  void RecordMiss(Tier tier);

  std::atomic<uint64_t> budget_;
  Shard shards_[kShards];
  /// Monotonic counters live outside the shards: hits on different shards
  /// must not serialise on one cache line.
  std::atomic<uint64_t> hits_[kNumTiers];
  std::atomic<uint64_t> misses_[kNumTiers];
  std::atomic<uint64_t> inserts_[kNumTiers];
};

}  // namespace cache
}  // namespace geocol

#endif  // GEOCOL_CACHE_QUERY_CACHE_H_
