// Epoch-snapshot isolation unit suite (DESIGN.md §13): LiveTable /
// TableAppender semantics — pinned snapshots stay bit-identical under
// commits, appends to an empty table, bbox growth past the initial
// extent, durable reopen — plus the sharded live-append edge cases: a
// shard growing past its creation bbox, two appenders racing disjoint
// shards, and a reader whose pinned view is superseded by appends or a
// re-shard. Also proves the incremental imprint stitch is byte-identical
// to a from-scratch build and that a failed stitch quarantines + rebuilds.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "columns/column_file.h"
#include "columns/sharded_table.h"
#include "core/imprints_io.h"
#include "core/live_table.h"
#include "core/shard_router.h"
#include "core/table_appender.h"
#include "util/binary_io.h"
#include "util/rng.h"
#include "util/tempdir.h"

namespace geocol {
namespace {

/// x/y/z point table with `n` uniform points in `extent`.
std::shared_ptr<FlatTable> MakePoints(size_t n, uint64_t seed,
                                      const Box& extent) {
  Rng rng(seed);
  std::vector<double> xs(n), ys(n), zs(n);
  for (size_t i = 0; i < n; ++i) {
    xs[i] = rng.UniformDouble(extent.min_x, extent.max_x);
    ys[i] = rng.UniformDouble(extent.min_y, extent.max_y);
    zs[i] = rng.UniformDouble(-5, 40);
  }
  auto t = std::make_shared<FlatTable>("pc");
  EXPECT_TRUE(t->AddColumn(Column::FromVector("x", xs)).ok());
  EXPECT_TRUE(t->AddColumn(Column::FromVector("y", ys)).ok());
  EXPECT_TRUE(t->AddColumn(Column::FromVector("z", zs)).ok());
  return t;
}

FlatTable MakeBatch(size_t n, uint64_t seed, const Box& extent) {
  return *MakePoints(n, seed, extent);
}

/// Brute-force oracle: global row ids of points inside `box`, reading the
/// concatenation implied by `view` (or a flat table) row by row.
std::vector<uint64_t> BruteForceInBox(const FlatTable& t, const Box& box) {
  std::vector<uint64_t> out;
  ColumnPtr x = t.column("x"), y = t.column("y");
  for (uint64_t r = 0; r < t.num_rows(); ++r) {
    if (box.Contains(Point{x->GetDouble(r), y->GetDouble(r)})) {
      out.push_back(r);
    }
  }
  return out;
}

void ExpectTablesEqual(const FlatTable& t, const FlatTable& expect) {
  ASSERT_EQ(t.num_columns(), expect.num_columns());
  for (const auto& ec : expect.columns()) {
    ColumnPtr c = t.column(ec->name());
    ASSERT_NE(c, nullptr) << ec->name();
    ASSERT_EQ(c->size(), ec->size()) << ec->name();
    ASSERT_EQ(std::memcmp(c->raw_data(), ec->raw_data(),
                          c->size() * DataTypeSize(c->type())),
              0)
        << ec->name();
  }
}

// ---------------------------------------------------------------------------
// Flat LiveTable: epoch semantics.
// ---------------------------------------------------------------------------

TEST(LiveTableTest, AppendToEmptyTablePublishesFirstRows) {
  auto schema_donor = MakePoints(1, 1, Box(0, 0, 1, 1));
  auto initial = std::make_shared<FlatTable>("pc", schema_donor->schema());
  auto live = LiveTable::Create(initial);
  ASSERT_TRUE(live.ok()) << live.status().ToString();

  EpochSnapshot s0 = (*live)->Pin();
  EXPECT_EQ(s0.epoch, 0u);
  EXPECT_EQ(s0.table->num_rows(), 0u);
  EXPECT_TRUE(s0.bbox.empty());
  // Queries against the empty epoch are legal and empty.
  auto sel0 = s0.engine->SelectInBox(Box(0, 0, 100, 100));
  ASSERT_TRUE(sel0.ok()) << sel0.status().ToString();
  EXPECT_EQ(sel0->count(), 0u);

  TableAppender app(*live);
  ASSERT_TRUE(app.StageBatch(MakeBatch(300, 2, Box(0, 0, 50, 50))).ok());
  ASSERT_TRUE(app.Commit().ok());

  EpochSnapshot s1 = (*live)->Pin();
  EXPECT_EQ(s1.epoch, 1u);
  EXPECT_EQ(s1.table->num_rows(), 300u);
  EXPECT_FALSE(s1.bbox.empty());
  auto sel1 = s1.engine->SelectInBox(Box(0, 0, 50, 50));
  ASSERT_TRUE(sel1.ok()) << sel1.status().ToString();
  EXPECT_EQ(sel1->count(), 300u);
  // The pinned epoch-0 snapshot is untouched by the publish.
  EXPECT_EQ(s0.table->num_rows(), 0u);
}

TEST(LiveTableTest, PinnedSnapshotBitIdenticalUnderCommits) {
  Box box(10, 10, 80, 80);
  auto live = LiveTable::Create(MakePoints(4000, 3, Box(0, 0, 100, 100)));
  ASSERT_TRUE(live.ok());

  EpochSnapshot s0 = (*live)->Pin();
  const uint64_t rows0 = s0.table->num_rows();
  const void* x_bytes = s0.table->column("x")->raw_data();
  auto before = s0.engine->SelectInBox(box);
  ASSERT_TRUE(before.ok());

  TableAppender app(*live);
  ASSERT_TRUE(app.StageBatch(MakeBatch(700, 4, box)).ok());
  ASSERT_TRUE(app.Commit().ok());
  EXPECT_EQ((*live)->epoch(), 1u);

  // The pinned snapshot's columns are the SAME objects, not copies — the
  // publish built a new version instead of mutating in place.
  EXPECT_EQ(s0.table->num_rows(), rows0);
  EXPECT_EQ(s0.table->column("x")->raw_data(), x_bytes);
  auto after = s0.engine->SelectInBox(box);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->row_ids, before->row_ids);

  // A fresh pin sees every appended row exactly once.
  EpochSnapshot s1 = (*live)->Pin();
  EXPECT_EQ(s1.table->num_rows(), rows0 + 700);
  auto sel1 = s1.engine->SelectInBox(box);
  ASSERT_TRUE(sel1.ok());
  EXPECT_EQ(sel1->row_ids, BruteForceInBox(*s1.table, box));
}

TEST(LiveTableTest, AppendGrowsBboxPastInitialExtent) {
  auto live = LiveTable::Create(MakePoints(1000, 5, Box(0, 0, 100, 100)));
  ASSERT_TRUE(live.ok());
  const uint64_t rows0 = (*live)->Pin().table->num_rows();

  FlatTable far_batch("pc");
  ASSERT_TRUE(
      far_batch.AddColumn(Column::FromVector("x", std::vector<double>{1000}))
          .ok());
  ASSERT_TRUE(
      far_batch.AddColumn(Column::FromVector("y", std::vector<double>{1000}))
          .ok());
  ASSERT_TRUE(
      far_batch.AddColumn(Column::FromVector("z", std::vector<double>{7}))
          .ok());
  TableAppender app(*live);
  ASSERT_TRUE(app.StageBatch(far_batch).ok());
  ASSERT_TRUE(app.Commit().ok());

  EpochSnapshot s1 = (*live)->Pin();
  EXPECT_GE(s1.bbox.max_x, 1000.0);
  EXPECT_GE(s1.bbox.max_y, 1000.0);
  auto sel = s1.engine->SelectInBox(Box(999, 999, 1001, 1001));
  ASSERT_TRUE(sel.ok()) << sel.status().ToString();
  ASSERT_EQ(sel->count(), 1u);
  EXPECT_EQ(sel->row_ids[0], rows0);
}

TEST(LiveTableTest, DurableCommitsReopenToLatestEpoch) {
  TempDir tmp;
  std::string dir = tmp.File("live");
  LiveTableOptions opts;
  opts.dir = dir;
  auto live = LiveTable::Create(MakePoints(500, 6, Box(0, 0, 100, 100)), opts);
  ASSERT_TRUE(live.ok()) << live.status().ToString();

  TableAppender app(*live);
  ASSERT_TRUE(app.StageBatch(MakeBatch(200, 7, Box(0, 0, 100, 100))).ok());
  ASSERT_TRUE(app.Commit().ok());
  ASSERT_TRUE(app.StageBatch(MakeBatch(300, 8, Box(0, 0, 100, 100))).ok());
  ASSERT_TRUE(app.Commit().ok());
  EXPECT_EQ((*live)->epoch(), 2u);

  auto reopened = LiveTable::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EpochSnapshot got = (*reopened)->Pin();
  EXPECT_EQ(got.table->num_rows(), 1000u);
  ExpectTablesEqual(*got.table, *(*live)->Pin().table);
}

TEST(LiveTableTest, IncrementalStitchByteIdenticalAndQuarantineFallback) {
  TempDir tmp;
  std::string idx_dir = tmp.File("imprints");
  ASSERT_TRUE(MakeDir(idx_dir).ok());
  Box extent(0, 0, 100, 100);
  LiveTableOptions opts;
  opts.engine.num_threads = 1;
  opts.engine.imprints_dir = idx_dir;
  auto live = LiveTable::Create(MakePoints(8192, 9, extent), opts);
  ASSERT_TRUE(live.ok());

  // First query builds (and persists) the x/y imprints of epoch 0.
  Box box(20, 20, 70, 70);
  ASSERT_TRUE((*live)->Pin().engine->SelectInBox(box).ok());

  TableAppender app(*live);
  ASSERT_TRUE(app.StageBatch(MakeBatch(600, 10, extent)).ok());
  ASSERT_TRUE(app.Commit().ok());
  EpochSnapshot s1 = (*live)->Pin();
  auto sel = s1.engine->SelectInBox(box);
  ASSERT_TRUE(sel.ok()) << sel.status().ToString();
  EXPECT_EQ(sel->row_ids, BruteForceInBox(*s1.table, box));

  // The incrementally extended index is byte-identical (on disk) to a
  // from-scratch build over the full appended column.
  auto inc = (*live)->imprint_manager()->GetOrBuild(s1.table->column("x"));
  ASSERT_TRUE(inc.ok()) << inc.status().ToString();
  auto scratch = ImprintsIndex::Build(*s1.table->column("x"));
  ASSERT_TRUE(scratch.ok());
  std::string p_inc = tmp.File("inc.gim"), p_scratch = tmp.File("scratch.gim");
  ASSERT_TRUE(WriteImprintsFile(**inc, p_inc).ok());
  ASSERT_TRUE(WriteImprintsFile(*scratch, p_scratch).ok());
  std::vector<uint8_t> b_inc, b_scratch;
  ASSERT_TRUE(ReadFileBytes(p_inc, &b_inc).ok());
  ASSERT_TRUE(ReadFileBytes(p_scratch, &b_scratch).ok());
  EXPECT_EQ(b_inc, b_scratch);

  // A stitch that fails probe verification quarantines the sidecar and
  // rebuilds from scratch — queries stay correct throughout.
  (*live)->imprint_manager()->InjectStitchFault();
  ASSERT_TRUE(app.StageBatch(MakeBatch(600, 11, extent)).ok());
  ASSERT_TRUE(app.Commit().ok());
  EpochSnapshot s2 = (*live)->Pin();
  auto sel2 = s2.engine->SelectInBox(box);
  ASSERT_TRUE(sel2.ok()) << sel2.status().ToString();
  EXPECT_EQ(sel2->row_ids, BruteForceInBox(*s2.table, box));
  EXPECT_TRUE(PathExists(idx_dir + "/x.gim.quarantined") ||
              PathExists(idx_dir + "/y.gim.quarantined"));
}

// ---------------------------------------------------------------------------
// Sharded live appends: routing, isolation, races.
// ---------------------------------------------------------------------------

TEST(ShardedLiveAppendTest, AppendGrowsShardPastCreationBbox) {
  auto source = MakePoints(4000, 12, Box(0, 0, 100, 100));
  ShardingOptions so;
  so.num_shards = 4;
  auto sharded = ShardedTable::Create(*source, so);
  ASSERT_TRUE(sharded.ok());
  EngineOptions eo;
  eo.num_threads = 1;
  ShardRouter router(*sharded, eo);

  // The batch lies entirely OUTSIDE the creation extent: routing clamps
  // its Hilbert keys to the fixed layout extent, but the owning shard's
  // bbox (and the answers) must cover the true coordinates.
  FlatTable batch = MakeBatch(50, 13, Box(150, 150, 200, 200));
  ASSERT_TRUE(router.Append(batch).ok());

  ShardsView view = router.View();
  EXPECT_EQ(view.total_rows, 4050u);
  auto sel = router.SelectInBox(Box(140, 140, 210, 210));
  ASSERT_TRUE(sel.ok()) << sel.status().ToString();
  EXPECT_EQ(sel->count(), 50u);

  // Oracle over the implied concatenation for a box straddling old and
  // new territory.
  Box straddle(50, 50, 160, 160);
  auto got = router.SelectInBox(straddle);
  ASSERT_TRUE(got.ok());
  uint64_t expect = 0;
  ColumnPtr sx = source->column("x"), sy = source->column("y");
  for (uint64_t r = 0; r < source->num_rows(); ++r) {
    expect += straddle.Contains(Point{sx->GetDouble(r), sy->GetDouble(r)});
  }
  ColumnPtr bx = batch.column("x"), by = batch.column("y");
  for (uint64_t r = 0; r < batch.num_rows(); ++r) {
    expect += straddle.Contains(Point{bx->GetDouble(r), by->GetDouble(r)});
  }
  EXPECT_EQ(got->count(), expect);
}

TEST(ShardedLiveAppendTest, TwoAppendersRacingDisjointShardsLoseNothing) {
  auto source = MakePoints(4000, 14, Box(0, 0, 100, 100));
  ShardingOptions so;
  so.num_shards = 8;
  auto sharded = ShardedTable::Create(*source, so);
  ASSERT_TRUE(sharded.ok());
  EngineOptions eo;
  eo.num_threads = 1;
  ShardRouter router(*sharded, eo);

  // Writer A targets the low corner (start of the Hilbert curve), writer
  // B the opposite end — disjoint shard sets racing through Append.
  constexpr int kBatches = 12;
  constexpr size_t kRows = 64;
  auto writer = [&](uint64_t seed, const Box& region) {
    for (int b = 0; b < kBatches; ++b) {
      FlatTable batch = MakeBatch(kRows, seed + b, region);
      ASSERT_TRUE(router.Append(batch).ok());
    }
  };
  std::thread ta(writer, 100, Box(1, 1, 9, 9));
  std::thread tb(writer, 200, Box(91, 91, 99, 99));
  ta.join();
  tb.join();

  const uint64_t expect_rows = 4000 + 2 * kBatches * kRows;
  ShardsView view = router.View();
  EXPECT_EQ(view.total_rows, expect_rows);
  auto all = router.SelectInBox(Box(0, 0, 100, 100));
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->count(), expect_rows);

  // Value-level check: the multiset of z values selected in each corner
  // equals initial points there plus every appended batch.
  auto CountIn = [&](const Box& box) -> uint64_t {
    auto sel = router.SelectInBox(box);
    EXPECT_TRUE(sel.ok());
    return sel.ok() ? sel->count() : 0;
  };
  uint64_t base_a = 0, base_b = 0;
  ColumnPtr sx = source->column("x"), sy = source->column("y");
  for (uint64_t r = 0; r < source->num_rows(); ++r) {
    Point p{sx->GetDouble(r), sy->GetDouble(r)};
    base_a += Box(1, 1, 9, 9).Contains(p);
    base_b += Box(91, 91, 99, 99).Contains(p);
  }
  EXPECT_EQ(CountIn(Box(1, 1, 9, 9)), base_a + kBatches * kRows);
  EXPECT_EQ(CountIn(Box(91, 91, 99, 99)), base_b + kBatches * kRows);
}

TEST(ShardedLiveAppendTest, PinnedViewSupersededByAppendsStaysIdentical) {
  auto source = MakePoints(3000, 15, Box(0, 0, 100, 100));
  ShardingOptions so;
  so.num_shards = 4;
  auto sharded = ShardedTable::Create(*source, so);
  ASSERT_TRUE(sharded.ok());
  EngineOptions eo;
  eo.num_threads = 1;
  ShardRouter router(*sharded, eo);

  Box box(10, 10, 90, 90);
  ShardsView view0 = router.View();
  auto before = router.Select(view0, Geometry(box), 0.0, {});
  ASSERT_TRUE(before.ok());

  for (int i = 0; i < 3; ++i) {
    FlatTable batch = MakeBatch(128, 300 + i, box);
    ASSERT_TRUE(router.Append(batch).ok());
  }

  // The superseded view answers bit-identically: same shard handles, same
  // bases, no appended row visible.
  auto again = router.Select(view0, Geometry(box), 0.0, {});
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->row_ids, before->row_ids);
  EXPECT_EQ(view0.total_rows, 3000u);

  ShardsView view1 = router.View();
  EXPECT_GT(view1.version, view0.version);
  EXPECT_EQ(view1.total_rows, 3000u + 3 * 128);
  auto now = router.Select(view1, Geometry(box), 0.0, {});
  ASSERT_TRUE(now.ok());
  EXPECT_EQ(now->count(), before->count() + 3 * 128);
}

TEST(ShardedLiveAppendTest, PinnedViewSurvivesReShardAndRouterTeardown) {
  auto source = MakePoints(2000, 16, Box(0, 0, 100, 100));
  ShardingOptions so;
  so.num_shards = 4;
  auto sharded = ShardedTable::Create(*source, so);
  ASSERT_TRUE(sharded.ok());

  ShardsView pinned;
  std::vector<uint64_t> expect_rows;
  {
    EngineOptions eo;
    eo.num_threads = 1;
    ShardRouter router(*sharded, eo);
    pinned = router.View();
    auto sel = router.SelectInBox(Box(25, 25, 75, 75));
    ASSERT_TRUE(sel.ok());
    expect_rows = sel->row_ids;
    // A concurrent re-shard supersedes the layout entirely...
    ShardingOptions re;
    re.num_shards = 16;
    auto resharded = ShardedTable::Create(*source, re);
    ASSERT_TRUE(resharded.ok());
    // ...and the old router goes away with its scope.
  }

  // The pinned view owns its shard handles: reads through it remain valid
  // and value-identical after re-shard + router teardown.
  ASSERT_EQ(pinned.total_rows, 2000u);
  auto reader = ShardedColumnReader::Make(pinned, "z");
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  for (uint64_t r : expect_rows) {
    double z = reader->GetDouble(r);
    EXPECT_GE(z, -5.0);
    EXPECT_LE(z, 40.0);
  }
}

}  // namespace
}  // namespace geocol
