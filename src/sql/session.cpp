#include "sql/session.h"

#include <chrono>
#include <cstdlib>
#include <algorithm>

#include "sql/parser.h"
#include "telemetry/heat.h"
#include "telemetry/metrics.h"
#include "telemetry/recorder.h"
#include "telemetry/trace.h"
#include "util/logging.h"
#include "util/timer.h"

namespace geocol {
namespace sql {

namespace {

int64_t NowUnixNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

/// The registry counters sampled around every recorded statement; the
/// difference attributes cache/chunk/imprint work to that statement
/// (exact for the single-session CLI, union-since-last-statement under
/// concurrent sessions).
struct CounterSnapshot {
  uint64_t cache_hits[3] = {0, 0, 0};
  uint64_t cache_misses[3] = {0, 0, 0};
  uint64_t chunk_faults = 0;
  uint64_t chunk_cache_hits = 0;
  uint64_t io_read_bytes = 0;
  uint64_t imprint_scans = 0;
  uint64_t imprint_cachelines_probed = 0;
  uint64_t imprint_cachelines_full = 0;
  uint64_t imprint_values_checked = 0;
};

CounterSnapshot SnapshotCounters() {
  // Registry references are process-lifetime stable (metrics.h), so the
  // map lookups (and their string allocations) happen once, not twice per
  // recorded statement.
  struct Refs {
    telemetry::Counter* cache_hits[3];
    telemetry::Counter* cache_misses[3];
    telemetry::Counter* chunk_faults;
    telemetry::Counter* chunk_cache_hits;
    telemetry::Counter* io_read_bytes;
    telemetry::Counter* imprint_scans;
    telemetry::Counter* imprint_cachelines_probed;
    telemetry::Counter* imprint_cachelines_full;
    telemetry::Counter* imprint_values_checked;
  };
  static const Refs refs = [] {
    auto& reg = telemetry::MetricsRegistry::Global();
    const char* tiers[3] = {"selection", "grid", "aggregate"};
    Refs r;
    for (int t = 0; t < 3; ++t) {
      r.cache_hits[t] = &reg.GetCounter(std::string("geocol_cache_") +
                                        tiers[t] + "_hits_total");
      r.cache_misses[t] = &reg.GetCounter(std::string("geocol_cache_") +
                                          tiers[t] + "_misses_total");
    }
    r.chunk_faults = &reg.GetCounter("geocol_chunk_faults_total");
    r.chunk_cache_hits = &reg.GetCounter("geocol_chunk_cache_hits_total");
    r.io_read_bytes = &reg.GetCounter("geocol_io_read_bytes_total");
    r.imprint_scans = &reg.GetCounter("geocol_imprint_scans_total");
    r.imprint_cachelines_probed =
        &reg.GetCounter("geocol_imprint_cachelines_probed_total");
    r.imprint_cachelines_full =
        &reg.GetCounter("geocol_imprint_cachelines_full_total");
    r.imprint_values_checked =
        &reg.GetCounter("geocol_imprint_values_checked_total");
    return r;
  }();
  CounterSnapshot s;
  for (int t = 0; t < 3; ++t) {
    s.cache_hits[t] = refs.cache_hits[t]->Value();
    s.cache_misses[t] = refs.cache_misses[t]->Value();
  }
  s.chunk_faults = refs.chunk_faults->Value();
  s.chunk_cache_hits = refs.chunk_cache_hits->Value();
  s.io_read_bytes = refs.io_read_bytes->Value();
  s.imprint_scans = refs.imprint_scans->Value();
  s.imprint_cachelines_probed = refs.imprint_cachelines_probed->Value();
  s.imprint_cachelines_full = refs.imprint_cachelines_full->Value();
  s.imprint_values_checked = refs.imprint_values_checked->Value();
  return s;
}

void FillCounterDeltas(const CounterSnapshot& before,
                       const CounterSnapshot& after,
                       telemetry::QueryEvent* ev) {
  for (int t = 0; t < 3; ++t) {
    ev->cache_hits[t] = after.cache_hits[t] - before.cache_hits[t];
    ev->cache_misses[t] = after.cache_misses[t] - before.cache_misses[t];
  }
  ev->chunk_faults = after.chunk_faults - before.chunk_faults;
  ev->chunk_cache_hits = after.chunk_cache_hits - before.chunk_cache_hits;
  ev->io_read_bytes = after.io_read_bytes - before.io_read_bytes;
  ev->imprint_scans = after.imprint_scans - before.imprint_scans;
  ev->imprint_cachelines_probed =
      after.imprint_cachelines_probed - before.imprint_cachelines_probed;
  ev->imprint_cachelines_full =
      after.imprint_cachelines_full - before.imprint_cachelines_full;
  ev->imprint_values_checked =
      after.imprint_values_checked - before.imprint_values_checked;
}

/// Mines the span tree: leaf operator times aggregated by name (the
/// latency breakdown) and the shard.route attrs (routing outcome).
void FillFromProfile(const QueryProfile& profile, telemetry::QueryEvent* ev) {
  const auto& ops = profile.operators();
  std::vector<bool> has_child(ops.size(), false);
  for (const OperatorProfile& op : ops) {
    if (op.parent >= 0 && static_cast<size_t>(op.parent) < ops.size()) {
      has_child[op.parent] = true;
    }
  }
  // Sorted-vector accumulation: profiles carry a handful of distinct leaf
  // names, so lower_bound beats a node allocation per map insert (this
  // runs once per recorded statement).
  auto& by_name = ev->span_nanos;
  by_name.reserve(8);
  for (size_t i = 0; i < ops.size(); ++i) {
    if (has_child[i]) continue;
    auto it = std::lower_bound(
        by_name.begin(), by_name.end(), ops[i].name,
        [](const auto& entry, const std::string& name) {
          return entry.first < name;
        });
    if (it != by_name.end() && it->first == ops[i].name) {
      it->second += ops[i].nanos;
    } else {
      by_name.insert(it, {ops[i].name, ops[i].nanos});
    }
  }
  ev->critical_path_nanos = profile.CriticalPathNanos();
  for (const OperatorProfile& op : ops) {
    if (op.name != "shard.route") continue;
    for (const auto& kv : op.attrs) {
      const uint64_t v = std::strtoull(kv.second.c_str(), nullptr, 10);
      if (kv.first == "shards_total") ev->shards_total = v;
      else if (kv.first == "shards_scanned") ev->shards_scanned = v;
      else if (kv.first == "shards_pruned") ev->shards_pruned = v;
      else if (kv.first == "shards_covered") ev->shards_covered = v;
    }
  }
}

/// Embeds the heat drained since the previous statement, capped so one
/// pathological query cannot balloon an event frame.
void FillHeat(telemetry::QueryEvent* ev) {
  constexpr size_t kMaxEntries = 4096;
  for (const auto& d : telemetry::DrainShardHeat()) {
    if (ev->shard_heat.size() >= kMaxEntries) break;
    ev->shard_heat.push_back({d.shard, d.scans, d.covered, d.rows});
  }
  for (auto& d : telemetry::DrainChunkHeat()) {
    if (ev->chunk_heat.size() >= kMaxEntries) break;
    ev->chunk_heat.push_back(
        {std::move(d.file), d.chunk, d.touches, d.faults});
  }
}

}  // namespace

SessionOptions SessionOptions::FromEnv() {
  SessionOptions options;
  if (const char* env = std::getenv("GEOCOL_SLOW_QUERY_MS")) {
    char* end = nullptr;
    double ms = std::strtod(env, &end);
    if (end != env && ms >= 0) options.slow_query_ms = ms;
  }
  if (const char* env = std::getenv("GEOCOL_CACHE_MB")) {
    char* end = nullptr;
    double mb = std::strtod(env, &end);
    if (end != env && mb >= 0) {
      options.cache_budget_bytes = static_cast<int64_t>(mb * 1024 * 1024);
    }
  }
  return options;
}

Result<ResultSet> Session::Execute(const std::string& sql_text) {
  return ExecuteRecorded(sql_text, [&](telemetry::QueryEvent* ev) {
    return ExecuteInternal(sql_text, ev);
  });
}

Result<ResultSet> Session::ExecutePrepared(const std::string& sql_text,
                                           PlannedQuery plan) {
  return ExecuteRecorded(sql_text, [&](telemetry::QueryEvent* ev) {
    Timer timer;
    const int64_t start_unix_nanos = NowUnixNanos();
    if (ev != nullptr) ev->start_unix_nanos = start_unix_nanos;
    return RunPlanned(sql_text, plan, ev, nullptr, nullptr, timer,
                      start_unix_nanos);
  });
}

Result<ResultSet> Session::ExecutePreparedWithRows(const std::string& sql_text,
                                                   PlannedQuery plan,
                                                   std::vector<uint64_t> rows,
                                                   QueryProfile pre_profile) {
  return ExecuteRecorded(sql_text, [&](telemetry::QueryEvent* ev) {
    Timer timer;
    const int64_t start_unix_nanos = NowUnixNanos();
    if (ev != nullptr) ev->start_unix_nanos = start_unix_nanos;
    return RunPlanned(sql_text, plan, ev, &rows, &pre_profile, timer,
                      start_unix_nanos);
  });
}

Result<ResultSet> Session::ExecuteRecorded(
    const std::string& sql_text,
    const std::function<Result<ResultSet>(telemetry::QueryEvent*)>& body) {
  telemetry::FlightRecorder& recorder = telemetry::FlightRecorder::Global();
  if (!options_.record_flight || !recorder.enabled()) {
    return body(nullptr);
  }
  Timer recording_timer;  // everything the recorder adds around the query
  telemetry::QueryEvent ev;
  ev.query = sql_text;
  ev.client = client_tag_;
  const CounterSnapshot before = SnapshotCounters();
  Timer timer;
  Result<ResultSet> result = body(&ev);
  ev.wall_nanos = timer.ElapsedNanos();
  FillCounterDeltas(before, SnapshotCounters(), &ev);
  FillHeat(&ev);
  ev.ok = result.ok();
  if (result.ok()) {
    ev.rows_out = result->num_rows();
    if (ev.digest_valid) ev.result_digest = ResultSetDigest(*result);
  } else {
    ev.error = result.status().ToString();
    ev.digest_valid = false;
  }
  Status appended = recorder.Append(ev);
  if (!appended.ok()) {
    // Log once per process: a broken flight log degrades observability,
    // never query service.
    static bool warned = false;
    if (!warned) {
      warned = true;
      GEOCOL_LOG(Warning).With("error", appended.ToString())
          << "flight recorder append failed; recording degraded";
    }
  }
  // The recorder's self-measured tax: counter snapshots, heat drain,
  // result digest, serialize + append — everything this wrapper added
  // beyond the query itself (FillFromProfile adds its share from inside
  // ExecuteInternal). `geocol metrics` exposes it, and bench_telemetry
  // E17 divides it by statements recorded to prove the <2% overhead bar.
  GEOCOL_METRIC_COUNTER(flight_overhead_nanos,
                        "geocol_flight_overhead_nanos_total");
  flight_overhead_nanos.Increment(
      static_cast<uint64_t>(recording_timer.ElapsedNanos() - ev.wall_nanos));
  return result;
}

Result<ResultSet> Session::ExecuteInternal(const std::string& sql_text,
                                           telemetry::QueryEvent* ev) {
  Timer timer;
  const int64_t start_unix_nanos = NowUnixNanos();
  if (ev != nullptr) ev->start_unix_nanos = start_unix_nanos;
  GEOCOL_ASSIGN_OR_RETURN(SelectStmt stmt, Parse(sql_text));
  GEOCOL_ASSIGN_OR_RETURN(PlannedQuery plan, PlanQuery(catalog_, std::move(stmt)));
  return RunPlanned(sql_text, plan, ev, nullptr, nullptr, timer,
                    start_unix_nanos);
}

Result<ResultSet> Session::RunPlanned(const std::string& sql_text,
                                      PlannedQuery& plan,
                                      telemetry::QueryEvent* ev,
                                      std::vector<uint64_t>* batched_rows,
                                      QueryProfile* batched_profile,
                                      const Timer& timer,
                                      int64_t start_unix_nanos) {
  last_plan_ = plan.Describe();
  if (ev != nullptr) {
    ev->table = plan.stmt.table;
    // EXPLAIN ANALYZE embeds measured timings in its result rows, so its
    // digest can never replay bit-for-bit; everything else can.
    ev->digest_valid = !plan.stmt.analyze;
    if (plan.router != nullptr) {
      ev->sharded = true;
      ev->generation = plan.router->table().generation();
      ev->shards_total = plan.router->num_shards();
    } else if (plan.engine != nullptr) {
      for (const auto& column : plan.engine->table().columns()) {
        ev->column_epochs.push_back(column->epoch());
      }
    }
  }
  if (options_.cache_budget_bytes >= 0 && plan.engine != nullptr) {
    plan.engine->set_cache_budget(
        static_cast<uint64_t>(options_.cache_budget_bytes));
  }
  if (options_.cache_budget_bytes >= 0 && plan.router != nullptr) {
    plan.router->set_cache_budget(
        static_cast<uint64_t>(options_.cache_budget_bytes));
  }
  GEOCOL_ASSIGN_OR_RETURN(
      ResultSet rs,
      batched_rows != nullptr
          ? ExecutePointCloudWithRows(plan, std::move(*batched_rows),
                                      std::move(*batched_profile))
          : ExecuteQuery(plan));
  last_profile_ = rs.profile;
  const int64_t wall_nanos = timer.ElapsedNanos();
  GEOCOL_METRIC_HISTOGRAM(h_wall, "geocol_sql_wall_nanos");
  h_wall.Observe(wall_nanos);
  if (ev != nullptr) {
    Timer fill_timer;
    FillFromProfile(last_profile_, ev);
    GEOCOL_METRIC_COUNTER(flight_overhead_nanos,
                          "geocol_flight_overhead_nanos_total");
    flight_overhead_nanos.Increment(
        static_cast<uint64_t>(fill_timer.ElapsedNanos()));
  }

  if (options_.record_trace && !last_profile_.empty()) {
    telemetry::TraceRecord record;
    record.query = sql_text;
    record.profile = last_profile_;
    record.wall_nanos = wall_nanos;
    record.start_unix_nanos = start_unix_nanos;
    telemetry::TraceRing::Global().Record(std::move(record));
  }

  if (options_.slow_query_ms >= 0 &&
      wall_nanos / 1e6 > options_.slow_query_ms) {
    GEOCOL_LOG(Warning)
            .With("wall_ms", wall_nanos / 1e6)
            .With("threshold_ms", options_.slow_query_ms)
            .With("p99_ms", h_wall.ValueAtQuantile(0.99) / 1e6)
            .With("query", sql_text)
        << "slow query\n"
        << last_plan_ << "\n"
        << last_profile_.ToString();
  }
  return rs;
}

}  // namespace sql
}  // namespace geocol
