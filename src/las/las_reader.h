// Readers for the LAS-like tile format. Header-only reads are cheap and
// are what the file-based baseline's per-file pre-filter uses (§2.2: "a
// large amount of files to be inspected for a simple selection").
#ifndef GEOCOL_LAS_LAS_READER_H_
#define GEOCOL_LAS_LAS_READER_H_

#include <string>

#include "las/las_format.h"
#include "util/status.h"

namespace geocol {

/// Reads only the fixed header of a tile file.
Result<LasHeader> ReadLasHeader(const std::string& path);

/// Reads a whole tile, decompressing when the header says LAZ.
Result<LasTile> ReadLasFile(const std::string& path);

}  // namespace geocol

#endif  // GEOCOL_LAS_LAS_READER_H_
