#include "core/profile.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>

namespace geocol {

namespace {

int64_t SteadyNowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

uint32_t CurrentProfileThreadId() {
  static std::atomic<uint32_t> next{0};
  thread_local uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void QueryProfile::Clear() {
  ops_.clear();
  open_.clear();
  epoch_nanos_ = SteadyNowNanos();
}

int64_t QueryProfile::NowNanos() const {
  return SteadyNowNanos() - epoch_nanos_;
}

int32_t QueryProfile::PushSpan(OperatorProfile op) {
  op.parent = open_.empty() ? -1 : open_.back();
  op.thread_id = CurrentProfileThreadId();
  ops_.push_back(std::move(op));
  return static_cast<int32_t>(ops_.size()) - 1;
}

int32_t QueryProfile::Add(std::string name, int64_t nanos, uint64_t rows_in,
                          uint64_t rows_out, std::string detail) {
  return AddParallel(std::move(name), nanos, rows_in, rows_out, 1,
                     std::move(detail));
}

int32_t QueryProfile::AddParallel(std::string name, int64_t nanos,
                                  uint64_t rows_in, uint64_t rows_out,
                                  uint32_t workers, std::string detail) {
  OperatorProfile op;
  op.name = std::move(name);
  op.nanos = nanos;
  op.rows_in = rows_in;
  op.rows_out = rows_out;
  op.workers = workers == 0 ? 1 : workers;
  op.detail = std::move(detail);
  // The operator ended "now" and ran for `nanos`.
  op.start_nanos = std::max<int64_t>(0, NowNanos() - nanos);
  return PushSpan(std::move(op));
}

int32_t QueryProfile::AddSpanAt(std::string name, int64_t start_nanos,
                                int64_t nanos, uint64_t rows_in,
                                uint64_t rows_out, std::string detail) {
  OperatorProfile op;
  op.name = std::move(name);
  op.nanos = nanos;
  op.rows_in = rows_in;
  op.rows_out = rows_out;
  op.detail = std::move(detail);
  op.start_nanos = start_nanos;
  return PushSpan(std::move(op));
}

int32_t QueryProfile::OpenSpan(std::string name) {
  OperatorProfile op;
  op.name = std::move(name);
  op.start_nanos = NowNanos();
  int32_t index = PushSpan(std::move(op));
  open_.push_back(index);
  return index;
}

void QueryProfile::CloseSpan(uint64_t rows_in, uint64_t rows_out,
                             std::string detail) {
  if (open_.empty()) return;
  OperatorProfile& op = ops_[open_.back()];
  open_.pop_back();
  op.nanos = std::max<int64_t>(0, NowNanos() - op.start_nanos);
  if (rows_in != 0) op.rows_in = rows_in;
  if (rows_out != 0) op.rows_out = rows_out;
  if (!detail.empty()) op.detail = std::move(detail);
}

void QueryProfile::AddAttr(int32_t index, std::string key, std::string value) {
  if (index < 0 || static_cast<size_t>(index) >= ops_.size()) return;
  ops_[index].attrs.emplace_back(std::move(key), std::move(value));
}

void QueryProfile::AddAttr(int32_t index, std::string key, uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(value));
  AddAttr(index, std::move(key), std::string(buf));
}

void QueryProfile::AddAttr(int32_t index, std::string key, double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4f", value);
  AddAttr(index, std::move(key), std::string(buf));
}

void QueryProfile::Append(const QueryProfile& other) {
  const int32_t base = static_cast<int32_t>(ops_.size());
  const int32_t adopt_parent = open_.empty() ? -1 : open_.back();
  // Branch-local profiles were cleared (epoch re-based) when their branch
  // started; shift their start offsets onto this profile's timeline.
  const int64_t epoch_delta = other.epoch_nanos_ - epoch_nanos_;
  for (const OperatorProfile& src : other.ops_) {
    OperatorProfile op = src;
    op.start_nanos = std::max<int64_t>(0, op.start_nanos + epoch_delta);
    op.parent = op.parent < 0 ? adopt_parent : op.parent + base;
    ops_.push_back(std::move(op));
  }
}

int64_t QueryProfile::TotalNanos() const {
  // Wrapper spans re-cover their children, so count leaves only. A flat
  // profile (no OpenSpan calls) has only leaves — identical to the old
  // plain sum.
  std::vector<bool> has_child(ops_.size(), false);
  for (const auto& op : ops_) {
    if (op.parent >= 0) has_child[op.parent] = true;
  }
  int64_t total = 0;
  for (size_t i = 0; i < ops_.size(); ++i) {
    if (!has_child[i]) total += ops_[i].nanos;
  }
  return total;
}

int64_t QueryProfile::CriticalPathNanos() const {
  // Measure of the union of root-span intervals. Concurrent branches
  // overlap on the timeline and are counted once.
  std::vector<std::pair<int64_t, int64_t>> intervals;
  intervals.reserve(ops_.size());
  for (const auto& op : ops_) {
    if (op.parent < 0) {
      intervals.emplace_back(op.start_nanos, op.start_nanos + op.nanos);
    }
  }
  std::sort(intervals.begin(), intervals.end());
  int64_t covered = 0;
  int64_t cursor = 0;
  bool any = false;
  for (const auto& iv : intervals) {
    int64_t begin = any ? std::max(cursor, iv.first) : iv.first;
    if (iv.second > begin) covered += iv.second - begin;
    cursor = any ? std::max(cursor, iv.second) : iv.second;
    any = true;
  }
  return covered;
}

std::string QueryProfile::ToString() const {
  // Render as a tree: children printed directly under their parent,
  // indented by depth, preserving recorded order among siblings.
  std::vector<std::vector<int32_t>> children(ops_.size());
  std::vector<int32_t> roots;
  for (size_t i = 0; i < ops_.size(); ++i) {
    int32_t parent = ops_[i].parent;
    if (parent >= 0 && static_cast<size_t>(parent) < ops_.size()) {
      children[parent].push_back(static_cast<int32_t>(i));
    } else {
      roots.push_back(static_cast<int32_t>(i));
    }
  }

  std::string out;
  char line[512];
  // Iterative pre-order walk; stack holds (index, depth).
  std::vector<std::pair<int32_t, int>> stack;
  for (auto it = roots.rbegin(); it != roots.rend(); ++it) {
    stack.emplace_back(*it, 0);
  }
  while (!stack.empty()) {
    auto [index, depth] = stack.back();
    stack.pop_back();
    const OperatorProfile& op = ops_[index];
    char workers[16] = "";
    if (op.workers > 1) {
      std::snprintf(workers, sizeof(workers), " x%u", op.workers);
    }
    std::string name(static_cast<size_t>(depth) * 2, ' ');
    name += op.name;
    std::string annot = op.detail;
    for (const auto& kv : op.attrs) {
      if (!annot.empty()) annot += " ";
      annot += kv.first;
      annot += "=";
      annot += kv.second;
    }
    std::snprintf(line, sizeof(line),
                  "  %-28s %10.3f ms%s  %12llu -> %-12llu %s\n", name.c_str(),
                  op.nanos / 1e6, workers,
                  static_cast<unsigned long long>(op.rows_in),
                  static_cast<unsigned long long>(op.rows_out), annot.c_str());
    out += line;
    for (auto it = children[index].rbegin(); it != children[index].rend();
         ++it) {
      stack.emplace_back(*it, depth + 1);
    }
  }
  std::snprintf(line, sizeof(line), "  %-28s %10.3f ms\n", "TOTAL (sum)",
                TotalNanos() / 1e6);
  out += line;
  std::snprintf(line, sizeof(line), "  %-28s %10.3f ms\n",
                "WALL (critical path)", CriticalPathNanos() / 1e6);
  out += line;
  return out;
}

}  // namespace geocol
