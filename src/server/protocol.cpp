#include "server/protocol.h"

#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/types.h>

#include <algorithm>
#include <cstring>

#include "util/binary_io.h"

namespace geocol {
namespace server {

namespace {

/// recv() exactly `n` bytes. Returns the byte count read before EOF (so a
/// caller can distinguish clean close from a torn frame) or an IOError.
Result<size_t> RecvAll(int fd, void* buf, size_t n) {
  uint8_t* p = static_cast<uint8_t*>(buf);
  size_t got = 0;
  while (got < n) {
    ssize_t r = ::recv(fd, p + got, n - got, 0);
    if (r == 0) return got;
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("recv: ") + std::strerror(errno));
    }
    got += static_cast<size_t>(r);
  }
  return got;
}

Status SendAll(int fd, const void* buf, size_t n) {
  const uint8_t* p = static_cast<const uint8_t*>(buf);
  size_t sent = 0;
  while (sent < n) {
    // MSG_NOSIGNAL: a client that hung up must produce EPIPE here, not
    // kill the whole server with SIGPIPE.
    ssize_t r = ::send(fd, p + sent, n - sent, MSG_NOSIGNAL);
    if (r < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("send: ") + std::strerror(errno));
    }
    sent += static_cast<size_t>(r);
  }
  return Status::OK();
}

}  // namespace

const char* ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kQueryFailed: return "QUERY_FAILED";
    case ErrorCode::kBusy: return "BUSY";
    case ErrorCode::kRateLimited: return "RATE_LIMITED";
    case ErrorCode::kShuttingDown: return "SHUTTING_DOWN";
    case ErrorCode::kTooLarge: return "TOO_LARGE";
    case ErrorCode::kMalformed: return "MALFORMED";
  }
  return "UNKNOWN";
}

Status WriteFrame(int fd, FrameType type,
                  const std::vector<uint8_t>& payload) {
  // Refuse before touching the socket: encoding a length that does not
  // fit the cap (or, past 4 GiB, the u32 prefix itself) would emit a
  // corrupt frame_len and desynchronize the stream for good.
  if (payload.size() >= kMaxResponseFrameBytes) {
    return Status::OutOfRange(
        "frame payload of " + std::to_string(payload.size()) +
        " bytes exceeds frame cap of " +
        std::to_string(kMaxResponseFrameBytes));
  }
  const uint32_t frame_len = static_cast<uint32_t>(1 + payload.size());
  uint8_t header[5];
  std::memcpy(header, &frame_len, sizeof(frame_len));
  header[4] = static_cast<uint8_t>(type);
  // Small frames go out as one send: with Nagle on the far side a split
  // header would stall against delayed ACKs, and even with TCP_NODELAY a
  // single segment beats two for a 5-byte prefix.
  constexpr size_t kCoalesceBytes = 16 * 1024;
  if (payload.size() <= kCoalesceBytes) {
    std::vector<uint8_t> frame(sizeof(header) + payload.size());
    std::memcpy(frame.data(), header, sizeof(header));
    if (!payload.empty()) {
      std::memcpy(frame.data() + sizeof(header), payload.data(),
                  payload.size());
    }
    return SendAll(fd, frame.data(), frame.size());
  }
  GEOCOL_RETURN_NOT_OK(SendAll(fd, header, sizeof(header)));
  return SendAll(fd, payload.data(), payload.size());
}

void SetNoDelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

Result<Frame> ReadFrame(int fd, uint32_t max_frame_bytes) {
  uint32_t frame_len = 0;
  GEOCOL_ASSIGN_OR_RETURN(size_t got,
                          RecvAll(fd, &frame_len, sizeof(frame_len)));
  if (got == 0) return Status::NotFound("connection closed");
  if (got < sizeof(frame_len)) {
    return Status::Corruption("truncated frame header");
  }
  if (frame_len == 0) return Status::Corruption("zero-length frame");
  if (frame_len > max_frame_bytes) {
    return Status::OutOfRange("frame of " + std::to_string(frame_len) +
                              " bytes exceeds cap of " +
                              std::to_string(max_frame_bytes));
  }
  Frame frame;
  uint8_t type = 0;
  GEOCOL_ASSIGN_OR_RETURN(got, RecvAll(fd, &type, sizeof(type)));
  if (got < sizeof(type)) return Status::Corruption("truncated frame");
  frame.type = static_cast<FrameType>(type);
  frame.payload.resize(frame_len - 1);
  if (!frame.payload.empty()) {
    GEOCOL_ASSIGN_OR_RETURN(
        got, RecvAll(fd, frame.payload.data(), frame.payload.size()));
    if (got < frame.payload.size()) {
      return Status::Corruption("truncated frame payload");
    }
  }
  return frame;
}

std::vector<uint8_t> EncodeError(const ErrorReply& reply) {
  BufferWriter w;
  w.WriteScalar<uint8_t>(static_cast<uint8_t>(reply.code));
  w.WriteScalar<uint8_t>(static_cast<uint8_t>(reply.status_code));
  w.WriteString(reply.message);
  return w.Take();
}

Result<ErrorReply> DecodeError(const std::vector<uint8_t>& payload) {
  BufferReader r(payload);
  ErrorReply reply;
  uint8_t code = 0, status_code = 0;
  GEOCOL_RETURN_NOT_OK(r.ReadScalar(&code));
  GEOCOL_RETURN_NOT_OK(r.ReadScalar(&status_code));
  GEOCOL_RETURN_NOT_OK(r.ReadString(&reply.message));
  if (r.remaining() != 0) {
    return Status::Corruption("error reply has trailing bytes");
  }
  reply.code = static_cast<ErrorCode>(code);
  reply.status_code = static_cast<StatusCode>(status_code);
  return reply;
}

std::vector<uint8_t> EncodeResultSet(const sql::ResultSet& rs) {
  BufferWriter w;
  w.WriteScalar<uint32_t>(static_cast<uint32_t>(rs.columns.size()));
  for (const std::string& c : rs.columns) w.WriteString(c);
  w.WriteScalar<uint64_t>(rs.rows.size());
  for (const auto& row : rs.rows) {
    w.WriteScalar<uint32_t>(static_cast<uint32_t>(row.size()));
    for (const sql::Value& v : row) {
      w.WriteScalar<uint8_t>(static_cast<uint8_t>(v.kind));
      switch (v.kind) {
        case sql::Value::Kind::kNull:
          break;
        case sql::Value::Kind::kNumber:
          w.WriteScalar<double>(v.number);
          break;
        case sql::Value::Kind::kText:
          w.WriteString(v.text);
          break;
      }
    }
  }
  return w.Take();
}

Result<sql::ResultSet> DecodeResultSet(const std::vector<uint8_t>& payload) {
  BufferReader r(payload);
  sql::ResultSet rs;
  uint32_t ncols = 0;
  GEOCOL_RETURN_NOT_OK(r.ReadScalar(&ncols));
  // Reserve bounds come from bytes actually present, never from the
  // untrusted count alone.
  rs.columns.reserve(std::min<size_t>(ncols, r.remaining()));
  for (uint32_t c = 0; c < ncols; ++c) {
    std::string name;
    GEOCOL_RETURN_NOT_OK(r.ReadString(&name));
    rs.columns.push_back(std::move(name));
  }
  uint64_t nrows = 0;
  GEOCOL_RETURN_NOT_OK(r.ReadScalar(&nrows));
  rs.rows.reserve(std::min<uint64_t>(nrows, r.remaining()));
  for (uint64_t i = 0; i < nrows; ++i) {
    uint32_t ncells = 0;
    GEOCOL_RETURN_NOT_OK(r.ReadScalar(&ncells));
    std::vector<sql::Value> row;
    row.reserve(std::min<size_t>(ncells, r.remaining()));
    for (uint32_t c = 0; c < ncells; ++c) {
      uint8_t kind = 0;
      GEOCOL_RETURN_NOT_OK(r.ReadScalar(&kind));
      switch (static_cast<sql::Value::Kind>(kind)) {
        case sql::Value::Kind::kNull:
          row.push_back(sql::Value::Null());
          break;
        case sql::Value::Kind::kNumber: {
          double v = 0;
          GEOCOL_RETURN_NOT_OK(r.ReadScalar(&v));
          row.push_back(sql::Value::Num(v));
          break;
        }
        case sql::Value::Kind::kText: {
          std::string s;
          GEOCOL_RETURN_NOT_OK(r.ReadString(&s));
          row.push_back(sql::Value::Text(std::move(s)));
          break;
        }
        default:
          return Status::Corruption("result cell has unknown kind " +
                                    std::to_string(kind));
      }
    }
    rs.rows.push_back(std::move(row));
  }
  if (r.remaining() != 0) {
    return Status::Corruption("result set has trailing bytes");
  }
  return rs;
}

}  // namespace server
}  // namespace geocol
