// Regular grid tests: cell mapping, classification, auto-sizing.
#include <gtest/gtest.h>

#include "geom/grid.h"

namespace geocol {
namespace {

TEST(GridTest, Dimensions) {
  RegularGrid g(Box(0, 0, 100, 50), 10, 5);
  EXPECT_EQ(g.cols(), 10u);
  EXPECT_EQ(g.rows(), 5u);
  EXPECT_EQ(g.num_cells(), 50u);
}

TEST(GridTest, CellOfMapsPointsConsistently) {
  RegularGrid g(Box(0, 0, 100, 100), 10, 10);
  EXPECT_EQ(g.CellOf(5, 5), 0u);
  EXPECT_EQ(g.CellOf(95, 5), 9u);
  EXPECT_EQ(g.CellOf(5, 95), 90u);
  EXPECT_EQ(g.CellOf(95, 95), 99u);
  // Edges clamp into valid cells.
  EXPECT_EQ(g.CellOf(100, 100), 99u);
  EXPECT_EQ(g.CellOf(-5, -5), 0u);
}

TEST(GridTest, CellBoxInvertsCellOf) {
  RegularGrid g(Box(10, 20, 110, 70), 7, 3);
  for (uint64_t c = 0; c < g.num_cells(); ++c) {
    Box b = g.CellBox(c);
    Point mid = b.center();
    EXPECT_EQ(g.CellOf(mid.x, mid.y), c);
  }
}

TEST(GridTest, CellBoxesTileTheExtent) {
  RegularGrid g(Box(0, 0, 10, 10), 4, 4);
  double area = 0;
  for (uint64_t c = 0; c < g.num_cells(); ++c) area += g.CellBox(c).area();
  EXPECT_NEAR(area, 100.0, 1e-9);
}

TEST(GridTest, DegenerateExtentHandled) {
  RegularGrid g(Box(5, 5, 5, 5), 4, 4);
  EXPECT_EQ(g.CellOf(5, 5), 0u);
  RegularGrid g2(Box(0, 5, 10, 5), 4, 4);  // zero height
  (void)g2.CellOf(5, 5);
}

TEST(GridTest, ZeroColsClampedToOne) {
  RegularGrid g(Box(0, 0, 1, 1), 0, 0);
  EXPECT_EQ(g.cols(), 1u);
  EXPECT_EQ(g.rows(), 1u);
}

TEST(GridTest, ClassifyCellsAgainstPolygon) {
  RegularGrid g(Box(0, 0, 10, 10), 10, 10);
  Geometry poly(Polygon::FromBox(Box(2.5, 2.5, 7.5, 7.5)));
  auto classes = g.ClassifyCells(poly);
  ASSERT_EQ(classes.size(), 100u);
  // Cell (3,3) covering [3,4]x[3,4] is fully inside.
  EXPECT_EQ(classes[3 * 10 + 3], BoxRelation::kInside);
  // Cell (0,0) is fully outside.
  EXPECT_EQ(classes[0], BoxRelation::kOutside);
  // Cell (2,2) covering [2,3]x[2,3] touches the boundary at 2.5.
  EXPECT_EQ(classes[2 * 10 + 2], BoxRelation::kBoundary);
  // Count sanity: 9 inside (3..5 squared region fully within)...
  int inside = 0, boundary = 0, outside = 0;
  for (BoxRelation r : classes) {
    inside += r == BoxRelation::kInside;
    boundary += r == BoxRelation::kBoundary;
    outside += r == BoxRelation::kOutside;
  }
  EXPECT_EQ(inside, 16);    // cells [3..6]x[3..6]
  EXPECT_EQ(boundary, 20);  // ring of cells crossing the boundary
  EXPECT_EQ(outside, 64);
}

TEST(GridTest, ForExpectedPointsTargetsDensity) {
  RegularGrid g = RegularGrid::ForExpectedPoints(Box(0, 0, 100, 100),
                                                 100000, 100);
  // ~1000 cells expected.
  EXPECT_GE(g.num_cells(), 500u);
  EXPECT_LE(g.num_cells(), 2000u);
}

TEST(GridTest, ForExpectedPointsRespectsAspect) {
  RegularGrid g = RegularGrid::ForExpectedPoints(Box(0, 0, 1000, 10),
                                                 10000, 10);
  EXPECT_GT(g.cols(), g.rows());
}

TEST(GridTest, ForExpectedPointsClampsToMax) {
  RegularGrid g = RegularGrid::ForExpectedPoints(Box(0, 0, 1, 1),
                                                 1'000'000'000ULL, 1, 64);
  EXPECT_LE(g.cols(), 64u);
  EXPECT_LE(g.rows(), 64u);
}

TEST(GridTest, FewPointsSmallGrid) {
  RegularGrid g = RegularGrid::ForExpectedPoints(Box(0, 0, 1, 1), 10, 256);
  EXPECT_EQ(g.num_cells(), 1u);
}

}  // namespace
}  // namespace geocol
