// Well-Known Text reader/writer covering the geometry subset. Used by the
// SQL front end (geometry literals) and the examples.
#ifndef GEOCOL_GEOM_WKT_H_
#define GEOCOL_GEOM_WKT_H_

#include <string>

#include "geom/geometry.h"
#include "util/status.h"

namespace geocol {

/// Parses a WKT string: POINT, LINESTRING, POLYGON, MULTIPOLYGON, and the
/// PostGIS-style BOX(minx miny, maxx maxy) extension.
Result<Geometry> ParseWkt(const std::string& text);

/// Formats a geometry as WKT with up to `precision` fractional digits.
std::string ToWkt(const Geometry& g, int precision = 6);

}  // namespace geocol

#endif  // GEOCOL_GEOM_WKT_H_
