// The regular grid of the paper's refinement step (§3.3): a uniform grid
// laid over the candidate points from the imprint filter. Cells are
// classified against the query geometry once; only boundary cells require
// exact per-point tests.
#ifndef GEOCOL_GEOM_GRID_H_
#define GEOCOL_GEOM_GRID_H_

#include <cstdint>
#include <vector>

#include "geom/geometry.h"
#include "geom/predicates.h"

namespace geocol {

/// A uniform grid over a bounding box with cell-level geometry
/// classification.
class RegularGrid {
 public:
  /// Builds a `cols` x `rows` grid covering `extent`. Degenerate extents
  /// (zero width/height) are inflated by an epsilon so every point maps to
  /// a valid cell.
  RegularGrid(const Box& extent, uint32_t cols, uint32_t rows);

  uint32_t cols() const { return cols_; }
  uint32_t rows() const { return rows_; }
  uint64_t num_cells() const {
    return static_cast<uint64_t>(cols_) * static_cast<uint64_t>(rows_);
  }
  const Box& extent() const { return extent_; }

  /// Cell index for a point inside the extent (clamped on the edges).
  /// The compare-guarded float->int conversion keeps NaN and far-out
  /// coordinates defined (they clamp to cell 0 / the last cell) instead of
  /// hitting an out-of-range cast.
  uint64_t CellOf(double x, double y) const {
    const double fx = (x - extent_.min_x) * inv_cell_w_;
    const double fy = (y - extent_.min_y) * inv_cell_h_;
    const int64_t cx =
        fx > 0.0
            ? (fx < static_cast<double>(cols_) ? static_cast<int64_t>(fx)
                                               : cols_ - 1)
            : 0;
    const int64_t cy =
        fy > 0.0
            ? (fy < static_cast<double>(rows_) ? static_cast<int64_t>(fy)
                                               : rows_ - 1)
            : 0;
    return static_cast<uint64_t>(cy) * cols_ + static_cast<uint64_t>(cx);
  }

  /// Batched CellOf through the SIMD kernel layer: cells[i] =
  /// CellOf(xs[i], ys[i]).
  void CellOfBatch(const double* xs, const double* ys, size_t n,
                   uint64_t* cells) const;

  /// Geometric bounds of cell `idx`.
  Box CellBox(uint64_t idx) const;

  /// Classifies every cell against geometry `g` (optionally buffered by
  /// `buffer`, for ST_DWithin refinement). Returns num_cells() entries.
  std::vector<BoxRelation> ClassifyCells(const Geometry& g,
                                         double buffer = 0.0) const;

  /// Classifies a single cell.
  BoxRelation ClassifyCell(uint64_t idx, const Geometry& g,
                           double buffer = 0.0) const {
    return ClassifyBoxGeometry(CellBox(idx), g, buffer);
  }

  /// Picks a grid resolution so the expected points per cell is roughly
  /// `target_points_per_cell`, bounded to [1, max_cells_per_axis]^2.
  static RegularGrid ForExpectedPoints(const Box& extent, uint64_t num_points,
                                       uint64_t target_points_per_cell = 256,
                                       uint32_t max_cells_per_axis = 4096);

 private:
  Box extent_;
  int64_t cols_;
  int64_t rows_;
  double inv_cell_w_;
  double inv_cell_h_;
};

}  // namespace geocol

#endif  // GEOCOL_GEOM_GRID_H_
