#include "baselines/file_store.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <numeric>

#include "geom/predicates.h"
#include "las/las_reader.h"
#include "las/las_writer.h"
#include "sfc/morton.h"
#include "util/binary_io.h"
#include "util/tempdir.h"

namespace geocol {

namespace {

constexpr char kLaxMagic[4] = {'G', 'L', 'A', 'X'};

/// Fixed byte size of the GLAS header (magic + count + 12 doubles +
/// record_length + compressed flag). Uncompressed record i starts at
/// kGlasHeaderBytes + i * kLasRecordBytes.
constexpr uint64_t kGlasHeaderBytes = 4 + 8 + 12 * 8 + 2 + 1;

struct Interval {
  uint64_t first = 0;
  uint64_t count = 0;
};

/// Per-tile lasindex sidecar: a uniform grid over the tile footprint where
/// each cell lists the file-order point intervals falling in it.
struct LaxIndex {
  uint32_t cols = 0;
  uint32_t rows = 0;
  Box footprint;
  std::vector<std::vector<Interval>> cells;
};

std::string LaxPath(const std::string& las_path) { return las_path + ".lax"; }

Status WriteLax(const LaxIndex& ix, const std::string& path) {
  BinaryWriter w;
  GEOCOL_RETURN_NOT_OK(w.Open(path));
  GEOCOL_RETURN_NOT_OK(w.WriteBytes(kLaxMagic, 4));
  GEOCOL_RETURN_NOT_OK(w.WriteScalar(ix.cols));
  GEOCOL_RETURN_NOT_OK(w.WriteScalar(ix.rows));
  GEOCOL_RETURN_NOT_OK(w.WriteScalar(ix.footprint.min_x));
  GEOCOL_RETURN_NOT_OK(w.WriteScalar(ix.footprint.min_y));
  GEOCOL_RETURN_NOT_OK(w.WriteScalar(ix.footprint.max_x));
  GEOCOL_RETURN_NOT_OK(w.WriteScalar(ix.footprint.max_y));
  for (const auto& cell : ix.cells) {
    GEOCOL_RETURN_NOT_OK(
        w.WriteScalar<uint32_t>(static_cast<uint32_t>(cell.size())));
    for (const Interval& iv : cell) {
      GEOCOL_RETURN_NOT_OK(w.WriteScalar(iv.first));
      GEOCOL_RETURN_NOT_OK(w.WriteScalar(iv.count));
    }
  }
  return w.Close();
}

Result<LaxIndex> ReadLax(const std::string& path) {
  BinaryReader r;
  GEOCOL_RETURN_NOT_OK(r.Open(path));
  char magic[4];
  GEOCOL_RETURN_NOT_OK(r.ReadBytes(magic, 4));
  if (std::memcmp(magic, kLaxMagic, 4) != 0) {
    return Status::Corruption("bad .lax magic: " + path);
  }
  LaxIndex ix;
  GEOCOL_RETURN_NOT_OK(r.ReadScalar(&ix.cols));
  GEOCOL_RETURN_NOT_OK(r.ReadScalar(&ix.rows));
  if (ix.cols == 0 || ix.rows == 0 || ix.cols > 4096 || ix.rows > 4096) {
    return Status::Corruption("implausible .lax grid");
  }
  GEOCOL_RETURN_NOT_OK(r.ReadScalar(&ix.footprint.min_x));
  GEOCOL_RETURN_NOT_OK(r.ReadScalar(&ix.footprint.min_y));
  GEOCOL_RETURN_NOT_OK(r.ReadScalar(&ix.footprint.max_x));
  GEOCOL_RETURN_NOT_OK(r.ReadScalar(&ix.footprint.max_y));
  ix.cells.resize(static_cast<size_t>(ix.cols) * ix.rows);
  for (auto& cell : ix.cells) {
    uint32_t n = 0;
    GEOCOL_RETURN_NOT_OK(r.ReadScalar(&n));
    cell.resize(n);
    for (Interval& iv : cell) {
      GEOCOL_RETURN_NOT_OK(r.ReadScalar(&iv.first));
      GEOCOL_RETURN_NOT_OK(r.ReadScalar(&iv.count));
    }
  }
  return ix;
}

uint64_t CellOf(const LaxIndex& ix, double x, double y) {
  double w = std::max(ix.footprint.width(), 1e-9);
  double h = std::max(ix.footprint.height(), 1e-9);
  int64_t cx = static_cast<int64_t>((x - ix.footprint.min_x) / w * ix.cols);
  int64_t cy = static_cast<int64_t>((y - ix.footprint.min_y) / h * ix.rows);
  cx = std::clamp<int64_t>(cx, 0, ix.cols - 1);
  cy = std::clamp<int64_t>(cy, 0, ix.rows - 1);
  return static_cast<uint64_t>(cy) * ix.cols + cx;
}

Box CellBox(const LaxIndex& ix, uint64_t cell) {
  uint64_t cy = cell / ix.cols, cx = cell % ix.cols;
  double w = ix.footprint.width() / ix.cols;
  double h = ix.footprint.height() / ix.rows;
  return Box(ix.footprint.min_x + cx * w, ix.footprint.min_y + cy * h,
             ix.footprint.min_x + (cx + 1) * w,
             ix.footprint.min_y + (cy + 1) * h);
}

}  // namespace

Result<FileStore> FileStore::Open(const std::string& dir, Options options) {
  FileStore store;
  store.dir_ = dir;
  store.options_ = options;
  GEOCOL_RETURN_NOT_OK(ListFiles(dir, ".las", &store.files_));
  GEOCOL_RETURN_NOT_OK(ListFiles(dir, ".laz", &store.files_));
  if (store.files_.empty()) {
    return Status::NotFound("no .las/.laz files under " + dir);
  }
  std::sort(store.files_.begin(), store.files_.end());
  return store;
}

Result<uint64_t> FileStore::BuildIndexes() const {
  uint64_t bytes = 0;
  for (const std::string& path : files_) {
    GEOCOL_ASSIGN_OR_RETURN(LasTile tile, ReadLasFile(path));
    LaxIndex ix;
    ix.cols = ix.rows = options_.index_cells_per_axis;
    ix.footprint = tile.header.Footprint();
    ix.cells.assign(static_cast<size_t>(ix.cols) * ix.rows, {});
    // Consecutive points in the same cell coalesce into one interval —
    // after lassort almost everything coalesces, before it little does,
    // which is exactly the lasindex/lassort interplay LAStools documents.
    for (uint64_t i = 0; i < tile.points.size(); ++i) {
      uint64_t cell = CellOf(ix, tile.WorldX(tile.points[i]),
                             tile.WorldY(tile.points[i]));
      auto& ivs = ix.cells[cell];
      if (!ivs.empty() && ivs.back().first + ivs.back().count == i) {
        ++ivs.back().count;
      } else {
        ivs.push_back({i, 1});
      }
    }
    GEOCOL_RETURN_NOT_OK(WriteLax(ix, LaxPath(path)));
    GEOCOL_ASSIGN_OR_RETURN(uint64_t sz, FileSizeBytes(LaxPath(path)));
    bytes += sz;
  }
  return bytes;
}

Status FileStore::QueryFile(const std::string& path, const Geometry& geometry,
                            double buffer, const Box& env,
                            std::vector<PointXYZ>* out,
                            QueryStats* stats) const {
  auto test_point = [&](const LasTile& shim, const LasPointRecord& rec) {
    Point p{shim.WorldX(rec), shim.WorldY(rec)};
    if (!env.Contains(p)) return;
    ++stats->exact_tests;
    bool hit = buffer > 0 ? GeometryDWithin(geometry, p, buffer)
                          : GeometryContainsPoint(geometry, p);
    if (hit) out->push_back({p.x, p.y, shim.WorldZ(rec)});
  };

  GEOCOL_ASSIGN_OR_RETURN(LasHeader header, ReadLasHeader(path));
  std::string lax_path = LaxPath(path);
  bool indexed = options_.use_index && PathExists(lax_path);

  if (indexed && header.compressed == 0) {
    // Indexed access on an uncompressed tile: read only the intervals of
    // cells overlapping the query envelope.
    GEOCOL_ASSIGN_OR_RETURN(LaxIndex ix, ReadLax(lax_path));
    std::vector<Interval> todo;
    for (uint64_t c = 0; c < ix.cells.size(); ++c) {
      if (ix.cells[c].empty()) continue;
      if (!CellBox(ix, c).Intersects(env)) continue;
      todo.insert(todo.end(), ix.cells[c].begin(), ix.cells[c].end());
    }
    if (todo.empty()) return Status::OK();
    ++stats->files_opened;
    std::sort(todo.begin(), todo.end(),
              [](const Interval& a, const Interval& b) {
                return a.first < b.first;
              });
    LasTile shim;
    shim.header = header;
    BinaryReader r;
    GEOCOL_RETURN_NOT_OK(r.Open(path));
    std::vector<uint8_t> buf;
    uint64_t next_unread = 0;  // merge touching/overlapping intervals
    for (size_t i = 0; i < todo.size(); ++i) {
      uint64_t first = std::max(todo[i].first, next_unread);
      uint64_t last = todo[i].first + todo[i].count;
      if (first >= last) continue;
      next_unread = last;
      GEOCOL_RETURN_NOT_OK(r.Seek(kGlasHeaderBytes + first * kLasRecordBytes));
      buf.resize((last - first) * kLasRecordBytes);
      GEOCOL_RETURN_NOT_OK(r.ReadBytes(buf.data(), buf.size()));
      stats->points_read += last - first;
      LasPointRecord rec;
      for (uint64_t j = 0; j < last - first; ++j) {
        DeserializeRecord(buf.data() + j * kLasRecordBytes, &rec);
        test_point(shim, rec);
      }
    }
    return Status::OK();
  }

  // Unindexed (or compressed) tile: read everything.
  ++stats->files_opened;
  GEOCOL_ASSIGN_OR_RETURN(LasTile tile, ReadLasFile(path));
  stats->points_read += tile.points.size();
  if (indexed) {
    // Compressed + indexed: the whole tile must be decompressed, but the
    // index still prunes the exact tests to overlapping cells.
    GEOCOL_ASSIGN_OR_RETURN(LaxIndex ix, ReadLax(lax_path));
    for (uint64_t c = 0; c < ix.cells.size(); ++c) {
      if (ix.cells[c].empty() || !CellBox(ix, c).Intersects(env)) continue;
      for (const Interval& iv : ix.cells[c]) {
        for (uint64_t i = iv.first; i < iv.first + iv.count; ++i) {
          test_point(tile, tile.points[i]);
        }
      }
    }
  } else {
    for (const LasPointRecord& rec : tile.points) test_point(tile, rec);
  }
  return Status::OK();
}

Result<std::vector<PointXYZ>> FileStore::QueryGeometry(
    const Geometry& geometry, double buffer, QueryStats* stats) const {
  QueryStats local;
  local.files_total = files_.size();
  Box env = geometry.Envelope();
  if (buffer > 0) env = env.Expanded(buffer);

  std::vector<PointXYZ> out;
  for (const std::string& path : files_) {
    // Header inspection — unavoidable per file, the very cost §2.2 calls
    // out for 60k-file archives.
    ++local.headers_inspected;
    GEOCOL_ASSIGN_OR_RETURN(LasHeader header, ReadLasHeader(path));
    if (!header.Footprint().Intersects(env)) continue;
    GEOCOL_RETURN_NOT_OK(
        QueryFile(path, geometry, buffer, env, &out, &local));
  }
  local.results = out.size();
  if (stats != nullptr) *stats = local;
  return out;
}

Status FileStore::SortTiles(const std::string& dir) {
  std::vector<std::string> files;
  GEOCOL_RETURN_NOT_OK(ListFiles(dir, ".las", &files));
  GEOCOL_RETURN_NOT_OK(ListFiles(dir, ".laz", &files));
  for (const std::string& path : files) {
    GEOCOL_ASSIGN_OR_RETURN(LasTile tile, ReadLasFile(path));
    Box fp = tile.header.Footprint();
    std::vector<uint64_t> codes(tile.points.size());
    for (size_t i = 0; i < tile.points.size(); ++i) {
      codes[i] = MortonEncodeScaled(tile.WorldX(tile.points[i]),
                                    tile.WorldY(tile.points[i]), fp);
    }
    std::vector<uint32_t> perm(tile.points.size());
    std::iota(perm.begin(), perm.end(), 0);
    std::sort(perm.begin(), perm.end(),
              [&](uint32_t a, uint32_t b) { return codes[a] < codes[b]; });
    std::vector<LasPointRecord> sorted(tile.points.size());
    for (size_t i = 0; i < perm.size(); ++i) sorted[i] = tile.points[perm[i]];
    tile.points = std::move(sorted);
    bool laz = tile.header.compressed != 0;
    GEOCOL_RETURN_NOT_OK(laz ? WriteLazFile(tile, path)
                             : WriteLasFile(tile, path));
    // Point order changed: any sidecar index is now stale.
    std::remove(LaxPath(path).c_str());
  }
  return Status::OK();
}

}  // namespace geocol
