// E11: SIMD kernel throughput by dispatch level. Runs the four vectorized
// hot loops — range-compare selection, batched coordinate gather, grid-cell
// assignment and batched point-in-polygon — at every dispatch level the CPU
// supports (scalar -> sse2 -> avx2) on cache-hot inputs, single core, and
// reports throughput plus speedup over the scalar reference. Every level
// must produce bit-identical outputs; the harness cross-checks a digest of
// each kernel's result against the scalar run before reporting.
#include <cstring>
#include <numeric>

#include "bench/bench_common.h"
#include "geom/grid.h"
#include "geom/predicates.h"
#include "simd/kernels.h"
#include "util/rng.h"

using namespace geocol;

namespace {

constexpr size_t kValues = 1 << 16;  // cache-hot working set per iteration
constexpr int kInnerReps = 64;       // iterations per timed sample

uint64_t Digest(const void* p, size_t bytes) {
  const uint8_t* b = static_cast<const uint8_t*>(p);
  uint64_t h = 1469598103934665603ull;
  for (size_t i = 0; i < bytes; ++i) h = (h ^ b[i]) * 1099511628211ull;
  return h;
}

struct KernelRun {
  const char* kernel;
  double ms = 0.0;
  double mvals = 0.0;   // million values (or points) per second
  uint64_t digest = 0;  // parity cross-check between levels
};

Ring MakeRing(size_t vertices, double cx, double cy, double r, Rng& rng) {
  Ring ring;
  for (size_t i = 0; i < vertices; ++i) {
    double a = 2.0 * M_PI * static_cast<double>(i) / vertices;
    double rr = r * (0.6 + 0.4 * rng.UniformDouble(0.0, 1.0));
    ring.points.push_back({cx + rr * std::cos(a), cy + rr * std::sin(a)});
  }
  return ring;
}

std::vector<KernelRun> RunLevel(const std::vector<double>& vals,
                                const std::vector<double>& xs,
                                const std::vector<double>& ys,
                                const std::vector<uint64_t>& rows,
                                const RegularGrid& grid, const Geometry& poly) {
  std::vector<KernelRun> out;
  const size_t n = vals.size();

  {  // branch-free range compare -> selection words
    std::vector<uint64_t> words((n + 63) / 64);
    uint64_t selected = 0;
    double ms = bench::TimeMs([&] {
      for (int i = 0; i < kInnerReps; ++i) {
        selected = simd::RangeSelectBits(vals.data(), n, -0.5, 0.5,
                                         words.data());
      }
    });
    KernelRun r{"range_f64"};
    r.ms = ms;
    r.mvals = (static_cast<double>(n) * kInnerReps) / (ms * 1e3);
    r.digest = Digest(words.data(), words.size() * 8) ^ selected;
    out.push_back(r);
  }

  {  // batched coordinate gather
    std::vector<double> gathered(n);
    double ms = bench::TimeMs([&] {
      for (int i = 0; i < kInnerReps; ++i) {
        simd::GatherDouble(vals.data(), rows.data(), n, gathered.data());
      }
    });
    KernelRun r{"gather_f64"};
    r.ms = ms;
    r.mvals = (static_cast<double>(n) * kInnerReps) / (ms * 1e3);
    r.digest = Digest(gathered.data(), gathered.size() * 8);
    out.push_back(r);
  }

  {  // grid cell assignment
    std::vector<uint64_t> cells(n);
    double ms = bench::TimeMs([&] {
      for (int i = 0; i < kInnerReps; ++i) {
        grid.CellOfBatch(xs.data(), ys.data(), n, cells.data());
      }
    });
    KernelRun r{"cell_of"};
    r.ms = ms;
    r.mvals = (static_cast<double>(n) * kInnerReps) / (ms * 1e3);
    r.digest = Digest(cells.data(), cells.size() * 8);
    out.push_back(r);
  }

  {  // batched point-in-polygon (crossing-number over a 64-vertex ring)
    const size_t pip_n = n / 8;  // edges x points keeps the sample ~equal work
    std::vector<uint8_t> inside(pip_n);
    double ms = bench::TimeMs([&] {
      for (int i = 0; i < kInnerReps / 8; ++i) {
        GeometryContainsPointBatch(poly, xs.data(), ys.data(), pip_n,
                                   inside.data());
      }
    });
    KernelRun r{"point_in_polygon"};
    r.ms = ms;
    r.mvals = (static_cast<double>(pip_n) * (kInnerReps / 8)) / (ms * 1e3);
    r.digest = Digest(inside.data(), inside.size());
    out.push_back(r);
  }

  {  // batched point-segment distance (ST_DWithin inner loop)
    const size_t d_n = n / 8;
    std::vector<uint8_t> within(d_n);
    double ms = bench::TimeMs([&] {
      for (int i = 0; i < kInnerReps / 8; ++i) {
        GeometryDWithinBatch(poly, 25.0, xs.data(), ys.data(), d_n,
                             within.data());
      }
    });
    KernelRun r{"dwithin"};
    r.ms = ms;
    r.mvals = (static_cast<double>(d_n) * (kInnerReps / 8)) / (ms * 1e3);
    r.digest = Digest(within.data(), within.size());
    out.push_back(r);
  }

  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bench::InitBench(argc, argv);
  bench::Banner("E11",
                "SIMD kernel throughput by dispatch level (scalar/sse2/avx2),"
                " single core, cache-hot; outputs cross-checked bit-identical");

  Rng rng(20150831);
  std::vector<double> vals(kValues);
  for (double& v : vals) v = rng.UniformDouble(-2.0, 2.0);
  std::vector<double> xs(kValues), ys(kValues);
  for (size_t i = 0; i < kValues; ++i) {
    xs[i] = rng.UniformDouble(0.0, 1000.0);
    ys[i] = rng.UniformDouble(0.0, 1000.0);
  }
  // Shuffled gather indices: refinement gathers candidates in row order,
  // but a shuffle keeps the benchmark honest about latency hiding.
  std::vector<uint64_t> rows(kValues);
  std::iota(rows.begin(), rows.end(), 0);
  for (size_t i = kValues - 1; i > 0; --i) {
    std::swap(rows[i], rows[rng.Uniform(i + 1)]);
  }
  RegularGrid grid(Box(0, 0, 1000, 1000), 512, 512);
  Polygon poly;
  poly.shell = MakeRing(64, 500.0, 500.0, 420.0, rng);
  Geometry geom(poly);

  const simd::SimdLevel max_level = simd::MaxSupportedSimdLevel();
  bench::TablePrinter table(
      {"kernel", "level", "ms", "Mvals_per_s", "speedup_vs_scalar"});
  std::vector<KernelRun> scalar_runs;
  bool parity_ok = true;
  for (int lv = 0; lv <= static_cast<int>(max_level); ++lv) {
    const simd::SimdLevel want = static_cast<simd::SimdLevel>(lv);
    if (simd::SetSimdLevel(want) != want) continue;
    std::vector<KernelRun> runs = RunLevel(vals, xs, ys, rows, grid, geom);
    if (want == simd::SimdLevel::kScalar) scalar_runs = runs;
    for (size_t i = 0; i < runs.size(); ++i) {
      const KernelRun& r = runs[i];
      double speedup =
          scalar_runs.empty() ? 1.0 : scalar_runs[i].ms / std::max(r.ms, 1e-9);
      table.Row({r.kernel, simd::SimdLevelName(want),
                 bench::TablePrinter::Num(r.ms, 3),
                 bench::TablePrinter::Num(r.mvals, 1),
                 bench::TablePrinter::Num(speedup, 2)});
      if (!scalar_runs.empty() && r.digest != scalar_runs[i].digest) {
        std::fprintf(stderr, "PARITY MISMATCH: %s at %s\n", r.kernel,
                     simd::SimdLevelName(want));
        parity_ok = false;
      }
    }
  }
  simd::SetSimdLevel(max_level);
  std::printf("\nparity: %s\n", parity_ok ? "all levels bit-identical"
                                          : "MISMATCH (see stderr)");
  return parity_ok ? 0 : 1;
}
