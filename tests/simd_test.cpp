// Parity suite of the SIMD kernel layer: every kernel, at every dispatch
// level the CPU supports, must be bit-identical to the scalar reference —
// same selection words, same gathered values, same cell ids, same masks,
// same FP distances (NaN payloads included, compared by bit pattern).
// Inputs are adversarial: NaN, +-Inf, +-0, denormals, values exactly on
// range/cell/edge boundaries, and every lane-remainder length.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "core/imprint_scan.h"
#include "core/refinement.h"
#include "geom/grid.h"
#include "geom/predicates.h"
#include "simd/kernels_generic.h"
#include "util/rng.h"

namespace geocol {
namespace {

using simd::SimdLevel;

// Restores the startup dispatch level when a test exits.
class LevelGuard {
 public:
  LevelGuard() : saved_(simd::ActiveSimdLevel()) {}
  ~LevelGuard() { simd::SetSimdLevel(saved_); }

 private:
  SimdLevel saved_;
};

// Runs `fn(level)` at every dispatch level this machine supports.
template <typename Fn>
void ForEachLevel(Fn&& fn) {
  LevelGuard guard;
  for (int lv = 0; lv <= static_cast<int>(SimdLevel::kAvx2); ++lv) {
    const SimdLevel want = static_cast<SimdLevel>(lv);
    if (simd::SetSimdLevel(want) != want) continue;  // not supported here
    fn(want);
  }
}

const char* Name(SimdLevel l) { return simd::SimdLevelName(l); }

// The remainder lengths that exercise every tail path of 2/4/8/16/32-lane
// kernels plus whole-word and cross-word cases.
const size_t kLengths[] = {0, 1, 2, 3,  4,  5,   6,   7,   8,
                           9, 63, 64, 65, 127, 128, 200, 1000};

template <typename T>
std::vector<T> AdversarialValues(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<T> v(n);
  for (size_t i = 0; i < n; ++i) {
    if constexpr (std::is_floating_point_v<T>) {
      switch (rng.Uniform(12)) {
        case 0: v[i] = std::numeric_limits<T>::quiet_NaN(); break;
        case 1: v[i] = std::numeric_limits<T>::infinity(); break;
        case 2: v[i] = -std::numeric_limits<T>::infinity(); break;
        case 3: v[i] = T(0.0); break;
        case 4: v[i] = T(-0.0); break;
        case 5: v[i] = std::numeric_limits<T>::denorm_min(); break;
        case 6: v[i] = -std::numeric_limits<T>::denorm_min(); break;
        case 7: v[i] = T(-1.0); break;  // exact range boundary below
        case 8: v[i] = T(1.0); break;   // exact range boundary below
        default: v[i] = static_cast<T>(rng.UniformDouble(-3.0, 3.0)); break;
      }
    } else {
      switch (rng.Uniform(8)) {
        case 0: v[i] = std::numeric_limits<T>::min(); break;
        case 1: v[i] = std::numeric_limits<T>::max(); break;
        case 2: v[i] = T(0); break;
        case 3: v[i] = T(10); break;  // exact boundary of the test ranges
        case 4: v[i] = T(90); break;  // exact boundary of the test ranges
        default:
          v[i] = static_cast<T>(rng.Uniform(200));
          break;
      }
    }
  }
  return v;
}

template <typename T>
void CheckRangeParity(T lo, T hi, uint64_t seed) {
  for (size_t n : kLengths) {
    std::vector<T> vals = AdversarialValues<T>(n, seed + n);
    const size_t nwords = (n + 63) / 64;
    std::vector<uint64_t> want(nwords + 1, 0xABABABABABABABABull);
    const uint64_t want_sel = simd::generic::RangeSelectBits(
        vals.data(), n, lo, hi, want.data());
    ForEachLevel([&](SimdLevel level) {
      std::vector<uint64_t> got(nwords + 1, 0xABABABABABABABABull);
      const uint64_t got_sel =
          simd::RangeSelectBits(vals.data(), n, lo, hi, got.data());
      EXPECT_EQ(got_sel, want_sel) << Name(level) << " n=" << n;
      for (size_t w = 0; w < nwords; ++w) {
        EXPECT_EQ(got[w], want[w]) << Name(level) << " n=" << n << " word " << w;
      }
      // One-past-the-end word untouched.
      EXPECT_EQ(got[nwords], 0xABABABABABABABABull) << Name(level) << " n=" << n;
    });
  }
}

TEST(SimdRange, Int8) { CheckRangeParity<int8_t>(10, 90, 1); }
TEST(SimdRange, UInt8) { CheckRangeParity<uint8_t>(10, 90, 2); }
TEST(SimdRange, Int16) { CheckRangeParity<int16_t>(10, 90, 3); }
TEST(SimdRange, UInt16) { CheckRangeParity<uint16_t>(10, 90, 4); }
TEST(SimdRange, Int32) { CheckRangeParity<int32_t>(10, 90, 5); }
TEST(SimdRange, UInt32) { CheckRangeParity<uint32_t>(10, 90, 6); }
TEST(SimdRange, Int64) { CheckRangeParity<int64_t>(10, 90, 7); }
TEST(SimdRange, UInt64) { CheckRangeParity<uint64_t>(10, 90, 8); }
TEST(SimdRange, Float32) { CheckRangeParity<float>(-1.0f, 1.0f, 9); }
TEST(SimdRange, Float64) { CheckRangeParity<double>(-1.0, 1.0, 10); }

TEST(SimdRange, ExtremeSignedBounds) {
  CheckRangeParity<int8_t>(std::numeric_limits<int8_t>::min(),
                           std::numeric_limits<int8_t>::max(), 11);
  CheckRangeParity<int64_t>(std::numeric_limits<int64_t>::min(), -1, 12);
  CheckRangeParity<uint64_t>(1ull << 63, std::numeric_limits<uint64_t>::max(),
                             13);
}

TEST(SimdRange, NaNBoundsSelectNothing) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  std::vector<double> vals = AdversarialValues<double>(200, 14);
  ForEachLevel([&](SimdLevel level) {
    std::vector<uint64_t> words((vals.size() + 63) / 64);
    EXPECT_EQ(simd::RangeSelectBits(vals.data(), vals.size(), nan, nan,
                                    words.data()),
              0u)
        << Name(level);
    for (uint64_t w : words) EXPECT_EQ(w, 0u) << Name(level);
  });
}

template <typename T>
void CheckGatherParity(uint64_t seed) {
  Rng rng(seed);
  std::vector<T> base = AdversarialValues<T>(4096, seed);
  for (size_t n : kLengths) {
    std::vector<uint64_t> rows(n);
    for (auto& r : rows) r = rng.Uniform(base.size());
    std::vector<double> want(n + 1, -123.0), got(n + 1, -123.0);
    simd::generic::GatherDouble(base.data(), rows.data(), n, want.data());
    ForEachLevel([&](SimdLevel level) {
      std::fill(got.begin(), got.end(), -123.0);
      simd::GatherDouble(base.data(), rows.data(), n, got.data());
      EXPECT_EQ(std::memcmp(got.data(), want.data(), (n + 1) * sizeof(double)),
                0)
          << Name(level) << " n=" << n;
    });
  }
}

TEST(SimdGather, Int8) { CheckGatherParity<int8_t>(21); }
TEST(SimdGather, UInt16) { CheckGatherParity<uint16_t>(22); }
TEST(SimdGather, Int32) { CheckGatherParity<int32_t>(23); }
TEST(SimdGather, UInt32) { CheckGatherParity<uint32_t>(24); }
TEST(SimdGather, Int64) { CheckGatherParity<int64_t>(25); }
TEST(SimdGather, Float32) { CheckGatherParity<float>(26); }
TEST(SimdGather, Float64) { CheckGatherParity<double>(27); }

std::vector<double> AdversarialCoords(size_t n, uint64_t seed, double lo,
                                      double hi) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (size_t i = 0; i < n; ++i) {
    switch (rng.Uniform(10)) {
      case 0: v[i] = std::numeric_limits<double>::quiet_NaN(); break;
      case 1: v[i] = std::numeric_limits<double>::infinity(); break;
      case 2: v[i] = -std::numeric_limits<double>::infinity(); break;
      case 3: v[i] = lo; break;  // exactly on the extent edge
      case 4: v[i] = hi; break;
      case 5: v[i] = lo - 1e9; break;
      case 6: v[i] = hi + 1e9; break;
      default: v[i] = rng.UniformDouble(lo - 1.0, hi + 1.0); break;
    }
  }
  return v;
}

TEST(SimdCellOf, MatchesScalarCellOf) {
  RegularGrid grid(Box(0.0, -5.0, 100.0, 45.0), 37, 53);
  for (size_t n : kLengths) {
    std::vector<double> xs = AdversarialCoords(n, 31 + n, 0.0, 100.0);
    std::vector<double> ys = AdversarialCoords(n, 32 + n, -5.0, 45.0);
    ForEachLevel([&](SimdLevel level) {
      std::vector<uint64_t> cells(n + 1, ~uint64_t{0});
      grid.CellOfBatch(xs.data(), ys.data(), n, cells.data());
      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(cells[i], grid.CellOf(xs[i], ys[i]))
            << Name(level) << " i=" << i << " p=(" << xs[i] << "," << ys[i]
            << ")";
      }
      EXPECT_EQ(cells[n], ~uint64_t{0}) << Name(level);
    });
  }
}

TEST(SimdCellOf, EdgeClampingAtMaxResolution) {
  RegularGrid grid(Box(0.0, 0.0, 1.0, 1.0), 4096, 4096);
  const double eps = std::nextafter(1.0, 2.0);
  std::vector<double> xs = {0.0, 1.0, eps, -0.0, 0.5, 1e308,
                            std::numeric_limits<double>::quiet_NaN()};
  std::vector<double> ys = xs;
  ForEachLevel([&](SimdLevel level) {
    std::vector<uint64_t> cells(xs.size());
    grid.CellOfBatch(xs.data(), ys.data(), xs.size(), cells.data());
    for (size_t i = 0; i < xs.size(); ++i) {
      EXPECT_EQ(cells[i], grid.CellOf(xs[i], ys[i])) << Name(level) << " " << i;
      EXPECT_LT(cells[i], grid.num_cells()) << Name(level) << " " << i;
    }
  });
}

Ring MakeStar(size_t spikes, double cx, double cy, double r) {
  Ring ring;
  for (size_t i = 0; i < 2 * spikes; ++i) {
    double a = M_PI * static_cast<double>(i) / spikes;
    double rr = (i % 2 == 0) ? r : r * 0.4;
    ring.points.push_back({cx + rr * std::cos(a), cy + rr * std::sin(a)});
  }
  return ring;
}

// Points likely to hit ring vertices, edge midpoints and horizontal-ray
// degeneracies exactly, plus NaN/Inf.
std::vector<Point> AdversarialPoints(const Ring& ring, size_t n,
                                     uint64_t seed) {
  Rng rng(seed);
  std::vector<Point> pts(n);
  const size_t nr = ring.points.size();
  for (size_t i = 0; i < n; ++i) {
    switch (rng.Uniform(8)) {
      case 0: pts[i] = ring.points[rng.Uniform(nr)]; break;  // exact vertex
      case 1: {  // exact edge midpoint
        size_t e = rng.Uniform(nr);
        const Point& a = ring.points[e];
        const Point& b = ring.points[(e + 1) % nr];
        pts[i] = {(a.x + b.x) / 2, (a.y + b.y) / 2};
        break;
      }
      case 2: {  // same y as a vertex: horizontal-ray degeneracy
        pts[i] = {rng.UniformDouble(-12, 12), ring.points[rng.Uniform(nr)].y};
        break;
      }
      case 3:
        pts[i] = {std::numeric_limits<double>::quiet_NaN(),
                  rng.UniformDouble(-12, 12)};
        break;
      case 4:
        pts[i] = {rng.UniformDouble(-12, 12),
                  std::numeric_limits<double>::infinity()};
        break;
      default:
        pts[i] = {rng.UniformDouble(-12, 12), rng.UniformDouble(-12, 12)};
        break;
    }
  }
  return pts;
}

TEST(SimdRingMasks, MatchesPointInRing) {
  Ring ring = MakeStar(9, 0.0, 0.0, 10.0);
  for (size_t n : kLengths) {
    std::vector<Point> pts = AdversarialPoints(ring, n, 41 + n);
    std::vector<double> xs(n), ys(n);
    for (size_t i = 0; i < n; ++i) {
      xs[i] = pts[i].x;
      ys[i] = pts[i].y;
    }
    ForEachLevel([&](SimdLevel level) {
      std::vector<uint8_t> in(n + 1, 0xCC), edge(n + 1, 0xCC);
      simd::Kernels().ring_masks(xs.data(), ys.data(), n, ring.points.data(),
                                 ring.points.size(), in.data(), edge.data());
      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(in[i] != 0, PointInRing(pts[i], ring))
            << Name(level) << " i=" << i;
      }
      EXPECT_EQ(in[n], 0xCC) << Name(level);
      EXPECT_EQ(edge[n], 0xCC) << Name(level);
    });
  }
}

TEST(SimdRingMasks, DegenerateRings) {
  Ring tiny;  // < 3 points: nothing is inside
  tiny.points = {{0, 0}, {1, 1}};
  std::vector<double> xs = {0.0, 0.5, 2.0}, ys = {0.0, 0.5, 2.0};
  ForEachLevel([&](SimdLevel level) {
    std::vector<uint8_t> in(3, 0xCC), edge(3, 0xCC);
    simd::Kernels().ring_masks(xs.data(), ys.data(), 3, tiny.points.data(),
                               tiny.points.size(), in.data(), edge.data());
    for (size_t i = 0; i < 3; ++i) {
      EXPECT_EQ(in[i], 0) << Name(level);
      EXPECT_EQ(edge[i], 0) << Name(level);
    }
  });
}

TEST(SimdPredicates, PointInPolygonBatchWithHoles) {
  Polygon poly;
  poly.shell = MakeStar(8, 0.0, 0.0, 10.0);
  Ring hole;
  hole.points = {{-2, -2}, {2, -2}, {2, 2}, {-2, 2}};
  poly.holes.push_back(hole);
  for (size_t n : kLengths) {
    std::vector<Point> pts = AdversarialPoints(poly.shell, n, 51 + n);
    // Mix in points exactly on the hole boundary (they stay inside).
    for (size_t i = 0; i + 4 < n; i += 5) pts[i] = {2.0, 0.0};
    std::vector<double> xs(n), ys(n);
    for (size_t i = 0; i < n; ++i) {
      xs[i] = pts[i].x;
      ys[i] = pts[i].y;
    }
    ForEachLevel([&](SimdLevel level) {
      std::vector<uint8_t> got(n);
      PointInPolygonBatch(xs.data(), ys.data(), n, poly, got.data());
      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(got[i] != 0, PointInPolygon(pts[i], poly))
            << Name(level) << " i=" << i;
      }
    });
  }
}

TEST(SimdPredicates, ContainsBatchAllGeometryTypes) {
  LineString line;
  line.points = {{0, 0}, {4, 4}, {8, 0}};
  Polygon poly;
  poly.shell = MakeStar(6, 0.0, 0.0, 8.0);
  MultiPolygon mp;
  mp.polygons.push_back(poly);
  Polygon poly2;
  poly2.shell.points = {{20, 20}, {30, 20}, {30, 30}, {20, 30}};
  mp.polygons.push_back(poly2);
  const Geometry geoms[] = {Geometry(Point{1.0, 2.0}),
                            Geometry(Box(0, 0, 5, 5)), Geometry(line),
                            Geometry(poly), Geometry(mp)};
  const size_t n = 257;
  std::vector<Point> pts = AdversarialPoints(poly.shell, n, 61);
  pts[0] = {1.0, 2.0};  // exact point-geometry hit
  pts[1] = {2.0, 2.0};  // exactly on the linestring
  pts[2] = {25.0, 25.0};  // inside the second multipolygon member
  std::vector<double> xs(n), ys(n);
  for (size_t i = 0; i < n; ++i) {
    xs[i] = pts[i].x;
    ys[i] = pts[i].y;
  }
  for (const Geometry& g : geoms) {
    ForEachLevel([&](SimdLevel level) {
      std::vector<uint8_t> got(n);
      GeometryContainsPointBatch(g, xs.data(), ys.data(), n, got.data());
      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(got[i] != 0, GeometryContainsPoint(g, pts[i]))
            << Name(level) << " type=" << static_cast<int>(g.type())
            << " i=" << i;
      }
    });
  }
}

TEST(SimdPredicates, DistanceBatchBitIdentical) {
  LineString line;
  line.points = {{0, 0}, {4, 4}, {8, 0}, {8, 8}};
  Polygon poly;
  poly.shell = MakeStar(7, 0.0, 0.0, 9.0);
  Ring hole;
  hole.points = {{-1, -1}, {1, -1}, {1, 1}, {-1, 1}};
  poly.holes.push_back(hole);
  MultiPolygon mp;
  mp.polygons.push_back(poly);
  const Geometry geoms[] = {Geometry(line), Geometry(poly), Geometry(mp),
                            Geometry(Box(0, 0, 5, 5)),
                            Geometry(Point{3.0, 3.0})};
  const size_t n = 130;
  std::vector<Point> pts = AdversarialPoints(poly.shell, n, 71);
  std::vector<double> xs(n), ys(n);
  for (size_t i = 0; i < n; ++i) {
    xs[i] = pts[i].x;
    ys[i] = pts[i].y;
  }
  for (const Geometry& g : geoms) {
    ForEachLevel([&](SimdLevel level) {
      std::vector<double> got(n);
      GeometryPointDistanceBatch(g, xs.data(), ys.data(), n, got.data());
      for (size_t i = 0; i < n; ++i) {
        const double want = GeometryPointDistance(g, pts[i]);
        EXPECT_EQ(std::memcmp(&got[i], &want, sizeof(double)), 0)
            << Name(level) << " type=" << static_cast<int>(g.type())
            << " i=" << i << " got=" << got[i] << " want=" << want;
      }
      std::vector<uint8_t> within(n);
      GeometryDWithinBatch(g, 2.5, xs.data(), ys.data(), n, within.data());
      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(within[i] != 0, GeometryDWithin(g, pts[i], 2.5))
            << Name(level) << " type=" << static_cast<int>(g.type())
            << " i=" << i;
      }
    });
  }
}

// ---- BitVector word-granular additions ----------------------------------

TEST(BitVectorSimd, CountInRange) {
  Rng rng(81);
  BitVector bv(1000);
  for (size_t i = 0; i < 1000; ++i) {
    if (rng.NextBool(0.3)) bv.Set(i);
  }
  const size_t ranges[][2] = {{0, 0},   {0, 1},    {0, 64},   {1, 63},
                              {63, 65}, {64, 128}, {100, 900}, {0, 1000},
                              {999, 1000}, {500, 2000}};
  for (auto [b, e] : ranges) {
    size_t want = 0;
    for (size_t i = b; i < std::min<size_t>(e, 1000); ++i) {
      want += bv.Get(i) ? 1 : 0;
    }
    EXPECT_EQ(bv.CountInRange(b, e), want) << "[" << b << "," << e << ")";
  }
  EXPECT_EQ(bv.CountInRange(0, 1000), bv.Count());
}

TEST(BitVectorSimd, OrWordsAtAlignedAndShifted) {
  for (size_t offset : {0ul, 64ul, 1ul, 7ul, 63ul, 65ul, 130ul}) {
    for (size_t nbits : {1ul, 5ul, 63ul, 64ul, 65ul, 128ul, 200ul}) {
      BitVector got(400), want(400);
      got.Set(3);  // pre-existing bits survive the OR
      want.Set(3);
      Rng rng(offset * 1000 + nbits);
      std::vector<uint64_t> words((nbits + 63) / 64, 0);
      for (size_t i = 0; i < nbits; ++i) {
        if (rng.NextBool()) {
          words[i / 64] |= uint64_t{1} << (i % 64);
          want.Set(offset + i);
        }
      }
      got.OrWordsAt(offset, words.data(), nbits);
      EXPECT_TRUE(got == want) << "offset=" << offset << " nbits=" << nbits;
    }
  }
}

// ---- end-to-end: filter and refine agree across levels ------------------

ColumnPtr MakeWalkColumn(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> vals(n);
  double walk = 0;
  for (auto& v : vals) {
    walk += rng.NextGaussian();
    v = walk;
  }
  return Column::FromVector<double>("c", vals);
}

TEST(SimdEndToEnd, ImprintSelectIdenticalAcrossLevels) {
  ColumnPtr col = MakeWalkColumn(50000, 91);
  auto ix = ImprintsIndex::Build(*col);
  ASSERT_TRUE(ix.ok());
  Rng rng(92);
  for (int q = 0; q < 10; ++q) {
    double a = rng.UniformDouble(-80, 80), b = rng.UniformDouble(-80, 80);
    double lo = std::min(a, b), hi = std::max(a, b);
    BitVector want;
    ImprintScanStats want_stats;
    {
      LevelGuard guard;
      simd::SetSimdLevel(SimdLevel::kScalar);
      ASSERT_TRUE(ImprintRangeSelect(*col, *ix, lo, hi, &want, &want_stats).ok());
    }
    ForEachLevel([&](SimdLevel level) {
      BitVector got;
      ImprintScanStats stats;
      ASSERT_TRUE(ImprintRangeSelect(*col, *ix, lo, hi, &got, &stats).ok());
      EXPECT_TRUE(got == want) << Name(level) << " q=" << q;
      EXPECT_EQ(stats.rows_selected, want_stats.rows_selected) << Name(level);
      EXPECT_EQ(stats.values_checked, want_stats.values_checked) << Name(level);
      BitVector full;
      FullScanRangeSelect(*col, lo, hi, &full);
      ASSERT_EQ(full.size(), got.size());
      EXPECT_TRUE(full == got) << Name(level) << " (full scan) q=" << q;
    });
  }
}

TEST(SimdEndToEnd, GridRefineIdenticalAcrossLevels) {
  const size_t n = 20000;
  Rng rng(101);
  std::vector<double> xs(n), ys(n);
  for (size_t i = 0; i < n; ++i) {
    xs[i] = rng.UniformDouble(-12, 12);
    ys[i] = rng.UniformDouble(-12, 12);
  }
  ColumnPtr x = Column::FromVector<double>("x", xs);
  ColumnPtr y = Column::FromVector<double>("y", ys);
  BitVector candidates(n);
  for (size_t i = 0; i < n; ++i) {
    if (rng.NextBool(0.7)) candidates.Set(i);
  }
  Polygon poly;
  poly.shell = MakeStar(11, 0.0, 0.0, 10.0);
  Geometry geom(poly);

  for (double buffer : {0.0, 1.5}) {
    std::vector<uint64_t> want;
    RefinementStats want_stats;
    {
      LevelGuard guard;
      simd::SetSimdLevel(SimdLevel::kScalar);
      RefineOptions opt;
      ASSERT_TRUE(GridRefine(*x, *y, candidates, geom, buffer, opt, &want,
                             &want_stats)
                      .ok());
    }
    ForEachLevel([&](SimdLevel level) {
      RefineOptions opt;
      std::vector<uint64_t> got;
      RefinementStats stats;
      ASSERT_TRUE(
          GridRefine(*x, *y, candidates, geom, buffer, opt, &got, &stats).ok());
      EXPECT_EQ(got, want) << Name(level) << " buffer=" << buffer;
      EXPECT_EQ(stats.accepted, want_stats.accepted) << Name(level);
      EXPECT_EQ(stats.exact_tests, want_stats.exact_tests) << Name(level);
      EXPECT_EQ(stats.cells_boundary, want_stats.cells_boundary) << Name(level);

      std::vector<uint64_t> exhaustive;
      RefineOptions no_grid;
      no_grid.use_grid = false;
      ASSERT_TRUE(GridRefine(*x, *y, candidates, geom, buffer, no_grid,
                             &exhaustive, nullptr)
                      .ok());
      EXPECT_EQ(exhaustive, want) << Name(level) << " (exhaustive)";
    });
  }
}

// ---- dispatch plumbing --------------------------------------------------

TEST(SimdDispatch, ParseAndName) {
  SimdLevel lv;
  EXPECT_TRUE(simd::ParseSimdLevel("scalar", &lv));
  EXPECT_EQ(lv, SimdLevel::kScalar);
  EXPECT_TRUE(simd::ParseSimdLevel("sse2", &lv));
  EXPECT_EQ(lv, SimdLevel::kSse2);
  EXPECT_TRUE(simd::ParseSimdLevel("avx2", &lv));
  EXPECT_EQ(lv, SimdLevel::kAvx2);
  EXPECT_FALSE(simd::ParseSimdLevel("avx512", &lv));
  EXPECT_FALSE(simd::ParseSimdLevel("", &lv));
  EXPECT_FALSE(simd::ParseSimdLevel(nullptr, &lv));
  EXPECT_STREQ(simd::SimdLevelName(SimdLevel::kScalar), "scalar");
  EXPECT_STREQ(simd::SimdLevelName(SimdLevel::kSse2), "sse2");
  EXPECT_STREQ(simd::SimdLevelName(SimdLevel::kAvx2), "avx2");
}

TEST(SimdDispatch, SetLevelClampsToHardware) {
  LevelGuard guard;
  const SimdLevel max = simd::MaxSupportedSimdLevel();
  EXPECT_EQ(simd::SetSimdLevel(SimdLevel::kAvx2),
            max >= SimdLevel::kAvx2 ? SimdLevel::kAvx2 : max);
  EXPECT_EQ(simd::SetSimdLevel(SimdLevel::kScalar), SimdLevel::kScalar);
  EXPECT_EQ(simd::ActiveSimdLevel(), SimdLevel::kScalar);
}

TEST(SimdDispatch, FeatureBitsAreConsistent) {
  const simd::CpuFeatures& f = simd::DetectCpuFeatures();
  if (simd::MaxSupportedSimdLevel() >= SimdLevel::kAvx2) {
    EXPECT_TRUE(f.avx2);
    EXPECT_TRUE(f.os_ymm);
  }
  if (simd::MaxSupportedSimdLevel() >= SimdLevel::kSse2) {
    EXPECT_TRUE(f.sse2);
  }
}

}  // namespace
}  // namespace geocol
