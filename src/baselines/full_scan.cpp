#include "baselines/full_scan.h"

#include "geom/predicates.h"

namespace geocol {

Result<std::vector<uint64_t>> FullScanSelect(const FlatTable& table,
                                             const Geometry& geometry,
                                             double buffer) {
  GEOCOL_ASSIGN_OR_RETURN(ColumnPtr xc, table.GetColumn("x"));
  GEOCOL_ASSIGN_OR_RETURN(ColumnPtr yc, table.GetColumn("y"));
  std::vector<uint64_t> out;
  Box env = geometry.Envelope();
  if (buffer > 0) env = env.Expanded(buffer);
  uint64_t n = xc->size();
  std::span<const double> xs = xc->Values<double>();
  std::span<const double> ys = yc->Values<double>();
  for (uint64_t r = 0; r < n; ++r) {
    Point p{xs[r], ys[r]};
    if (!env.Contains(p)) continue;
    bool hit = buffer > 0 ? GeometryDWithin(geometry, p, buffer)
                          : GeometryContainsPoint(geometry, p);
    if (hit) out.push_back(r);
  }
  return out;
}

Result<std::vector<uint64_t>> FullScanSelectBox(const FlatTable& table,
                                                const Box& box) {
  GEOCOL_ASSIGN_OR_RETURN(ColumnPtr xc, table.GetColumn("x"));
  GEOCOL_ASSIGN_OR_RETURN(ColumnPtr yc, table.GetColumn("y"));
  std::vector<uint64_t> out;
  std::span<const double> xs = xc->Values<double>();
  std::span<const double> ys = yc->Values<double>();
  for (uint64_t r = 0; r < xs.size(); ++r) {
    if (xs[r] >= box.min_x && xs[r] <= box.max_x && ys[r] >= box.min_y &&
        ys[r] <= box.max_y) {
      out.push_back(r);
    }
  }
  return out;
}

}  // namespace geocol
