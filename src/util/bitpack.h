// Bit-level packing primitives shared by the LAZ-like compressor and the
// column compression codecs: an LSB-first bit stream writer/reader and
// zigzag mapping for signed deltas.
#ifndef GEOCOL_UTIL_BITPACK_H_
#define GEOCOL_UTIL_BITPACK_H_

#include <algorithm>
#include <cstdint>
#include <vector>

namespace geocol {

/// Appends values of a fixed bit width to a byte vector, LSB first.
class BitWriter {
 public:
  explicit BitWriter(std::vector<uint8_t>* out) : out_(out) {}

  void Write(uint64_t value, uint32_t bits) {
    while (bits > 0) {
      uint32_t take = std::min(bits, 8 - nacc_);
      acc_ |= static_cast<uint8_t>((value & ((uint64_t{1} << take) - 1))
                                   << nacc_);
      value >>= take;
      bits -= take;
      nacc_ += take;
      if (nacc_ == 8) Flush();
    }
  }

  /// Pads the current byte with zero bits.
  void FlushByte() {
    if (nacc_ > 0) Flush();
  }

 private:
  void Flush() {
    out_->push_back(acc_);
    acc_ = 0;
    nacc_ = 0;
  }
  std::vector<uint8_t>* out_;
  uint8_t acc_ = 0;
  uint32_t nacc_ = 0;
};

/// Reads back a BitWriter stream.
class BitReader {
 public:
  BitReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  /// Returns false on stream exhaustion.
  bool Read(uint64_t* value, uint32_t bits) {
    uint64_t v = 0;
    uint32_t got = 0;
    while (got < bits) {
      if (navail_ == 0) {
        if (pos_ >= size_) return false;
        acc_ = data_[pos_++];
        navail_ = 8;
      }
      uint32_t take = std::min(bits - got, navail_);
      v |= static_cast<uint64_t>(acc_ & ((1u << take) - 1)) << got;
      acc_ >>= take;
      navail_ -= take;
      got += take;
    }
    *value = v;
    return true;
  }

  size_t pos() const { return pos_; }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  uint8_t acc_ = 0;
  uint32_t navail_ = 0;
};

/// Maps signed to unsigned so small-magnitude deltas get small codes.
inline uint64_t ZigZagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}
inline int64_t ZigZagDecode(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

/// Number of bits needed to represent v (0 for v == 0).
inline uint32_t BitsFor(uint64_t v) {
  return v == 0 ? 0 : 64 - static_cast<uint32_t>(__builtin_clzll(v));
}

}  // namespace geocol

#endif  // GEOCOL_UTIL_BITPACK_H_
