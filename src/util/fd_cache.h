// LRU cache of open read-only file descriptors for the paged column
// backend. A paged table keeps no file open between faults; every chunk
// fault asks the cache for a handle, so K shards x N columns of lazily
// opened files cost at most `capacity` descriptors instead of K*N.
//
// Handles are shared_ptr-pinned: eviction (or Invalidate) only removes the
// cache's reference, so a pread in flight on an evicted handle completes
// safely and the descriptor closes when the last pin drops. All reads are
// positioned (pread), so concurrent faults through one handle never race
// on a file offset.
//
// The `geocol_open_files` gauge tracks descriptors currently owned by the
// cache; `geocol_fd_cache_{hits,misses,evictions}_total` count traffic.
#ifndef GEOCOL_UTIL_FD_CACHE_H_
#define GEOCOL_UTIL_FD_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "util/status.h"

namespace geocol {

/// An open read-only file. Immutable after creation; safe to share across
/// threads (pread only).
class FileHandle {
 public:
  ~FileHandle();

  FileHandle(const FileHandle&) = delete;
  FileHandle& operator=(const FileHandle&) = delete;

  const std::string& path() const { return path_; }
  uint64_t size() const { return size_; }

  /// Reads exactly `n` bytes at `offset` (util/binary_io PreadExact:
  /// bounded transient retry, fault-injection hooks, Corruption on
  /// truncation).
  Status ReadAt(uint64_t offset, void* data, size_t n) const;

  /// Opens `path` read-only, outside any cache.
  static Result<std::shared_ptr<FileHandle>> Open(const std::string& path);

 private:
  FileHandle(int fd, std::string path, uint64_t size)
      : fd_(fd), path_(std::move(path)), size_(size) {}

  int fd_;
  std::string path_;
  uint64_t size_;
};

/// Process-wide LRU of FileHandles, capped at `capacity` open descriptors.
class FdCache {
 public:
  /// The default-capacity process instance (GEOCOL_MAX_OPEN_FILES, else
  /// 256) used by every paged column.
  static FdCache& Global();

  explicit FdCache(size_t capacity) : capacity_(capacity) {}

  /// Returns a handle for `path`, opening (and caching) it on a miss.
  /// The LRU entry is refreshed on every hit.
  Result<std::shared_ptr<FileHandle>> Get(const std::string& path);

  /// Drops the cached handle for `path` (outstanding pins stay valid).
  /// Callers replacing a file (new generation) use this so the next Get
  /// observes the new inode.
  void Invalidate(const std::string& path);

  /// Drops every cached handle.
  void Clear();

  void set_capacity(size_t capacity);
  size_t capacity() const;

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    size_t open_files = 0;
    size_t capacity = 0;
  };
  Stats GetStats() const;

 private:
  struct Entry {
    std::shared_ptr<FileHandle> handle;
    std::list<std::string>::iterator lru_it;
  };

  void EvictLockedIfNeeded();  // requires mu_ held
  void UpdateGauge() const;    // requires mu_ held

  mutable std::mutex mu_;
  size_t capacity_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
  std::list<std::string> lru_;  ///< front = most recently used
  std::unordered_map<std::string, Entry> entries_;
};

}  // namespace geocol

#endif  // GEOCOL_UTIL_FD_CACHE_H_
