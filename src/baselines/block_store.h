// The block-based point cloud organisation of PostgreSQL pointcloud and
// Oracle SDO_PC (§2, §2.3): points are grouped into fixed-size blocks,
// each block stores a bounding box and a compressed blob of its points,
// blocks are ordered along a space-filling curve, and a spatial index
// (R-tree over block boxes) accelerates selection. "This allows PostgreSQL
// and Oracle to reduce the space requirements [and] the access times".
#ifndef GEOCOL_BASELINES_BLOCK_STORE_H_
#define GEOCOL_BASELINES_BLOCK_STORE_H_

#include <cstdint>
#include <vector>

#include "baselines/common.h"
#include "baselines/rtree.h"
#include "geom/geometry.h"
#include "las/las_format.h"
#include "util/status.h"

namespace geocol {

/// Physical ordering of blocks (and points within the store).
enum class BlockOrder {
  kAcquisition,  ///< keep input order
  kMorton,       ///< PostgreSQL-style spatial compression friendliness
  kHilbert,      ///< Oracle SDO_PC ordering (§2.3)
};

/// Block store configuration.
struct BlockStoreOptions {
  uint32_t points_per_block = 400;  ///< pgpointcloud patch-sized
  BlockOrder order = BlockOrder::kHilbert;
  uint32_t rtree_fanout = 16;
};

/// An in-memory block store over LAS point records.
class BlockStore {
 public:
  using Options = BlockStoreOptions;

  /// Build-phase timing (E1's block-store load cost decomposition).
  struct BuildStats {
    double sort_seconds = 0.0;
    double block_seconds = 0.0;
    double compress_seconds = 0.0;
    double index_seconds = 0.0;
    double TotalSeconds() const {
      return sort_seconds + block_seconds + compress_seconds + index_seconds;
    }
  };

  struct QueryStats {
    uint64_t blocks_total = 0;
    uint64_t blocks_candidate = 0;    ///< decompressed
    uint64_t points_decompressed = 0;
    uint64_t results = 0;
  };

  /// Builds the store from point records. `header` supplies scale/offset
  /// for converting to world coordinates.
  static Result<BlockStore> Build(std::vector<LasPointRecord> points,
                                  const LasHeader& header,
                                  const Options& options = BlockStoreOptions(),
                                  BuildStats* stats = nullptr);

  uint64_t num_points() const { return num_points_; }
  uint64_t num_blocks() const { return blocks_.size(); }

  /// Points inside `geometry` (buffered when buffer > 0).
  Result<std::vector<PointXYZ>> QueryGeometry(const Geometry& geometry,
                                              double buffer = 0.0,
                                              QueryStats* stats = nullptr) const;

  /// Compressed payload bytes across blocks.
  uint64_t PayloadBytes() const;
  /// Block metadata + R-tree bytes.
  uint64_t IndexBytes() const;
  uint64_t StorageBytes() const { return PayloadBytes() + IndexBytes(); }

 private:
  struct Block {
    Box box;
    uint32_t count = 0;
    std::vector<uint8_t> payload;  ///< LazCompress'ed records
  };

  LasHeader header_;
  std::vector<Block> blocks_;
  RTree block_index_;
  uint64_t num_points_ = 0;
};

}  // namespace geocol

#endif  // GEOCOL_BASELINES_BLOCK_STORE_H_
