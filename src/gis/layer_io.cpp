#include "gis/layer_io.h"

#include <cstdio>
#include <cstring>
#include <vector>

#include "geom/wkt.h"

namespace geocol {

Status WriteLayerFile(const VectorLayer& layer, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  for (const VectorFeature& feat : layer.features()) {
    // Names may not contain tabs/newlines in this format.
    std::string safe_name = feat.name;
    for (char& c : safe_name) {
      if (c == '\t' || c == '\n' || c == '\r') c = ' ';
    }
    std::fprintf(f, "%llu\t%u\t%s\t%s\n",
                 static_cast<unsigned long long>(feat.id), feat.feature_class,
                 safe_name.c_str(), ToWkt(feat.geometry, 9).c_str());
  }
  if (std::fclose(f) != 0) return Status::IOError("close failed " + path);
  return Status::OK();
}

Result<std::shared_ptr<VectorLayer>> ReadLayerFile(const std::string& path,
                                                   const std::string& name) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return Status::IOError("cannot open " + path);

  std::string layer_name = name;
  if (layer_name.empty()) {
    size_t slash = path.find_last_of('/');
    layer_name = slash == std::string::npos ? path : path.substr(slash + 1);
    size_t dot = layer_name.find_last_of('.');
    if (dot != std::string::npos) layer_name = layer_name.substr(0, dot);
  }

  std::vector<VectorFeature> features;
  std::string line;
  char buf[1 << 16];
  uint64_t line_no = 0;
  while (std::fgets(buf, sizeof(buf), f) != nullptr) {
    ++line_no;
    line = buf;
    while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
      line.pop_back();
    }
    if (line.empty()) continue;
    // Split into exactly 4 tab-separated fields.
    size_t t1 = line.find('\t');
    size_t t2 = t1 == std::string::npos ? t1 : line.find('\t', t1 + 1);
    size_t t3 = t2 == std::string::npos ? t2 : line.find('\t', t2 + 1);
    if (t3 == std::string::npos) {
      std::fclose(f);
      return Status::Corruption("layer file: line " + std::to_string(line_no) +
                                " does not have 4 fields");
    }
    VectorFeature feat;
    char* end = nullptr;
    feat.id = std::strtoull(line.c_str(), &end, 10);
    feat.feature_class =
        static_cast<uint32_t>(std::strtoul(line.c_str() + t1 + 1, &end, 10));
    feat.name = line.substr(t2 + 1, t3 - t2 - 1);
    auto geom = ParseWkt(line.substr(t3 + 1));
    if (!geom.ok()) {
      std::fclose(f);
      return Status::Corruption("layer file: line " + std::to_string(line_no) +
                                ": " + geom.status().message());
    }
    feat.geometry = *geom;
    features.push_back(std::move(feat));
  }
  std::fclose(f);
  return VectorLayer::FromFeatures(layer_name, std::move(features));
}

}  // namespace geocol
