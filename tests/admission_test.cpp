// Admission control and overload behaviour (DESIGN.md §16): token-bucket
// unit semantics with injected time (refill rate, burst cap, per-client
// independence), queue saturation shedding typed BUSY at a bounded depth,
// per-client rate-limit fairness end to end, and recovery after a burst.
// Runs under TSan in CI — the shedding paths are exactly where admission
// state is shared across connection and worker threads.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <condition_variable>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "gis/catalog.h"
#include "pointcloud/generator.h"
#include "server/admission.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/rate_limiter.h"
#include "server/server.h"

namespace geocol {
namespace {

TEST(RateLimiterTest, RefillAndBurstWithInjectedTime) {
  server::TokenBucketLimiter limiter(/*qps=*/10, /*burst=*/2);
  int64_t now = 1'000'000'000;
  // The burst drains, then the bucket is empty.
  EXPECT_TRUE(limiter.Allow("a", now));
  EXPECT_TRUE(limiter.Allow("a", now));
  EXPECT_FALSE(limiter.Allow("a", now));
  // 100 ms at 10 qps refills exactly one token.
  now += 100'000'000;
  EXPECT_TRUE(limiter.Allow("a", now));
  EXPECT_FALSE(limiter.Allow("a", now));
  // Refill never exceeds the burst cap.
  now += 10'000'000'000;
  EXPECT_TRUE(limiter.Allow("a", now));
  EXPECT_TRUE(limiter.Allow("a", now));
  EXPECT_FALSE(limiter.Allow("a", now));
}

TEST(RateLimiterTest, ClientsAreIndependent) {
  server::TokenBucketLimiter limiter(/*qps=*/1, /*burst=*/1);
  int64_t now = 0;
  EXPECT_TRUE(limiter.Allow("a", now));
  EXPECT_FALSE(limiter.Allow("a", now));
  // Exhausting "a" must not tax "b" — fairness is per client.
  EXPECT_TRUE(limiter.Allow("b", now));
  EXPECT_FALSE(limiter.Allow("b", now));
  EXPECT_EQ(limiter.num_clients(), 2u);
}

TEST(RateLimiterTest, DisabledAndClockSkewAreSafe) {
  server::TokenBucketLimiter off(/*qps=*/0, /*burst=*/1);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(off.Allow("a", 0));
  // A clock going backwards must not mint tokens.
  server::TokenBucketLimiter limiter(/*qps=*/10, /*burst=*/1);
  EXPECT_TRUE(limiter.Allow("a", 1'000'000'000));
  EXPECT_FALSE(limiter.Allow("a", 500'000'000));
}

TEST(RateLimiterTest, BucketMapStaysBoundedUnderIdChurn) {
  // Client ids are untrusted; a flood of distinct ids must not grow the
  // bucket map without bound.
  server::TokenBucketLimiter limiter(/*qps=*/10, /*burst=*/2,
                                     /*max_clients=*/8);
  int64_t now = 0;
  for (int i = 0; i < 1000; ++i) {
    limiter.Allow("id-" + std::to_string(i), now);
    now += 1'000'000;  // 1 ms between arrivals
  }
  EXPECT_LE(limiter.num_clients(), 8u);
}

TEST(RateLimiterTest, EvictionPrefersRefilledBucketsAndKeepsDrainedState) {
  server::TokenBucketLimiter limiter(/*qps=*/10, /*burst=*/1,
                                     /*max_clients=*/2);
  int64_t now = 0;
  EXPECT_TRUE(limiter.Allow("a", now));  // "a" drained at t=0
  now += 50'000'000;                     // +50 ms: "a" is at 0.5 tokens
  EXPECT_TRUE(limiter.Allow("b", now));  // map at cap, "b" drained
  // "c" forces an eviction. No bucket has refilled to full, so the
  // stalest ("a") goes — and "b" keeps its drained state.
  EXPECT_TRUE(limiter.Allow("c", now));
  EXPECT_FALSE(limiter.Allow("b", now));
  EXPECT_LE(limiter.num_clients(), 2u);
  // Once "b" has fully refilled it is fair game for a lossless sweep:
  // a fresh id still gets its full burst.
  now += 10'000'000'000;
  EXPECT_TRUE(limiter.Allow("d", now));
  EXPECT_LE(limiter.num_clients(), 2u);
}

class AdmissionServerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    AhnGeneratorOptions opts;
    opts.extent = Box(85000, 444000, 85060, 444060);
    AhnGenerator gen(opts);
    auto table = gen.GenerateTable(4000);
    ASSERT_TRUE(table.ok());
    catalog_ = new Catalog();
    ASSERT_TRUE(catalog_->AddPointCloud("ahn2", *table).ok());
  }
  static void TearDownTestSuite() {
    delete catalog_;
    catalog_ = nullptr;
  }
  static Catalog* catalog_;
};

Catalog* AdmissionServerTest::catalog_ = nullptr;

TEST_F(AdmissionServerTest, SaturatedQueueShedsBusyAtBoundedDepth) {
  // One worker held in the hook + capacity 2: the first query occupies
  // the worker, two more fill the queue, and everything beyond that must
  // shed a typed BUSY immediately instead of stalling.
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> held{0};
  server::ServerOptions opts;
  opts.workers = 1;
  opts.queue_capacity = 2;
  opts.before_execute_hook = [&](const server::QueryTask&) {
    if (held.fetch_add(1) == 0) {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return release; });
    }
  };
  server::Server srv(catalog_, opts);
  ASSERT_TRUE(srv.Start().ok());
  const int port = srv.port();

  std::atomic<int> ok_count{0};
  auto admitted_query = [&] {
    server::Client::Options copts;
    copts.port = port;
    auto client = server::Client::Connect(copts);
    ASSERT_TRUE(client.ok());
    auto rs = client->Query("SELECT COUNT(*) FROM ahn2");
    ASSERT_TRUE(rs.ok());
    if (rs->ok) ok_count.fetch_add(1);
  };
  std::thread plug(admitted_query);
  while (held.load() == 0) std::this_thread::yield();
  std::thread q1(admitted_query);
  std::thread q2(admitted_query);
  while (srv.stats().queue_depth < 2) std::this_thread::yield();

  // The queue is full; further requests get BUSY, fast, on a live
  // connection (shedding does not kill the session).
  server::Client::Options copts;
  copts.port = port;
  auto shed_client = server::Client::Connect(copts);
  ASSERT_TRUE(shed_client.ok());
  int busy = 0;
  for (int i = 0; i < 5; ++i) {
    auto rs = shed_client->Query("SELECT COUNT(*) FROM ahn2");
    ASSERT_TRUE(rs.ok());
    ASSERT_FALSE(rs->ok);
    EXPECT_EQ(rs->error.code, server::ErrorCode::kBusy);
    ++busy;
  }
  EXPECT_EQ(busy, 5);

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  plug.join();
  q1.join();
  q2.join();

  // Recovery: once the burst drained, the same shed client is served.
  auto rs = shed_client->Query("SELECT COUNT(*) FROM ahn2");
  ASSERT_TRUE(rs.ok());
  EXPECT_TRUE(rs->ok);
  srv.Stop();

  server::ServerStats s = srv.stats();
  EXPECT_EQ(ok_count.load(), 3);
  EXPECT_EQ(s.shed_busy, 5u);
  // The admission queue never grew past its configured bound.
  EXPECT_LE(s.queue_max_depth, 2u);
  EXPECT_EQ(s.queries_ok, 4u);
}

TEST_F(AdmissionServerTest, PerClientRateLimitFairness) {
  // A glacial refill (one token per ~17 minutes) makes the pass
  // deterministic: exactly `burst` queries per client succeed, the rest
  // shed RATE_LIMITED, and one client's burn never taxes another's.
  server::ServerOptions opts;
  opts.rate_limit_qps = 0.001;
  opts.rate_limit_burst = 3;
  server::Server srv(catalog_, opts);
  ASSERT_TRUE(srv.Start().ok());
  const int port = srv.port();

  auto run_client = [&](const std::string& id, int queries, int* ok,
                        int* limited) {
    server::Client::Options copts;
    copts.port = port;
    copts.client_id = id;
    auto client = server::Client::Connect(copts);
    ASSERT_TRUE(client.ok());
    for (int i = 0; i < queries; ++i) {
      auto rs = client->Query("SELECT COUNT(*) FROM ahn2");
      ASSERT_TRUE(rs.ok());
      if (rs->ok) {
        ++*ok;
      } else {
        ASSERT_EQ(rs->error.code, server::ErrorCode::kRateLimited);
        ++*limited;
      }
    }
  };
  int ok_a = 0, limited_a = 0;
  run_client("tenant-a", 8, &ok_a, &limited_a);
  EXPECT_EQ(ok_a, 3);
  EXPECT_EQ(limited_a, 5);
  // tenant-a's exhausted bucket leaves tenant-b's budget untouched.
  int ok_b = 0, limited_b = 0;
  run_client("tenant-b", 3, &ok_b, &limited_b);
  EXPECT_EQ(ok_b, 3);
  EXPECT_EQ(limited_b, 0);

  server::ServerStats s = srv.stats();
  EXPECT_EQ(s.shed_rate_limited, 5u);
  EXPECT_EQ(s.queries_ok, 6u);
  srv.Stop();
}

TEST_F(AdmissionServerTest, ReHelloCannotResetRateLimit) {
  // The rate-limit key binds on the first HELLO: re-sending HELLO with a
  // fresh id must not mint a fresh token bucket mid-connection.
  server::ServerOptions opts;
  opts.rate_limit_qps = 0.001;  // glacial refill: deterministic
  opts.rate_limit_burst = 2;
  server::Server srv(catalog_, opts);
  ASSERT_TRUE(srv.Start().ok());

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(srv.port()));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0)
      << std::strerror(errno);

  auto hello = [&](const std::string& id) {
    std::vector<uint8_t> payload(id.begin(), id.end());
    ASSERT_TRUE(
        server::WriteFrame(fd, server::FrameType::kHello, payload).ok());
    auto reply = server::ReadFrame(fd, server::kMaxResponseFrameBytes);
    ASSERT_TRUE(reply.ok());
    EXPECT_EQ(reply->type, server::FrameType::kHelloOk);
  };
  // Returns kResult for a served query, the error code otherwise.
  auto query = [&]() -> int {
    const std::string sql = "SELECT COUNT(*) FROM ahn2";
    std::vector<uint8_t> payload(sql.begin(), sql.end());
    if (!server::WriteFrame(fd, server::FrameType::kQuery, payload).ok()) {
      return -1;
    }
    auto reply = server::ReadFrame(fd, server::kMaxResponseFrameBytes);
    if (!reply.ok()) return -1;
    if (reply->type == server::FrameType::kResult) return 0;
    auto err = server::DecodeError(reply->payload);
    if (!err.ok()) return -1;
    return static_cast<int>(err->code);
  };

  hello("evader-1");
  EXPECT_EQ(query(), 0);
  EXPECT_EQ(query(), 0);  // burst of 2 spent
  EXPECT_EQ(query(), static_cast<int>(server::ErrorCode::kRateLimited));
  // A second HELLO with a different id is acknowledged but does not
  // rebind the bucket — the connection stays rate limited.
  hello("evader-2");
  EXPECT_EQ(query(), static_cast<int>(server::ErrorCode::kRateLimited));
  ::close(fd);
  srv.Stop();
}

TEST(AdmissionQueueTest, BatchGroupExtractionPreservesFifoOrder) {
  server::AdmissionQueue queue(16);
  auto task = [](uintptr_t key, std::string sql) {
    auto t = std::make_shared<server::QueryTask>();
    t->batch_key = key;
    t->sql = std::move(sql);
    return t;
  };
  ASSERT_EQ(queue.TryPush(task(7, "a")),
            server::AdmissionQueue::Admit::kAdmitted);
  ASSERT_EQ(queue.TryPush(task(9, "b")),
            server::AdmissionQueue::Admit::kAdmitted);
  ASSERT_EQ(queue.TryPush(task(7, "c")),
            server::AdmissionQueue::Admit::kAdmitted);
  ASSERT_EQ(queue.TryPush(task(7, "d")),
            server::AdmissionQueue::Admit::kAdmitted);
  auto group = queue.ExtractBatchGroup(7, 8);
  ASSERT_EQ(group.size(), 3u);
  EXPECT_EQ(group[0]->sql, "a");
  EXPECT_EQ(group[1]->sql, "c");
  EXPECT_EQ(group[2]->sql, "d");
  // The non-matching task is untouched and still FIFO-next.
  auto rest = queue.PopBlocking();
  ASSERT_NE(rest, nullptr);
  EXPECT_EQ(rest->sql, "b");
  // max_tasks caps a group; the remainder stays queued.
  ASSERT_EQ(queue.TryPush(task(5, "e")),
            server::AdmissionQueue::Admit::kAdmitted);
  ASSERT_EQ(queue.TryPush(task(5, "f")),
            server::AdmissionQueue::Admit::kAdmitted);
  auto capped = queue.ExtractBatchGroup(5, 1);
  ASSERT_EQ(capped.size(), 1u);
  EXPECT_EQ(capped[0]->sql, "e");
  EXPECT_EQ(queue.depth(), 1u);
}

TEST(AdmissionQueueTest, CloseDrainsAdmittedTasksThenReturnsNull) {
  server::AdmissionQueue queue(4);
  auto t1 = std::make_shared<server::QueryTask>();
  auto t2 = std::make_shared<server::QueryTask>();
  ASSERT_EQ(queue.TryPush(t1), server::AdmissionQueue::Admit::kAdmitted);
  ASSERT_EQ(queue.TryPush(t2), server::AdmissionQueue::Admit::kAdmitted);
  queue.Close();
  EXPECT_EQ(queue.TryPush(std::make_shared<server::QueryTask>()),
            server::AdmissionQueue::Admit::kClosed);
  // A closed queue still hands out every admitted task before null.
  EXPECT_EQ(queue.PopBlocking(), t1);
  EXPECT_EQ(queue.PopBlocking(), t2);
  EXPECT_EQ(queue.PopBlocking(), nullptr);
}

}  // namespace
}  // namespace geocol
