// Imprint-accelerated range selection: equivalence with the full scan
// oracle, work accounting, staleness detection, and the ImprintManager's
// lazy build/rebuild behaviour.
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "core/imprint_scan.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace geocol {
namespace {

ColumnPtr MakeWalkColumn(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> vals(n);
  double walk = 0;
  for (auto& v : vals) {
    walk += rng.NextGaussian();
    v = walk;
  }
  return Column::FromVector<double>("c", vals);
}

TEST(ImprintScanTest, MatchesFullScanOracle) {
  ColumnPtr col = MakeWalkColumn(30000, 61);
  auto ix = ImprintsIndex::Build(*col);
  ASSERT_TRUE(ix.ok());
  Rng rng(62);
  for (int q = 0; q < 25; ++q) {
    double a = rng.UniformDouble(-100, 100);
    double b = rng.UniformDouble(-100, 100);
    double lo = std::min(a, b), hi = std::max(a, b);
    BitVector via_imprints, via_scan;
    ASSERT_TRUE(ImprintRangeSelect(*col, *ix, lo, hi, &via_imprints).ok());
    FullScanRangeSelect(*col, lo, hi, &via_scan);
    EXPECT_TRUE(via_imprints == via_scan) << "range [" << lo << "," << hi << "]";
  }
}

TEST(ImprintScanTest, EmptyRange) {
  ColumnPtr col = MakeWalkColumn(1000, 63);
  auto ix = ImprintsIndex::Build(*col);
  ASSERT_TRUE(ix.ok());
  BitVector rows;
  ImprintScanStats stats;
  ASSERT_TRUE(ImprintRangeSelect(*col, *ix, 5, 4, &rows, &stats).ok());
  EXPECT_EQ(rows.Count(), 0u);
  EXPECT_EQ(stats.rows_selected, 0u);
  EXPECT_EQ(stats.lines_candidate, 0u);
}

TEST(ImprintScanTest, StatsAreConsistent) {
  ColumnPtr col = MakeWalkColumn(50000, 64);
  auto ix = ImprintsIndex::Build(*col);
  ASSERT_TRUE(ix.ok());
  BitVector rows;
  ImprintScanStats stats;
  ASSERT_TRUE(ImprintRangeSelect(*col, *ix, -5, 5, &rows, &stats).ok());
  EXPECT_EQ(stats.lines_total, ix->num_lines());
  EXPECT_LE(stats.lines_full, stats.lines_candidate);
  EXPECT_EQ(stats.rows_selected, rows.Count());
  // values_checked counts only non-full candidate lines' values.
  EXPECT_LE(stats.values_checked,
            (stats.lines_candidate - stats.lines_full) * ix->values_per_line());
  EXPECT_LE(stats.TouchedFraction(), 1.0);
}

TEST(ImprintScanTest, SelectiveQueryTouchesFewLines) {
  // Clustered data + narrow range: the imprint filter must skip most of
  // the column (the whole point of the index).
  ColumnPtr col = MakeWalkColumn(200000, 65);
  auto ix = ImprintsIndex::Build(*col);
  ASSERT_TRUE(ix.ok());
  const auto& stats_col = *col;
  double mid = stats_col.Stats().min;  // range near the domain edge
  BitVector rows;
  ImprintScanStats stats;
  ASSERT_TRUE(
      ImprintRangeSelect(*col, *ix, mid, mid + 0.5, &rows, &stats).ok());
  EXPECT_LT(stats.TouchedFraction(), 0.5);
}

TEST(ImprintScanTest, StaleIndexRejected) {
  ColumnPtr col = MakeWalkColumn(1000, 66);
  auto ix = ImprintsIndex::Build(*col);
  ASSERT_TRUE(ix.ok());
  col->Append<double>(1.0);
  BitVector rows;
  EXPECT_EQ(ImprintRangeSelect(*col, *ix, 0, 1, &rows).code(),
            StatusCode::kInternal);
}

TEST(ImprintScanTest, IntegerColumnExactBoundaries) {
  std::vector<int32_t> vals;
  for (int i = 0; i < 10000; ++i) vals.push_back(i % 100);
  auto col = Column::FromVector<int32_t>("c", vals);
  auto ix = ImprintsIndex::Build(*col);
  ASSERT_TRUE(ix.ok());
  BitVector rows;
  ASSERT_TRUE(ImprintRangeSelect(*col, *ix, 10, 19, &rows).ok());
  EXPECT_EQ(rows.Count(), 1000u);  // 10 values x 100 repetitions
}

TEST(ImprintScanTest, NativeInt64BoundariesAreExact) {
  // Regression: values near 2^62 differ by 1 — indistinguishable after a
  // double round-trip. The scan must compare in the native type, so
  // base + 1 stays outside [0, 2^62] even though (double)(base + 1) == 2^62.
  const int64_t base = int64_t{1} << 62;
  std::vector<int64_t> vals;
  for (int i = 0; i < 1000; ++i) vals.push_back(i);
  vals.push_back(base - 1);
  vals.push_back(base);
  vals.push_back(base + 1);
  vals.push_back(base + 1025);
  auto col = Column::FromVector<int64_t>("c", vals);
  const double hi = 4611686018427387904.0;  // exactly 2^62

  BitVector scan;
  FullScanRangeSelect(*col, 0.0, hi, &scan);
  EXPECT_EQ(scan.Count(), 1002u);  // 0..999, base-1, base
  EXPECT_TRUE(scan.Get(1000));     // base - 1
  EXPECT_TRUE(scan.Get(1001));     // base
  EXPECT_FALSE(scan.Get(1002));    // base + 1 rounds to 2^62 as double
  EXPECT_FALSE(scan.Get(1003));

  auto ix = ImprintsIndex::Build(*col);
  ASSERT_TRUE(ix.ok());
  BitVector via_imprints;
  ASSERT_TRUE(ImprintRangeSelect(*col, *ix, 0.0, hi, &via_imprints).ok());
  EXPECT_TRUE(via_imprints == scan);
}

TEST(ImprintScanTest, ParallelScanMatchesSerial) {
  // Above the parallelisation threshold the morsel-driven scan must
  // produce the identical selection and identical merged stats.
  ColumnPtr col = MakeWalkColumn(400000, 67);
  auto ix = ImprintsIndex::Build(*col);
  ASSERT_TRUE(ix.ok());
  ThreadPool pool(3);
  Rng rng(68);
  for (int q = 0; q < 10; ++q) {
    double a = rng.UniformDouble(-300, 300);
    double b = rng.UniformDouble(-300, 300);
    double lo = std::min(a, b), hi = std::max(a, b);
    BitVector serial_rows, parallel_rows;
    ImprintScanStats serial_stats, parallel_stats;
    ASSERT_TRUE(
        ImprintRangeSelect(*col, *ix, lo, hi, &serial_rows, &serial_stats)
            .ok());
    ASSERT_TRUE(ImprintRangeSelect(*col, *ix, lo, hi, &parallel_rows,
                                   &parallel_stats, &pool)
                    .ok());
    EXPECT_TRUE(serial_rows == parallel_rows) << "[" << lo << "," << hi << "]";
    EXPECT_EQ(parallel_stats.lines_total, serial_stats.lines_total);
    EXPECT_EQ(parallel_stats.lines_candidate, serial_stats.lines_candidate);
    EXPECT_EQ(parallel_stats.lines_full, serial_stats.lines_full);
    EXPECT_EQ(parallel_stats.values_checked, serial_stats.values_checked);
    EXPECT_EQ(parallel_stats.rows_selected, serial_stats.rows_selected);
    EXPECT_EQ(parallel_stats.rows_full, serial_stats.rows_full);
    EXPECT_DOUBLE_EQ(parallel_stats.FalsePositiveRate(),
                     serial_stats.FalsePositiveRate());
    EXPECT_EQ(serial_stats.workers, 1u);
    if (serial_stats.lines_candidate > 0) {
      EXPECT_GT(parallel_stats.workers, 1u);
    }
  }
}

TEST(ImprintScanTest, RowsFullAndFalsePositiveRate) {
  ColumnPtr col = MakeWalkColumn(100000, 71);
  auto ix = ImprintsIndex::Build(*col);
  ASSERT_TRUE(ix.ok());

  // Full-extent query: everything is selected. Lines touching the extreme
  // histogram bins still get value-checked, but every checked value
  // matches, so the false-positive rate is exactly zero and the full-line
  // rows plus the checked values cover the whole column.
  BitVector all;
  ImprintScanStats st_all;
  ASSERT_TRUE(ImprintRangeSelect(*col, *ix, -1e18, 1e18, &all, &st_all).ok());
  EXPECT_EQ(st_all.rows_selected, col->size());
  EXPECT_EQ(st_all.rows_full + st_all.values_checked, col->size());
  EXPECT_DOUBLE_EQ(st_all.FalsePositiveRate(), 0.0);

  // Narrow query: boundary lines get checked; the rate is a valid
  // fraction and rows_full never exceeds the selection.
  BitVector narrow;
  ImprintScanStats st;
  ASSERT_TRUE(ImprintRangeSelect(*col, *ix, -2, 2, &narrow, &st).ok());
  EXPECT_LE(st.rows_full, st.rows_selected);
  EXPECT_GE(st.FalsePositiveRate(), 0.0);
  EXPECT_LE(st.FalsePositiveRate(), 1.0);
}

TEST(ImprintScanTest, SmallColumnIgnoresPool) {
  // Below the threshold the pool must not change anything.
  ColumnPtr col = MakeWalkColumn(5000, 69);
  auto ix = ImprintsIndex::Build(*col);
  ASSERT_TRUE(ix.ok());
  ThreadPool pool(3);
  BitVector rows;
  ImprintScanStats stats;
  ASSERT_TRUE(ImprintRangeSelect(*col, *ix, -5, 5, &rows, &stats, &pool).ok());
  EXPECT_EQ(stats.workers, 1u);
  BitVector oracle;
  FullScanRangeSelect(*col, -5, 5, &oracle);
  EXPECT_TRUE(rows == oracle);
}

// ---------------- FullScanRangeSelect ----------------

TEST(FullScanTest, InclusiveBounds) {
  auto col = Column::FromVector<double>("c", {1, 2, 3, 4, 5});
  BitVector rows;
  FullScanRangeSelect(*col, 2, 4, &rows);
  EXPECT_EQ(rows.Count(), 3u);
  EXPECT_TRUE(rows.Get(1));
  EXPECT_TRUE(rows.Get(3));
  EXPECT_FALSE(rows.Get(0));
}

// ---------------- ImprintManager ----------------

TEST(ImprintManagerTest, BuildsLazilyAndCaches) {
  ImprintManager mgr;
  ColumnPtr col = MakeWalkColumn(5000, 70);
  EXPECT_EQ(mgr.num_indexes(), 0u);
  auto ix1 = mgr.GetOrBuild(col);
  ASSERT_TRUE(ix1.ok());
  EXPECT_EQ(mgr.num_indexes(), 1u);
  auto ix2 = mgr.GetOrBuild(col);
  ASSERT_TRUE(ix2.ok());
  EXPECT_EQ(*ix1, *ix2) << "second call must return the cached index";
}

TEST(ImprintManagerTest, RebuildsAfterAppend) {
  ImprintManager mgr;
  ColumnPtr col = MakeWalkColumn(5000, 71);
  auto ix1 = mgr.GetOrBuild(col);
  ASSERT_TRUE(ix1.ok());
  uint64_t lines_before = (*ix1)->num_lines();
  for (int i = 0; i < 1000; ++i) col->Append<double>(i);
  auto ix2 = mgr.GetOrBuild(col);
  ASSERT_TRUE(ix2.ok());
  EXPECT_EQ((*ix2)->built_epoch(), col->epoch());
  EXPECT_GT((*ix2)->num_lines(), lines_before);
  EXPECT_EQ(mgr.num_indexes(), 1u);  // replaced, not duplicated
}

TEST(ImprintManagerTest, NullColumnRejected) {
  ImprintManager mgr;
  EXPECT_FALSE(mgr.GetOrBuild(nullptr).ok());
}

TEST(ImprintManagerTest, ConcurrentFirstQueriesBuildOnce) {
  // Racing first queries on the same column must serialise on the
  // per-column build mutex and all receive the one built index.
  ImprintManager mgr;
  ColumnPtr col = MakeWalkColumn(100000, 74);
  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<const ImprintsIndex>> got(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&mgr, &col, &got, t] {
      auto r = mgr.GetOrBuild(col);
      ASSERT_TRUE(r.ok());
      got[t] = *r;
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(mgr.num_indexes(), 1u);
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(got[t], got[0]) << "thread " << t << " got a different index";
  }
}

TEST(ImprintManagerTest, RebuildKeepsOldIndexAlive) {
  // A rebuild after an append must not invalidate the index an earlier
  // caller still holds (shared ownership, not replacement-in-place).
  ImprintManager mgr;
  ColumnPtr col = MakeWalkColumn(5000, 75);
  auto ix1 = mgr.GetOrBuild(col);
  ASSERT_TRUE(ix1.ok());
  uint64_t old_epoch = (*ix1)->built_epoch();
  for (int i = 0; i < 100; ++i) col->Append<double>(i);
  auto ix2 = mgr.GetOrBuild(col);
  ASSERT_TRUE(ix2.ok());
  EXPECT_NE(*ix1, *ix2);
  EXPECT_EQ((*ix1)->built_epoch(), old_epoch);  // old handle still valid
  EXPECT_EQ((*ix2)->built_epoch(), col->epoch());
}

TEST(ImprintManagerTest, TotalStorageAndClear) {
  ImprintManager mgr;
  ColumnPtr a = MakeWalkColumn(5000, 72);
  ColumnPtr b = MakeWalkColumn(5000, 73);
  ASSERT_TRUE(mgr.GetOrBuild(a).ok());
  ASSERT_TRUE(mgr.GetOrBuild(b).ok());
  EXPECT_EQ(mgr.num_indexes(), 2u);
  EXPECT_GT(mgr.TotalStorageBytes(), 0u);
  mgr.Clear();
  EXPECT_EQ(mgr.num_indexes(), 0u);
  EXPECT_EQ(mgr.TotalStorageBytes(), 0u);
}

}  // namespace
}  // namespace geocol
