// Vector layers: named collections of features (roads, land-use polygons,
// POIs) with thematic attributes and an envelope R-tree, the auxiliary GIS
// data of the demo (OSM, Urban Atlas).
#ifndef GEOCOL_GIS_LAYER_H_
#define GEOCOL_GIS_LAYER_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/rtree.h"
#include "geom/geometry.h"
#include "pointcloud/vector_gen.h"
#include "util/status.h"

namespace geocol {

/// An immutable-after-build feature collection.
class VectorLayer {
 public:
  explicit VectorLayer(std::string name) : name_(std::move(name)) {}

  static std::shared_ptr<VectorLayer> FromFeatures(
      std::string name, std::vector<VectorFeature> features);

  const std::string& name() const { return name_; }
  size_t size() const { return features_.size(); }
  const VectorFeature& feature(size_t i) const { return features_[i]; }
  const std::vector<VectorFeature>& features() const { return features_; }

  void Add(VectorFeature f) {
    features_.push_back(std::move(f));
    index_built_ = false;
  }

  /// Union envelope of all features.
  Box Envelope() const;

  /// Feature indexes with the given thematic class.
  std::vector<uint64_t> SelectByClass(uint32_t feature_class) const;

  /// Feature indexes whose envelope intersects `query` (builds the R-tree
  /// on first use).
  std::vector<uint64_t> QueryEnvelopes(const Box& query);

  /// Feature indexes whose geometry exactly intersects `g`.
  std::vector<uint64_t> QueryIntersecting(const Geometry& g);

  /// Feature indexes within `distance` of `g`.
  std::vector<uint64_t> QueryWithinDistance(const Geometry& g, double distance);

 private:
  void EnsureIndex();

  std::string name_;
  std::vector<VectorFeature> features_;
  RTree index_;
  bool index_built_ = false;
};

}  // namespace geocol

#endif  // GEOCOL_GIS_LAYER_H_
