#include "server/batch.h"

#include <algorithm>
#include <map>
#include <string>
#include <utility>

#include "columns/column.h"
#include "columns/types.h"
#include "core/native_range.h"
#include "simd/kernels.h"
#include "util/timer.h"

namespace geocol {
namespace server {

namespace {

/// Values per re-filter kernel block — the imprint scan's stride, so the
/// kernels see the same block shapes they are tested at.
constexpr size_t kFilterBlock = 4096;

/// One range predicate of a member's conjunction.
struct RangePredicate {
  const std::string* column;
  double lo;
  double hi;
};

/// A column's values gathered at the candidate rows, in native type.
struct GatheredColumn {
  DataType type;
  std::vector<uint8_t> data;  // candidates.size() values of native width
};

template <typename T>
Status GatherTyped(const Column& col, const std::vector<uint64_t>& rows,
                   T* out) {
  // Ascending walk, pinning each covering chunk once. Resident columns
  // pin the whole buffer (one iteration); paged columns fault only the
  // chunks the candidate rows touch.
  const size_t chunk_rows = col.chunk_rows();
  size_t i = 0;
  while (i < rows.size()) {
    GEOCOL_ASSIGN_OR_RETURN(ColumnChunkPin pin,
                            col.PinChunk(rows[i] / chunk_rows));
    const T* values = pin.values<T>();
    const uint64_t end_row = pin.first_row + pin.row_count;
    for (; i < rows.size() && rows[i] < end_row; ++i) {
      out[i] = values[rows[i] - pin.first_row];
    }
  }
  return Status::OK();
}

Status GatherColumn(const Column& col, const std::vector<uint64_t>& rows,
                    GatheredColumn* out) {
  out->type = col.type();
  out->data.resize(rows.size() * col.width());
  Status st;
  DispatchDataType(col.type(), [&]<typename T>() {
    st = GatherTyped<T>(col, rows, reinterpret_cast<T*>(out->data.data()));
  });
  return st;
}

/// ANDs the rows satisfying `lo <= v <= hi` (compared in the column's
/// native type after ClampRangeToType — the solo scan's exact predicate)
/// into `words`. Returns false when the clamped range is empty, i.e. the
/// member selects nothing.
bool AndRangeBits(const GatheredColumn& g, size_t n, double lo, double hi,
                  std::vector<uint64_t>* words) {
  bool nonempty = true;
  DispatchDataType(g.type, [&]<typename T>() {
    NativeRange<T> nr = ClampRangeToType<T>(lo, hi);
    if (nr.empty) {
      nonempty = false;
      return;
    }
    const T* values = reinterpret_cast<const T*>(g.data.data());
    uint64_t scratch[kFilterBlock / 64];
    for (size_t base = 0; base < n; base += kFilterBlock) {
      const size_t bn = std::min(kFilterBlock, n - base);
      simd::RangeSelectBits<T>(values + base, bn, nr.lo, nr.hi, scratch);
      // The kernel zeroes trailing bits of its last word, and short
      // blocks only occur at the very end, so the AND never clears a bit
      // at an index < n.
      uint64_t* w = words->data() + base / 64;
      for (size_t k = 0; k < (bn + 63) / 64; ++k) w[k] &= scratch[k];
    }
  });
  return nonempty;
}

}  // namespace

bool BatchablePlan(const sql::PlannedQuery& plan) {
  if (plan.target != sql::PlannedQuery::Target::kPointCloud) return false;
  if (plan.engine == nullptr || plan.router != nullptr) return false;
  if (plan.near) return false;
  if (plan.buffer != 0.0) return false;
  if (plan.stmt.explain || plan.stmt.analyze) return false;
  if (plan.has_geometry && !plan.geometry.is_box()) return false;
  return true;
}

Result<Box> PlanViewport(const sql::PlannedQuery& plan) {
  Box box;
  if (plan.has_geometry) {
    box = plan.geometry.Envelope();
  } else {
    const FlatTable& table = plan.engine->table();
    GEOCOL_ASSIGN_OR_RETURN(ColumnPtr xc, table.GetColumn("x"));
    GEOCOL_ASSIGN_OR_RETURN(ColumnPtr yc, table.GetColumn("y"));
    box = Box(xc->Stats().min, yc->Stats().min, xc->Stats().max,
              yc->Stats().max);
  }
  // x/y attribute ranges (`x BETWEEN a AND b` parses as a range, not a
  // geometry) narrow the viewport: no row outside them can pass the
  // member's own conjunction, so the shared scan may skip it. The
  // intersection is exact — ClampRangeToType of max(lo)/min(hi) accepts
  // a value iff both clamped ranges do — which keeps the fan-out
  // bit-identical while the superset stays proportional to the actual
  // viewports instead of the whole table.
  for (const AttributeRange& a : plan.thematic) {
    if (a.column == "x") {
      box.min_x = std::max(box.min_x, a.lo);
      box.max_x = std::min(box.max_x, a.hi);
    } else if (a.column == "y") {
      box.min_y = std::max(box.min_y, a.lo);
      box.max_y = std::min(box.max_y, a.hi);
    }
  }
  return box;
}

Result<SharedScanResult> SharedScanSelect(SpatialQueryEngine* engine,
                                          const std::vector<TaskPtr>& group) {
  SharedScanResult out;
  out.member_rows.resize(group.size());

  // Union box over the members that can select anything. A member with an
  // inverted box (e.g. `x BETWEEN 50 AND 40`) selects nothing solo and
  // stays an empty row set here.
  Box superset;  // default-empty; Extend skips empty member boxes
  for (const TaskPtr& task : group) superset.Extend(task->viewport);

  const FlatTable& table = engine->table();
  Timer scan_timer;
  std::vector<uint64_t> candidates;
  if (!superset.empty()) {
    GEOCOL_ASSIGN_OR_RETURN(SelectionResult sel,
                            engine->SelectInBox(superset));
    candidates = std::move(sel.row_ids);
  }

  // Per-member conjunctions, plus the distinct columns they touch.
  std::vector<std::vector<RangePredicate>> predicates(group.size());
  static const std::string kX = "x", kY = "y";
  std::map<std::string, GatheredColumn> gathered;
  for (size_t m = 0; m < group.size(); ++m) {
    const TaskPtr& task = group[m];
    if (task->viewport.empty()) continue;
    predicates[m].push_back({&kX, task->viewport.min_x, task->viewport.max_x});
    predicates[m].push_back({&kY, task->viewport.min_y, task->viewport.max_y});
    for (const AttributeRange& a : task->plan.thematic) {
      predicates[m].push_back({&a.column, a.lo, a.hi});
    }
    for (const RangePredicate& p : predicates[m]) gathered[*p.column];
  }
  for (auto& [name, g] : gathered) {
    GEOCOL_ASSIGN_OR_RETURN(ColumnPtr col, table.GetColumn(name));
    // A short column (solo answers Corruption: "... length mismatch")
    // errors here instead, and the caller's solo fallback reproduces the
    // exact solo-path message.
    if (!candidates.empty() && candidates.back() >= col->size()) {
      return Status::Corruption("column length mismatch: " + name);
    }
    GEOCOL_RETURN_NOT_OK(GatherColumn(*col, candidates, &g));
  }
  out.profile.Add("server.batch.scan", scan_timer.ElapsedNanos(),
                  table.num_rows(), candidates.size());

  // Fan out: re-filter the candidates per member with the exact solo
  // predicate set. Each member's box is contained in the superset, so its
  // solo selection is a subset of the candidates; the re-filter recovers
  // it exactly.
  Timer fanout_timer;
  const size_t n = candidates.size();
  const size_t nwords = (n + 63) / 64;
  uint64_t rows_out = 0;
  std::vector<uint64_t> words;
  for (size_t m = 0; m < group.size(); ++m) {
    if (group[m]->viewport.empty() || n == 0) continue;
    words.assign(nwords, ~uint64_t{0});
    bool nonempty = true;
    for (const RangePredicate& p : predicates[m]) {
      if (!AndRangeBits(gathered[*p.column], n, p.lo, p.hi, &words)) {
        nonempty = false;
        break;
      }
    }
    if (!nonempty) continue;
    std::vector<uint64_t>& rows = out.member_rows[m];
    for (size_t i = 0; i < n; ++i) {
      if ((words[i / 64] >> (i % 64)) & 1) rows.push_back(candidates[i]);
    }
    rows_out += rows.size();
  }
  out.profile.Add("server.batch.fanout", fanout_timer.ElapsedNanos(),
                  n * group.size(), rows_out);
  return out;
}

}  // namespace server
}  // namespace geocol
