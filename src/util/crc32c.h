// CRC32C (Castagnoli, reflected polynomial 0x82F63B78) — the checksum
// guarding every persisted format (column chunks, table manifests, imprint
// sidecars, layer files). Software slice-by-8 everywhere, with a runtime-
// dispatched SSE4.2 hardware path on x86-64 so verification stays well
// under the read-path noise floor.
#ifndef GEOCOL_UTIL_CRC32C_H_
#define GEOCOL_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace geocol {

/// Extends a running CRC32C over `n` more bytes. Start from 0 and feed
/// consecutive byte ranges to checksum a file incrementally:
///   crc = Crc32cExtend(Crc32cExtend(0, a, na), b, nb) == Crc32c(a||b).
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n);

/// One-shot CRC32C of a buffer ("123456789" -> 0xE3069283).
inline uint32_t Crc32c(const void* data, size_t n) {
  return Crc32cExtend(0, data, n);
}

namespace internal {
/// Portable slice-by-8 implementation, exposed so tests can pin the
/// hardware path against it.
uint32_t Crc32cSoftware(uint32_t crc, const void* data, size_t n);
/// True when the hardware CRC32 instruction is used on this machine.
bool Crc32cHardwareEnabled();
}  // namespace internal

}  // namespace geocol

#endif  // GEOCOL_UTIL_CRC32C_H_
