#include "server/client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <thread>

namespace geocol {
namespace server {

Result<Client> Client::Connect(const Options& options) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options.port));
  if (::inet_pton(AF_INET, options.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad server address: " + options.host);
  }
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(options.connect_retry_ms);
  int fd = -1;
  for (;;) {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      return Status::IOError(std::string("socket: ") + std::strerror(errno));
    }
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
        0) {
      break;
    }
    const int saved_errno = errno;
    ::close(fd);
    fd = -1;
    if (std::chrono::steady_clock::now() >= deadline) {
      return Status::IOError("connect " + options.host + ":" +
                             std::to_string(options.port) + ": " +
                             std::strerror(saved_errno));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  SetNoDelay(fd);
  Client client(fd, options);
  if (!options.client_id.empty()) {
    std::vector<uint8_t> payload(options.client_id.begin(),
                                 options.client_id.end());
    GEOCOL_RETURN_NOT_OK(WriteFrame(fd, FrameType::kHello, payload));
    GEOCOL_ASSIGN_OR_RETURN(Frame reply,
                            ReadFrame(fd, options.max_response_bytes));
    if (reply.type != FrameType::kHelloOk) {
      return Status::Corruption("unexpected reply to HELLO");
    }
  }
  return client;
}

Status Client::Ping() {
  if (fd_ < 0) return Status::InvalidArgument("client is closed");
  GEOCOL_RETURN_NOT_OK(WriteFrame(fd_, FrameType::kPing, {}));
  GEOCOL_ASSIGN_OR_RETURN(Frame reply,
                          ReadFrame(fd_, options_.max_response_bytes));
  if (reply.type != FrameType::kPong) {
    return Status::Corruption("unexpected reply to PING");
  }
  return Status::OK();
}

Result<Client::QueryOutcome> Client::Query(const std::string& sql) {
  if (fd_ < 0) return Status::InvalidArgument("client is closed");
  std::vector<uint8_t> payload(sql.begin(), sql.end());
  GEOCOL_RETURN_NOT_OK(WriteFrame(fd_, FrameType::kQuery, payload));
  GEOCOL_ASSIGN_OR_RETURN(Frame reply,
                          ReadFrame(fd_, options_.max_response_bytes));
  QueryOutcome outcome;
  if (reply.type == FrameType::kResult) {
    GEOCOL_ASSIGN_OR_RETURN(outcome.result, DecodeResultSet(reply.payload));
    outcome.ok = true;
    return outcome;
  }
  if (reply.type == FrameType::kError) {
    GEOCOL_ASSIGN_OR_RETURN(outcome.error, DecodeError(reply.payload));
    outcome.ok = false;
    return outcome;
  }
  return Status::Corruption("unexpected reply to QUERY");
}

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace server
}  // namespace geocol
