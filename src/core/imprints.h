// Column Imprints — the secondary index of the paper (§2.1.1), after
// Sidirourgos & Kersten, SIGMOD 2013.
//
// An imprint is a 64-bit vector per cache line of column data: bit b is set
// when the cache line contains at least one value falling in global bin b.
// Runs of identical vectors are collapsed through the imprint dictionary: a
// list of (count, repeat) entries where a repeat entry covers `count` cache
// lines with one stored vector, exploiting the local clustering that data
// acquisition imposes (flight strips, in the LIDAR case).
//
// A range query [lo, hi] builds a query mask (bins overlapping the range)
// and an inner mask (bins fully contained in it). A cache line is a
// candidate iff its imprint intersects the query mask; it qualifies fully —
// no per-value checks needed — iff its imprint has no bits outside the
// inner mask.
#ifndef GEOCOL_CORE_IMPRINTS_H_
#define GEOCOL_CORE_IMPRINTS_H_

#include <cstdint>
#include <vector>

#include "columns/column.h"
#include "core/binning.h"
#include "util/bitvector.h"
#include "util/status.h"

namespace geocol {

class ThreadPool;

/// Build-time knobs for an imprints index.
struct ImprintsOptions {
  /// Upper bound on bins; the build may choose fewer (power of two) when
  /// the sample shows few distinct values.
  uint32_t max_bins = 64;
  /// Sample size used to derive the global bin bounds.
  uint32_t sample_size = 4096;
  /// Sampling seed (determinism for tests/benchmarks).
  uint64_t seed = 42;
  /// Cache line size the imprint granularity is derived from.
  uint32_t cacheline_bytes = 64;
};

/// Size/compression statistics of a built index (E2/E7).
struct ImprintsStorage {
  uint64_t num_lines = 0;         ///< cache lines covered
  uint64_t num_vectors = 0;       ///< imprint vectors actually stored
  uint64_t num_dict_entries = 0;  ///< dictionary entries
  uint64_t vector_bytes = 0;
  uint64_t dict_bytes = 0;
  uint64_t bounds_bytes = 0;
  uint64_t total_bytes = 0;
  /// total_bytes / column payload bytes — the paper reports 5-12%.
  double overhead_fraction = 0.0;
  /// stored vectors / cache lines — < 1 when dictionary compression bites.
  double vectors_per_line = 0.0;
};

/// Query mask pair for a range predicate.
struct ImprintMask {
  uint64_t query = 0;  ///< bins overlapping [lo, hi]
  uint64_t inner = 0;  ///< bins fully inside (lo, hi) — no boundary checks
};

/// An immutable imprints index over one column.
class ImprintsIndex {
 public:
  /// Scans `column` once and builds the index. The column must be
  /// non-empty. When `pool` is non-null the column is chunked across its
  /// workers: each chunk produces per-line vectors as maximal runs, and the
  /// run-length dictionary is stitched at chunk seams — the result is
  /// byte-identical to the serial build.
  static Result<ImprintsIndex> Build(const Column& column,
                                     const ImprintsOptions& options = {},
                                     ThreadPool* pool = nullptr);

  /// As Build, but with caller-provided bin bounds instead of sampling.
  /// This is the primitive incremental maintenance rests on: extending an
  /// index over appended rows must keep the original bins (resampling
  /// would shift every boundary and invalidate the untouched prefix).
  static Result<ImprintsIndex> BuildWithBins(const Column& column,
                                             BinBounds bins,
                                             const ImprintsOptions& options = {},
                                             ThreadPool* pool = nullptr);

  /// Incremental maintenance: extends `base` (built over a prefix of
  /// `column`) to cover all of `column` by binarising only the appended
  /// tail and stitching it onto the decoded prefix runs with the same
  /// seam logic as the parallel build. The caller must guarantee that
  /// `column`'s first `base.num_rows()` values are the values `base` was
  /// built from (the COW append lineage provides this); out-of-range tail
  /// values clamp into the unbounded end bins, so the original bounds stay
  /// valid. The result is byte-identical to
  /// `BuildWithBins(column, base.bins())`.
  static Result<ImprintsIndex> ExtendAppend(const ImprintsIndex& base,
                                            const Column& column,
                                            ThreadPool* pool = nullptr);

  uint32_t num_bins() const { return bins_.num_bins(); }
  uint32_t values_per_line() const { return values_per_line_; }
  uint64_t num_lines() const { return num_lines_; }
  uint64_t num_rows() const { return num_rows_; }
  const BinBounds& bins() const { return bins_; }

  /// Epoch of the column at build time; a mismatch with the live column
  /// means the index is stale (column was appended to).
  uint64_t built_epoch() const { return built_epoch_; }

  /// Builds the query/inner masks for the inclusive range [lo, hi].
  ImprintMask MaskForRange(double lo, double hi) const;

  /// Range filter: sets bit L in `candidates` when cache line L may hold a
  /// value in [lo, hi], and in `full_lines` (if non-null) when *every*
  /// value in the line is guaranteed to match. Both vectors are resized to
  /// num_lines(). This touches only the compressed imprint stream — never
  /// the column data.
  void FilterRange(double lo, double hi, BitVector* candidates,
                   BitVector* full_lines = nullptr) const;

  /// As FilterRange but invokes `fn(first_line, line_count, full)` per
  /// maximal run, avoiding bit vector materialisation.
  template <typename Fn>
  void FilterRangeRuns(double lo, double hi, Fn&& fn) const;

  ImprintsStorage Storage(uint64_t column_payload_bytes) const;

  /// Row range [first, last) covered by cache line `line`.
  std::pair<uint64_t, uint64_t> LineRows(uint64_t line) const {
    uint64_t first = line * values_per_line_;
    uint64_t last = first + values_per_line_;
    if (last > num_rows_) last = num_rows_;
    return {first, last};
  }

  /// Dictionary entry (exposed for tests/benchmarks).
  struct DictEntry {
    uint32_t count;
    bool repeat;
  };
  const std::vector<uint64_t>& vectors() const { return vectors_; }
  const std::vector<DictEntry>& dictionary() const { return dict_; }

  /// Imprint vector stored for cache line `line` (walks the compressed
  /// dictionary, O(dict entries)). Used by the incremental-stitch probe
  /// verification; not a scan-path primitive.
  uint64_t VectorAtLine(uint64_t line) const;

  /// Reassembles an index from persisted parts (see core/imprints_io.h).
  /// Validates structural invariants (dictionary covers all lines, vector
  /// count matches) and returns Corruption otherwise.
  static Result<ImprintsIndex> Restore(BinBounds bins,
                                       uint32_t values_per_line,
                                       uint64_t num_rows, uint64_t built_epoch,
                                       std::vector<uint64_t> vectors,
                                       std::vector<DictEntry> dict);

 private:
  ImprintsIndex() = default;

  BinBounds bins_;
  uint32_t values_per_line_ = 0;
  uint64_t num_lines_ = 0;
  uint64_t num_rows_ = 0;
  uint64_t built_epoch_ = 0;
  std::vector<uint64_t> vectors_;
  std::vector<DictEntry> dict_;
};

template <typename Fn>
void ImprintsIndex::FilterRangeRuns(double lo, double hi, Fn&& fn) const {
  ImprintMask mask = MaskForRange(lo, hi);
  uint64_t line = 0;
  size_t vec_idx = 0;
  // Coalesce adjacent emissions with equal `full` status.
  uint64_t run_start = 0, run_len = 0;
  bool run_full = false;
  auto emit = [&](uint64_t start, uint64_t count, bool full) {
    if (count == 0) return;
    if (run_len > 0 && run_full == full && run_start + run_len == start) {
      run_len += count;
      return;
    }
    if (run_len > 0) fn(run_start, run_len, run_full);
    run_start = start;
    run_len = count;
    run_full = full;
  };
  for (const DictEntry& e : dict_) {
    if (e.repeat) {
      uint64_t v = vectors_[vec_idx++];
      if ((v & mask.query) != 0) {
        emit(line, e.count, (v & ~mask.inner) == 0);
      }
      line += e.count;
    } else {
      for (uint32_t j = 0; j < e.count; ++j) {
        uint64_t v = vectors_[vec_idx++];
        if ((v & mask.query) != 0) {
          emit(line, 1, (v & ~mask.inner) == 0);
        }
        ++line;
      }
    }
  }
  if (run_len > 0) fn(run_start, run_len, run_full);
}

}  // namespace geocol

#endif  // GEOCOL_CORE_IMPRINTS_H_
