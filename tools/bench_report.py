#!/usr/bin/env python3
"""Merge per-binary bench JSON outputs into BENCH_E*.json artifacts.

Every bench binary accepts `--json <path>` and writes its table rows as a
JSON array of {bench, config, metrics} objects (bench_imprints, which runs
on google-benchmark, writes that library's native report instead; it is
converted here). This script groups all rows by experiment id and writes
one BENCH_<id>.json per experiment:

    build/bench/bench_selection --json /tmp/sel.json
    build/bench/bench_simd      --json /tmp/simd.json
    build/bench/bench_cache     --json /tmp/cache.json
    tools/bench_report.py --out-dir . /tmp/sel.json /tmp/simd.json \
        /tmp/cache.json
    # -> ./BENCH_E3.json ./BENCH_E11.json ./BENCH_E13.json ...

Telemetry registry dumps (from `--metrics <path>` on a bench binary, or
`geocol_tool metrics --format json`) can ride along via `--metrics`; their
counters/gauges/histogram summaries are merged into BENCH_METRICS.json:

    build/bench/bench_selection --metrics /tmp/sel-metrics.json
    tools/bench_report.py --out-dir . --metrics /tmp/sel-metrics.json ...

With `--compare <old.json>` the script instead diffs the given inputs
against a previous run's JSON (either a per-binary --json output or a
merged BENCH_E*.json) and prints per-benchmark metric deltas:

    tools/bench_report.py --compare BENCH_E16.json /tmp/e16-new.json
    # E16  mode=paged-raw
    #   sweep ms      33.21 -> 30.05   -9.5%
"""

import argparse
import json
import os
import re
import sys
from collections import defaultdict

# google-benchmark reports carry no experiment id; map the binary name
# (recorded in the report context) to its id from EXPERIMENTS.md.
GBENCH_EXPERIMENTS = {"bench_imprints": "E7"}


def rows_from_file(path):
    with open(path) as f:
        doc = json.load(f)
    if isinstance(doc, list):
        return doc  # native {bench, config, metrics} rows
    if isinstance(doc, dict) and "benchmarks" in doc:
        # google-benchmark format: one row per benchmark entry.
        exe = os.path.basename(
            doc.get("context", {}).get("executable", "")) or "gbench"
        bench = GBENCH_EXPERIMENTS.get(exe, exe)
        rows = []
        for b in doc["benchmarks"]:
            metrics = {
                k: v
                for k, v in b.items()
                if isinstance(v, (int, float)) or k == "name"
            }
            rows.append({
                "bench": bench,
                "config": {"source": exe},
                "metrics": metrics,
            })
        return rows
    raise ValueError(f"{path}: unrecognised bench JSON shape")


def metrics_row(path):
    """One {bench: METRICS, ...} row from a telemetry registry JSON dump."""
    with open(path) as f:
        doc = json.load(f)
    if not isinstance(doc, dict) or "counters" not in doc:
        raise ValueError(f"{path}: not a telemetry metrics dump "
                         "(expected an object with a 'counters' key)")
    metrics = dict(doc.get("counters", {}))
    metrics.update(doc.get("gauges", {}))
    # Histograms contribute their scalar summaries — count/sum plus the
    # HDR quantiles; bucket vectors stay in the source dump.
    for name, h in doc.get("histograms", {}).items():
        if isinstance(h, dict):
            metrics[f"{name}_count"] = h.get("count", 0)
            metrics[f"{name}_sum"] = h.get("sum", 0)
            for q in ("p50", "p90", "p99", "p999"):
                if q in h:
                    metrics[f"{name}_{q}"] = h[q]
    return {
        "bench": "METRICS",
        "config": {"source": os.path.basename(path)},
        "metrics": metrics,
    }


# Bench cells are either bare numbers or number-with-unit strings
# ("37.53 MB", "100.0%", "1.19x"). Both compare numerically; anything
# else ("paged-raw", "V1 0.1%") identifies the row.
_NUMERIC_CELL = re.compile(
    r"^(-?\d+(?:\.\d+)?(?:[eE][+-]?\d+)?)\s*(%|x|ms|us|s|KB|MB|GB|pts)?$")


def split_cell(value):
    """Returns (number, unit) for numeric-ish cells, else None."""
    if isinstance(value, bool):
        return None
    if isinstance(value, (int, float)):
        return (float(value), "")
    if isinstance(value, str):
        m = _NUMERIC_CELL.match(value.strip())
        if m:
            return (float(m.group(1)), m.group(2) or "")
    return None


def row_key(row):
    """Identity of a row: its bench id plus every non-numeric metric."""
    ident = tuple(sorted(
        (k, v) for k, v in row.get("metrics", {}).items()
        if split_cell(v) is None))
    return (str(row.get("bench", "unknown")), ident)


def compare_runs(old_rows, new_rows):
    """Prints per-benchmark deltas of every numeric metric; returns 0/1."""
    old_by_key = defaultdict(list)
    for row in old_rows:
        old_by_key[row_key(row)].append(row)
    matched = 0
    for row in new_rows:
        key = row_key(row)
        if not old_by_key.get(key):
            continue
        old = old_by_key[key].pop(0)
        matched += 1
        ident = ", ".join(f"{k}={v}" for k, v in key[1])
        print(f"{key[0]}  {ident}" if ident else key[0])
        for name, new_val in row.get("metrics", {}).items():
            new_nu = split_cell(new_val)
            old_nu = split_cell(old.get("metrics", {}).get(name))
            if new_nu is None or old_nu is None:
                continue
            (new_n, unit), (old_n, _) = new_nu, old_nu
            if old_n == 0:
                delta = "n/a" if new_n != 0 else "+0.0%"
            else:
                delta = f"{100.0 * (new_n - old_n) / old_n:+.1f}%"
            print(f"  {name:<14} {old_n:>10g} -> {new_n:<10g} {unit:<3} "
                  f"{delta}")
    unmatched_new = len(new_rows) - matched
    unmatched_old = sum(len(v) for v in old_by_key.values())
    if unmatched_new or unmatched_old:
        print(f"compare: {unmatched_new} new / {unmatched_old} old rows "
              "had no counterpart", file=sys.stderr)
    if matched == 0:
        print("compare: no rows matched between the runs", file=sys.stderr)
        return 1
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("inputs", nargs="*", help="per-binary --json outputs")
    ap.add_argument("--metrics", action="append", default=[],
                    metavar="PATH",
                    help="telemetry registry JSON dump(s) to merge into "
                         "BENCH_METRICS.json")
    ap.add_argument("--out-dir", default=".",
                    help="directory for BENCH_<id>.json files")
    ap.add_argument("--compare", metavar="OLD",
                    help="previous run's bench JSON; print per-benchmark "
                         "metric deltas of the inputs against it instead "
                         "of writing artifacts")
    args = ap.parse_args()
    if not args.inputs and not args.metrics:
        ap.error("no inputs given")

    if args.compare:
        old_rows = rows_from_file(args.compare)
        new_rows = []
        for path in args.inputs:
            new_rows.extend(rows_from_file(path))
        return compare_runs(old_rows, new_rows)

    by_bench = defaultdict(list)
    for path in args.inputs:
        try:
            for row in rows_from_file(path):
                by_bench[str(row.get("bench", "unknown"))].append(row)
        except (OSError, ValueError, json.JSONDecodeError) as e:
            print(f"bench_report: skipping {path}: {e}", file=sys.stderr)
    for path in args.metrics:
        try:
            by_bench["METRICS"].append(metrics_row(path))
        except (OSError, ValueError, json.JSONDecodeError) as e:
            print(f"bench_report: skipping {path}: {e}", file=sys.stderr)

    os.makedirs(args.out_dir, exist_ok=True)
    for bench, rows in sorted(by_bench.items()):
        out = os.path.join(args.out_dir, f"BENCH_{bench}.json")
        with open(out, "w") as f:
            json.dump(rows, f, indent=2)
            f.write("\n")
        print(f"wrote {out} ({len(rows)} rows)")
    if not by_bench:
        print("bench_report: no rows found", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
