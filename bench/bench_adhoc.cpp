// E6 (paper §4.2, scenario 2): ad-hoc multi-dataset queries through the
// SQL front end, with per-operator execution times.
//
// Paper queries being reproduced:
//   "select all LIDAR points that are near a given area that is
//    characterised as a fast transit road according to the Urban Atlas
//    nomenclature"
//   "compute the average elevation of the LIDAR points that are near ..."
// plus scenario-1 single-dataset selections, each with the per-operator
// profile the demo exposes ("the execution time spent in each operator").
#include <cstdio>

#include "bench/bench_common.h"
#include "gis/catalog.h"
#include "pointcloud/vector_gen.h"
#include "sql/session.h"

using namespace geocol;
using namespace geocol::bench;

int main(int argc, char** argv) {
  geocol::bench::InitBench(argc, argv);
  const uint64_t n = BenchPoints(1000000);
  Banner("E6: ad-hoc multi-dataset SQL queries (paper section 4.2)",
         "scenario-2 queries over point cloud + OSM-like + Urban-Atlas-like");

  AhnGeneratorOptions opts = SurveyOptions(n);
  {
    double area = std::max(opts.extent.area(), 1.0);
    opts.point_density = static_cast<double>(n) / area;
    opts.scan_line_spacing = 1.0 / std::sqrt(opts.point_density);
  }
  AhnGenerator gen(opts);
  auto table = gen.GenerateTable(n);
  if (!table.ok()) return 1;

  Catalog catalog;
  if (!catalog.AddPointCloud("ahn2", *table).ok()) return 1;
  TerrainModel terrain(opts.seed);
  OsmGenerator og(7, opts.extent, terrain);
  auto roads = og.GenerateRoads(60);
  auto rivers = og.GenerateRivers(5);
  for (auto& r : rivers) roads.push_back(r);
  if (!catalog.AddLayer(VectorLayer::FromFeatures("osm", roads)).ok()) return 1;
  UrbanAtlasGenerator ug(8, opts.extent, terrain);
  auto land = ug.GenerateLandUse(10);
  auto corridors = ug.GenerateTransitCorridors(roads, 18.0);
  size_t n_corridors = corridors.size();
  for (auto& c : corridors) land.push_back(c);
  if (!catalog.AddLayer(VectorLayer::FromFeatures("urban_atlas", land)).ok()) {
    return 1;
  }
  std::printf("datasets: ahn2 %llu points | osm %zu features | urban_atlas "
              "%zu features (%zu fast-transit corridors)\n",
              static_cast<unsigned long long>((*table)->num_rows()),
              roads.size(), land.size(), n_corridors);

  sql::Session session(&catalog);
  Box e = opts.extent;
  char region[256];
  std::snprintf(region, sizeof(region), "BOX(%.1f %.1f, %.1f %.1f)",
                e.min_x + e.width() * 0.3, e.min_y + e.height() * 0.3,
                e.min_x + e.width() * 0.5, e.min_y + e.height() * 0.5);

  struct Q {
    const char* label;
    std::string text;
  } queries[] = {
      {"points in region (scenario 1)",
       std::string("SELECT COUNT(*) FROM ahn2 WHERE ST_Within(pt, '") +
           region + "')"},
      {"roads intersecting region (scenario 1)",
       std::string("SELECT COUNT(*) FROM osm WHERE ST_Intersects(geom, '") +
           region + "')"},
      {"points near fast transit roads",
       "SELECT COUNT(*) FROM ahn2 WHERE NEAR(urban_atlas, 12210, 20)"},
      {"avg elevation near fast transit roads",
       "SELECT AVG(z) FROM ahn2 WHERE NEAR(urban_atlas, 12210, 20)"},
      {"avg elevation of vegetation in region",
       std::string("SELECT AVG(z), COUNT(*) FROM ahn2 WHERE ST_Within(pt, '") +
           region + "') AND classification BETWEEN 3 AND 5"},
      {"building returns above median intensity",
       std::string("SELECT COUNT(*) FROM ahn2 WHERE ST_Within(pt, '") +
           region + "') AND classification = 6 AND intensity >= 120"},
  };

  TablePrinter out({"query", "result", "latency ms"});
  std::vector<std::string> profiles;
  for (const Q& q : queries) {
    std::string result_text = "?";
    double ms = TimeMs([&] {
      auto rs = session.Execute(q.text);
      if (!rs.ok()) {
        std::fprintf(stderr, "query failed: %s\n  %s\n",
                     rs.status().ToString().c_str(), q.text.c_str());
        std::exit(1);
      }
      result_text = rs->rows.empty() ? "-" : rs->rows[0][0].ToString();
    });
    out.Row({q.label, result_text, TablePrinter::Num(ms)});
    profiles.push_back(std::string("-- ") + q.label + "\n" +
                       session.last_profile().ToString());
  }

  std::printf("\nper-operator execution times (the demo's plan view):\n");
  // Print the flagship join profile in full and the others' totals.
  std::printf("%s\n", profiles[3].c_str());

  std::printf(
      "expected shape (paper): the imprint filter dominates nothing — most "
      "time sits in refinement for\nbuffered joins; thematic predicates ride "
      "the same imprint machinery; the file-based approach has\nno "
      "counterpart for these queries at all (the expressiveness argument of "
      "section 2.2).\n");
  return 0;
}
