// SQL robustness: deterministic pseudo-random inputs must never crash the
// lexer/parser/planner/executor — every outcome is either a result set or
// a clean Status. Also mutates valid statements (truncation, token swaps).
//
// Every fuzzed statement is executed TWICE through a session whose result
// cache is enabled — the first execution misses, the second is served or
// seeded by the cache — and both outcomes must agree cell for cell
// (numbers compared bitwise, so NaN aggregates count as equal). A fuzzer
// that never crashes but silently returns stale or aliased cache entries
// would fail here.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "pointcloud/generator.h"
#include "sql/executor.h"
#include "pointcloud/vector_gen.h"
#include "sql/parser.h"
#include "sql/session.h"
#include "util/rng.h"

namespace geocol {
namespace {

bool SameValue(const sql::Value& a, const sql::Value& b) {
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case sql::Value::Kind::kNull:
      return true;
    case sql::Value::Kind::kText:
      return a.text == b.text;
    case sql::Value::Kind::kNumber: {
      uint64_t ba, bb;
      std::memcpy(&ba, &a.number, sizeof(ba));
      std::memcpy(&bb, &b.number, sizeof(bb));
      return ba == bb;
    }
  }
  return false;
}

bool SameResultSet(const sql::ResultSet& a, const sql::ResultSet& b) {
  if (a.columns != b.columns || a.rows.size() != b.rows.size()) return false;
  for (size_t r = 0; r < a.rows.size(); ++r) {
    if (a.rows[r].size() != b.rows[r].size()) return false;
    for (size_t c = 0; c < a.rows[r].size(); ++c) {
      if (!SameValue(a.rows[r][c], b.rows[r][c])) return false;
    }
  }
  return true;
}

// Session options with the result cache enabled, so the second execution of
// every fuzzed statement runs miss-then-hit through src/cache/.
sql::SessionOptions CacheOnOptions() {
  auto opts = sql::SessionOptions::FromEnv();
  opts.cache_budget_bytes = 32ll << 20;
  return opts;
}

// Executes `text` twice through the same session and checks the two
// outcomes agree: same ok-ness, same error code on failure, identical
// result set on success. EXPLAIN ANALYZE output is exempt from the row
// diff — its rows are the span tree, which embeds wall-clock timings.
Result<sql::ResultSet> ExecuteTwice(sql::Session& session,
                                    const std::string& text) {
  auto first = session.Execute(text);
  auto second = session.Execute(text);
  EXPECT_EQ(first.ok(), second.ok()) << text;
  if (!first.ok() && !second.ok()) {
    EXPECT_EQ(first.status().code(), second.status().code()) << text;
  }
  if (first.ok() && second.ok() &&
      !(first->columns.size() == 1 &&
        first->columns[0] == "explain analyze")) {
    EXPECT_TRUE(SameResultSet(*first, *second)) << text;
  }
  return first;
}

class SqlFuzzTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    AhnGeneratorOptions opts;
    opts.extent = Box(85000, 444000, 85060, 444060);
    AhnGenerator gen(opts);
    auto table = gen.GenerateTable(5000);
    ASSERT_TRUE(table.ok());
    catalog_ = new Catalog();
    ASSERT_TRUE(catalog_->AddPointCloud("ahn2", *table).ok());
    TerrainModel terrain(opts.seed);
    OsmGenerator og(1, opts.extent, terrain);
    ASSERT_TRUE(catalog_
                    ->AddLayer(VectorLayer::FromFeatures(
                        "osm", og.GenerateRoads(5)))
                    .ok());
  }
  static void TearDownTestSuite() {
    delete catalog_;
    catalog_ = nullptr;
  }
  static Catalog* catalog_;
};

Catalog* SqlFuzzTest::catalog_ = nullptr;

const char* kTokens[] = {
    "SELECT", "FROM",  "WHERE", "AND",   "BETWEEN", "LIMIT",  "ORDER",
    "BY",     "DESC",  "COUNT", "AVG",   "MIN",     "MAX",    "SUM",
    "NEAR",   "ST_WITHIN", "ST_DWITHIN", "ST_INTERSECTS", "EXPLAIN",
    "ANALYZE",
    "x",      "y",     "z",    "ahn2",  "osm",    "pt",     "geom",
    "bogus",  "*",     ",",    "(",     ")",      "=",      "<",
    ">",      "<=",    ">=",   ";",     "5",      "-3.25",  "1e9",
    "'POINT (1 2)'", "'BOX(0 0, 1 1)'", "'not wkt'", "''", "id", "class",
};

TEST_F(SqlFuzzTest, RandomTokenSoupNeverCrashes) {
  Rng rng(701);
  sql::Session session(catalog_, CacheOnOptions());
  int executed = 0;
  for (int iter = 0; iter < 3000; ++iter) {
    // Half the soups get a plausible prefix so some reach the executor.
    std::string text = (iter % 2 == 0) ? "SELECT COUNT ( * ) FROM ahn2 " : "";
    int len = 1 + static_cast<int>(rng.Uniform(24));
    for (int t = 0; t < len; ++t) {
      text += kTokens[rng.Uniform(std::size(kTokens))];
      text += ' ';
    }
    auto rs = ExecuteTwice(session, text);
    executed += rs.ok();
    if (!rs.ok()) {
      // Errors must be classified, never Internal.
      EXPECT_NE(rs.status().code(), StatusCode::kInternal) << text;
    }
  }
  // Sanity: the session must still be fully functional after the abuse.
  (void)executed;
  auto rs = session.Execute("SELECT COUNT(*) FROM ahn2");
  ASSERT_TRUE(rs.ok());
  auto table = catalog_->GetTable("ahn2");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(rs->rows[0][0].number,
            static_cast<double>((*table)->num_rows()));
}

TEST_F(SqlFuzzTest, TruncationsOfValidQueryNeverCrash) {
  sql::Session session(catalog_, CacheOnOptions());
  const std::string query =
      "SELECT COUNT(*), AVG(z) FROM ahn2 WHERE ST_Within(pt, "
      "'BOX(85010 444010, 85050 444050)') AND classification BETWEEN 2 AND "
      "6 ORDER BY z DESC LIMIT 10";
  for (size_t cut = 0; cut <= query.size(); ++cut) {
    auto rs = ExecuteTwice(session, query.substr(0, cut));
    if (!rs.ok()) {
      EXPECT_NE(rs.status().code(), StatusCode::kInternal)
          << "cut at " << cut;
    }
  }
}

TEST_F(SqlFuzzTest, RandomByteMutationsNeverCrash) {
  Rng rng(702);
  sql::Session session(catalog_, CacheOnOptions());
  const std::string base =
      "SELECT x, y FROM ahn2 WHERE ST_DWithin(pt, 'POINT (85030 444030)', "
      "12.5) LIMIT 5";
  for (int iter = 0; iter < 2000; ++iter) {
    std::string text = base;
    int mutations = 1 + static_cast<int>(rng.Uniform(4));
    for (int m = 0; m < mutations; ++m) {
      size_t at = rng.Uniform(text.size());
      char c = static_cast<char>(32 + rng.Uniform(95));  // printable ASCII
      text[at] = c;
    }
    auto rs = ExecuteTwice(session, text);
    if (!rs.ok()) {
      EXPECT_NE(rs.status().code(), StatusCode::kInternal) << text;
    }
  }
}

TEST_F(SqlFuzzTest, DeepNestingAndLongInputs) {
  sql::Session session(catalog_, CacheOnOptions());
  // Very long predicate chain.
  std::string text = "SELECT COUNT(*) FROM ahn2 WHERE z >= 0";
  for (int i = 0; i < 500; ++i) text += " AND z <= 1000";
  auto rs = ExecuteTwice(session, text);
  EXPECT_TRUE(rs.ok());
  // Pathologically long identifier.
  std::string long_ident(10000, 'a');
  EXPECT_FALSE(ExecuteTwice(session, "SELECT " + long_ident + " FROM ahn2")
                   .ok());
  // Deeply parenthesised garbage.
  std::string parens = "SELECT x FROM ahn2 WHERE " + std::string(2000, '(');
  EXPECT_FALSE(ExecuteTwice(session, parens).ok());
}

// Multi-tenant concurrency: a fuzzed statement stream executed through 4
// threads whose sessions share one engine and result cache must produce,
// statement for statement, the same outcome as a serial replay of the
// identical stream — same ok-ness, same error Status, bit-identical
// result digest. The cache is bound once before the threads start
// (rebinding an engine's cache is not safe against in-flight queries,
// which is also why the query server pins the budget at startup).
TEST_F(SqlFuzzTest, ConcurrentSessionsMatchSerialReplay) {
  Rng rng(704);
  std::vector<std::string> statements;
  for (int i = 0; i < 240; ++i) {
    if (i % 2 == 0) {
      // Structured viewport statement; always parses, often non-empty.
      double x0 = 85000 + rng.UniformDouble(0, 60);
      double x1 = x0 + rng.UniformDouble(0, 30);
      double y0 = 444000 + rng.UniformDouble(0, 60);
      double y1 = y0 + rng.UniformDouble(0, 30);
      char buf[256];
      std::snprintf(buf, sizeof(buf),
                    "SELECT COUNT(*), AVG(z) FROM ahn2 WHERE x BETWEEN "
                    "%.17g AND %.17g AND y BETWEEN %.17g AND %.17g",
                    x0, x1, y0, y1);
      statements.push_back(buf);
    } else {
      // Token soup with a plausible prefix so some reach the executor.
      std::string text = "SELECT COUNT ( * ) FROM ahn2 ";
      int len = 1 + static_cast<int>(rng.Uniform(16));
      for (int t = 0; t < len; ++t) {
        text += kTokens[rng.Uniform(std::size(kTokens))];
        text += ' ';
      }
      statements.push_back(std::move(text));
    }
  }

  // Bind the shared result cache once, before any concurrency.
  {
    sql::Session binder(catalog_, CacheOnOptions());
    ASSERT_TRUE(binder.Execute("SELECT COUNT(*) FROM ahn2").ok());
  }
  sql::SessionOptions shared = sql::SessionOptions::FromEnv();
  shared.cache_budget_bytes = -1;  // inherit the bound cache, never rebind

  struct Outcome {
    bool ok = false;
    uint32_t digest = 0;
    bool skip_digest = false;  // EXPLAIN ANALYZE rows embed wall clock
    std::string error;
  };
  std::vector<Outcome> concurrent(statements.size());
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      sql::Session session(catalog_, shared);
      for (size_t i = t; i < statements.size(); i += kThreads) {
        auto rs = session.Execute(statements[i]);
        Outcome& o = concurrent[i];
        o.ok = rs.ok();
        if (rs.ok()) {
          o.skip_digest = rs->columns.size() == 1 &&
                          rs->columns[0] == "explain analyze";
          if (!o.skip_digest) o.digest = sql::ResultSetDigest(*rs);
        } else {
          o.error = rs.status().ToString();
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  sql::Session serial(catalog_, shared);
  for (size_t i = 0; i < statements.size(); ++i) {
    auto rs = serial.Execute(statements[i]);
    ASSERT_EQ(concurrent[i].ok, rs.ok()) << statements[i];
    if (rs.ok()) {
      if (!concurrent[i].skip_digest) {
        EXPECT_EQ(concurrent[i].digest, sql::ResultSetDigest(*rs))
            << statements[i];
      }
    } else {
      EXPECT_EQ(concurrent[i].error, rs.status().ToString())
          << statements[i];
    }
  }
}

TEST_F(SqlFuzzTest, ParserAloneOnRandomUnicodeBytes) {
  Rng rng(703);
  for (int iter = 0; iter < 2000; ++iter) {
    std::string text;
    int len = static_cast<int>(rng.Uniform(64));
    for (int i = 0; i < len; ++i) {
      text += static_cast<char>(rng.Uniform(256));
    }
    auto stmt = sql::Parse(text);  // must not crash; errors are fine
    (void)stmt;
  }
}

}  // namespace
}  // namespace geocol
