#include "core/imprints_io.h"

#include <cmath>
#include <cstring>

#include "telemetry/metrics.h"
#include "util/binary_io.h"
#include "util/crc32c.h"
#include "util/logging.h"

namespace geocol {

namespace {

constexpr char kImprintsMagic[4] = {'G', 'I', 'M', '2'};
constexpr char kImprintsMagicV1[4] = {'G', 'I', 'M', '1'};

/// Parses the body shared by GIM1 and GIM2 (everything after the magic).
Result<ImprintsIndex> ParseImprintsBody(BufferReader* r,
                                        const std::string& path) {
  uint64_t epoch = 0, rows = 0;
  uint32_t values_per_line = 0, num_bins = 0;
  GEOCOL_RETURN_NOT_OK(r->ReadScalar(&epoch));
  GEOCOL_RETURN_NOT_OK(r->ReadScalar(&rows));
  GEOCOL_RETURN_NOT_OK(r->ReadScalar(&values_per_line));
  GEOCOL_RETURN_NOT_OK(r->ReadScalar(&num_bins));
  if (num_bins < 2 || num_bins > 64) {
    return Status::Corruption("imprints file: bad bin count: " + path);
  }
  std::vector<double> bounds;
  GEOCOL_RETURN_NOT_OK(r->ReadVector(&bounds, num_bins));
  GEOCOL_ASSIGN_OR_RETURN(BinBounds bins, BinBounds::FromRawUppers(bounds));

  uint64_t dict_size = 0;
  GEOCOL_RETURN_NOT_OK(r->ReadScalar(&dict_size));
  std::vector<uint32_t> packed;
  GEOCOL_RETURN_NOT_OK(r->ReadVector(&packed, dict_size));
  std::vector<ImprintsIndex::DictEntry> dict(packed.size());
  for (size_t i = 0; i < packed.size(); ++i) {
    dict[i].count = packed[i] & 0x7FFFFFFFu;
    dict[i].repeat = (packed[i] & 0x80000000u) != 0;
  }
  uint64_t num_vectors = 0;
  GEOCOL_RETURN_NOT_OK(r->ReadScalar(&num_vectors));
  std::vector<uint64_t> vectors;
  GEOCOL_RETURN_NOT_OK(r->ReadVector(&vectors, num_vectors));
  return ImprintsIndex::Restore(bins, values_per_line, rows, epoch,
                                std::move(vectors), std::move(dict));
}

}  // namespace

uint32_t ColumnFingerprint(const Column& column) {
  uint8_t type_byte = static_cast<uint8_t>(column.type());
  uint32_t crc = Crc32c(&type_byte, 1);
  // Fold in the payload CRC instead of re-scanning the bytes: on the paged
  // tier payload_crc32c() is answered from the on-disk chunk directory, so
  // sidecar freshness checks never fault a single chunk. For resident
  // columns Crc32cCombine(crc, Crc32c(data), n) == Crc32cExtend(crc, data,
  // n), so fingerprints (and existing sidecars) are unchanged.
  return Crc32cCombine(crc, column.payload_crc32c(), column.raw_size_bytes());
}

Status WriteImprintsFile(const ImprintsIndex& index, const std::string& path,
                         uint32_t column_fingerprint) {
  BufferWriter w;
  w.WriteBytes(kImprintsMagic, 4);
  w.WriteScalar<uint32_t>(column_fingerprint);
  w.WriteScalar<uint64_t>(index.built_epoch());
  w.WriteScalar<uint64_t>(index.num_rows());
  w.WriteScalar<uint32_t>(index.values_per_line());
  w.WriteScalar<uint32_t>(index.num_bins());
  for (uint32_t b = 0; b < index.num_bins(); ++b) {
    w.WriteScalar<double>(index.bins().upper(b));
  }
  const auto& dict = index.dictionary();
  w.WriteScalar<uint64_t>(dict.size());
  for (const auto& e : dict) {
    // Packed: low 31 bits count, top bit repeat.
    uint32_t packed = e.count | (e.repeat ? 0x80000000u : 0u);
    w.WriteScalar<uint32_t>(packed);
  }
  w.WriteScalar<uint64_t>(index.vectors().size());
  w.WriteVector(index.vectors());
  // Whole-file CRC32C footer, then an atomic publish: a reader sees the
  // previous sidecar or this one in full, and any bit rot is detected.
  w.WriteScalar<uint32_t>(Crc32c(w.buffer().data(), w.size()));
  const auto& buf = w.buffer();
  return WriteFileAtomic(path, buf.data(), buf.size());
}

Result<ImprintsIndex> ReadImprintsFile(const std::string& path,
                                       ImprintsFileMeta* meta) {
  std::vector<uint8_t> data;
  GEOCOL_RETURN_NOT_OK(ReadFileBytes(path, &data));
  if (data.size() < 4) {
    return Status::Corruption("imprints file too small: " + path);
  }
  bool legacy = std::memcmp(data.data(), kImprintsMagicV1, 4) == 0;
  if (!legacy) {
    if (std::memcmp(data.data(), kImprintsMagic, 4) != 0) {
      return Status::Corruption("bad imprints file magic: " + path);
    }
    if (data.size() < 8) {
      return Status::Corruption("imprints file too small: " + path);
    }
    uint32_t stored = 0;
    std::memcpy(&stored, data.data() + data.size() - 4, 4);
    data.resize(data.size() - 4);
    uint32_t computed = Crc32c(data.data(), data.size());
    if (stored != computed) {
      return Status::Corruption("imprints file crc mismatch: " + path);
    }
  }
  BufferReader r(data.data() + 4, data.size() - 4);
  if (!legacy) {
    uint32_t fingerprint = 0;
    GEOCOL_RETURN_NOT_OK(r.ReadScalar(&fingerprint));
    if (meta != nullptr) {
      meta->has_fingerprint = true;
      meta->column_fingerprint = fingerprint;
    }
  }
  return ParseImprintsBody(&r, path);
}

Result<ImprintsIndex> LoadOrBuildImprints(const Column& column,
                                          const std::string& path,
                                          const ImprintsOptions& options,
                                          ThreadPool* pool) {
  // One CRC pass over the column payload per sidecar adoption (cached by
  // ImprintManager afterwards) — without it, a sidecar keyed only by
  // column name could be adopted by a same-named, same-sized column of a
  // different table and silently mis-prune scans.
  const uint32_t fingerprint = ColumnFingerprint(column);
  GEOCOL_METRIC_COUNTER(c_loads, "geocol_imprint_sidecar_loads_total");
  GEOCOL_METRIC_COUNTER(c_quarantines, "geocol_imprint_sidecar_quarantines_total");
  GEOCOL_METRIC_COUNTER(c_stale, "geocol_imprint_sidecar_stale_total");
  bool overwrite_stale = false;
  if (PathExists(path)) {
    ImprintsFileMeta meta;
    Result<ImprintsIndex> loaded = ReadImprintsFile(path, &meta);
    if (loaded.ok() && meta.has_fingerprint &&
        meta.column_fingerprint == fingerprint &&
        loaded->built_epoch() == column.epoch() &&
        loaded->num_rows() == column.size()) {
      c_loads.Increment();
      return loaded;
    }
    if (!loaded.ok()) {
      // Corrupt sidecar: keep the evidence out of the load path and
      // rebuild from the (authoritative) column data.
      c_quarantines.Increment();
      std::string quarantine = path + ".quarantined";
      GEOCOL_LOG(Warning)
              .With("path", path)
              .With("quarantine", quarantine)
              .With("error", loaded.status().ToString())
          << "quarantining corrupt imprints sidecar";
      Status moved = RenameFile(path, quarantine);
      if (!moved.ok()) {
        GEOCOL_LOG(Warning).With("path", path).With("error", moved.ToString())
            << "could not quarantine sidecar";
      }
    } else {
      c_stale.Increment();
      overwrite_stale = true;
      GEOCOL_LOG(Info)
              .With("path", path)
              .With("sidecar_fingerprint",
                    meta.has_fingerprint
                        ? std::to_string(meta.column_fingerprint)
                        : std::string("none"))
              .With("column_fingerprint", fingerprint)
              .With("sidecar_epoch", loaded->built_epoch())
              .With("column_epoch", column.epoch())
              .With("sidecar_rows", loaded->num_rows())
              .With("column_rows", column.size())
          << "imprints sidecar is stale; rebuilding";
    }
  }
  GEOCOL_ASSIGN_OR_RETURN(ImprintsIndex built,
                          ImprintsIndex::Build(column, options, pool));
  Status persisted = WriteImprintsFile(built, path, fingerprint);
  if (!persisted.ok()) {
    // The sidecar is cache; the freshly built index is still good.
    GEOCOL_LOG(Warning).With("path", path).With("error", persisted.ToString())
        << "could not persist imprints sidecar";
  } else if (overwrite_stale) {
    GEOCOL_LOG(Info).With("path", path) << "rewrote imprints sidecar";
  }
  return built;
}

}  // namespace geocol
