// A dense bit vector with word-level scan helpers, used for selection
// vectors produced by the imprint filter and for grid-cell occupancy masks.
#ifndef GEOCOL_UTIL_BITVECTOR_H_
#define GEOCOL_UTIL_BITVECTOR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace geocol {

/// Fixed-size dense bitset sized at runtime.
///
/// Bits are stored LSB-first inside 64-bit words. All operations that take
/// an index assume `index < size()`; debug builds assert.
class BitVector {
 public:
  BitVector() = default;
  explicit BitVector(size_t size, bool initial = false);

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void Resize(size_t size, bool value = false);

  bool Get(size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1;
  }
  void Set(size_t i) { words_[i >> 6] |= (uint64_t{1} << (i & 63)); }
  void Clear(size_t i) { words_[i >> 6] &= ~(uint64_t{1} << (i & 63)); }
  void Assign(size_t i, bool v) { v ? Set(i) : Clear(i); }

  /// Sets bits [begin, end).
  void SetRange(size_t begin, size_t end);

  void SetAll();
  void ClearAll();

  /// Number of set bits.
  size_t Count() const;

  /// Number of set bits in [begin, end). Lets callers pre-size row-id
  /// buffers for one morsel without paying a full-vector Count().
  size_t CountInRange(size_t begin, size_t end) const;

  /// Index of the first set bit at or after `from`, or size() if none.
  size_t FindNext(size_t from) const;

  /// In-place logical ops; both operands must have equal size.
  void And(const BitVector& other);
  void Or(const BitVector& other);
  void Not();

  bool operator==(const BitVector& other) const {
    return size_ == other.size_ && words_ == other.words_;
  }

  /// Appends the index of every set bit to `out`.
  void CollectSetBits(std::vector<uint64_t>* out) const;

  /// Appends the index of every set bit in [begin, end) to `out`. Used by
  /// the morsel-driven executor to split a selection vector across workers;
  /// 64-aligned `begin`/`end` keep the scan on whole words.
  void CollectSetBitsInRange(size_t begin, size_t end,
                             std::vector<uint64_t>* out) const;

  /// ORs `nbits` bits from `words` (LSB-first) into the vector starting at
  /// `bit_offset`. Bits >= nbits in the source must be zero. This is the
  /// word-granular sink of the SIMD range kernels: a whole selection word
  /// lands with two |= instead of 64 Set() calls. Safe under the morsel
  /// executor because morsel boundaries are 64-aligned, so concurrent
  /// writers touch disjoint words whenever bit_offset is 64-aligned.
  void OrWordsAt(size_t bit_offset, const uint64_t* words, size_t nbits);

  const std::vector<uint64_t>& words() const { return words_; }
  uint64_t* mutable_words() { return words_.data(); }

  /// Heap bytes used by the word array.
  size_t MemoryBytes() const { return words_.size() * sizeof(uint64_t); }

 private:
  // Zeroes bits beyond size_ in the last word so Count() stays exact.
  void MaskTail();

  size_t size_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace geocol

#endif  // GEOCOL_UTIL_BITVECTOR_H_
