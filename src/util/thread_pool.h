// Fixed-size thread pool shared by the bulk loaders (per-file LAS
// conversion, per-tile generation) and the morsel-driven parallel query
// executor of the spatial engine.
#ifndef GEOCOL_UTIL_THREAD_POOL_H_
#define GEOCOL_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace geocol {

/// A minimal fixed-size worker pool.
///
/// Tasks are arbitrary void() callables. Two usage styles coexist:
///  - fork/join via Submit + WaitIdle (the loaders): WaitIdle blocks until
///    the queue drains and every worker is parked.
///  - scoped parallel loops via ParallelFor: each call tracks its own
///    completion, so multiple threads may run ParallelFor on one pool
///    concurrently, and a ParallelFor may be issued from inside a worker
///    task (nested parallelism). The calling thread participates in the
///    loop, so progress is guaranteed even when every worker is busy.
///
/// Submit is reentrant: a worker task may Submit further tasks; WaitIdle
/// observes them because the submitting task is still active. Tasks must
/// not throw — the pool does not fence exceptions.
class ThreadPool {
 public:
  /// `num_threads == 0` selects std::thread::hardware_concurrency().
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void Submit(std::function<void()> task);

  /// Blocks until all submitted tasks have completed. Do not mix with
  /// concurrent ParallelFor callers on the same pool — it waits for the
  /// whole queue, not just the caller's tasks.
  void WaitIdle();

  size_t num_threads() const { return workers_.size(); }

  /// Runs fn(i) for i in [0, n) across the pool workers plus the calling
  /// thread and returns when every index has completed. Indices are claimed
  /// dynamically (morsel-driven), so uneven per-index work balances itself.
  /// Safe to call concurrently from several threads and recursively from
  /// inside worker tasks.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  size_t active_ = 0;
  bool shutdown_ = false;
};

}  // namespace geocol

#endif  // GEOCOL_UTIL_THREAD_POOL_H_
