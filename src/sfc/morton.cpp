#include "sfc/morton.h"

#include <algorithm>

namespace geocol {

namespace {
// Spreads the low 32 bits of v to the even bit positions of a 64-bit word.
uint64_t Part1By1(uint32_t v) {
  uint64_t x = v;
  x = (x | (x << 16)) & 0x0000FFFF0000FFFFULL;
  x = (x | (x << 8)) & 0x00FF00FF00FF00FFULL;
  x = (x | (x << 4)) & 0x0F0F0F0F0F0F0F0FULL;
  x = (x | (x << 2)) & 0x3333333333333333ULL;
  x = (x | (x << 1)) & 0x5555555555555555ULL;
  return x;
}

uint32_t Compact1By1(uint64_t x) {
  x &= 0x5555555555555555ULL;
  x = (x | (x >> 1)) & 0x3333333333333333ULL;
  x = (x | (x >> 2)) & 0x0F0F0F0F0F0F0F0FULL;
  x = (x | (x >> 4)) & 0x00FF00FF00FF00FFULL;
  x = (x | (x >> 8)) & 0x0000FFFF0000FFFFULL;
  x = (x | (x >> 16)) & 0x00000000FFFFFFFFULL;
  return static_cast<uint32_t>(x);
}
}  // namespace

uint64_t MortonEncode(uint32_t x, uint32_t y) {
  return Part1By1(x) | (Part1By1(y) << 1);
}

std::pair<uint32_t, uint32_t> MortonDecode(uint64_t code) {
  return {Compact1By1(code), Compact1By1(code >> 1)};
}

uint64_t MortonEncodeScaled(double x, double y, const Box& extent,
                            uint32_t bits) {
  double w = std::max(extent.width(), 1e-12);
  double h = std::max(extent.height(), 1e-12);
  // Scale by 2^bits (clamped) so grid cell k covers exactly
  // [k/2^bits, (k+1)/2^bits) of the extent — this keeps codes aligned
  // with binary quadrant subdivision, which the Morton-interval query
  // decomposition depends on.
  double scale = static_cast<double>(uint64_t{1} << bits);
  uint64_t max_cell = (uint64_t{1} << bits) - 1;
  double fx = std::clamp((x - extent.min_x) / w, 0.0, 1.0);
  double fy = std::clamp((y - extent.min_y) / h, 0.0, 1.0);
  uint32_t xi = static_cast<uint32_t>(
      std::min<uint64_t>(static_cast<uint64_t>(fx * scale), max_cell));
  uint32_t yi = static_cast<uint32_t>(
      std::min<uint64_t>(static_cast<uint64_t>(fy * scale), max_cell));
  return MortonEncode(xi, yi);
}

}  // namespace geocol
