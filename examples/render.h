// Tiny software renderer for the example applications: rasterises point
// clouds (elevation/classification shading) and vector layers into PPM
// images — the stand-in for the demo's QGIS visualisation (Figures 1/2).
#ifndef GEOCOL_EXAMPLES_RENDER_H_
#define GEOCOL_EXAMPLES_RENDER_H_

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "columns/flat_table.h"
#include "geom/geometry.h"
#include "geom/predicates.h"
#include "gis/layer.h"
#include "pointcloud/terrain.h"
#include "util/status.h"

namespace geocol {
namespace examples {

/// A simple RGB raster with world-coordinate addressing.
class Canvas {
 public:
  Canvas(const Box& world, int width, int height)
      : world_(world), width_(width), height_(height),
        pixels_(static_cast<size_t>(width) * height * 3, 20) {}

  int width() const { return width_; }
  int height() const { return height_; }

  void Set(double wx, double wy, uint8_t r, uint8_t g, uint8_t b) {
    int px = static_cast<int>((wx - world_.min_x) / world_.width() * width_);
    int py = static_cast<int>((wy - world_.min_y) / world_.height() * height_);
    SetPixel(px, height_ - 1 - py, r, g, b);
  }

  void SetPixel(int px, int py, uint8_t r, uint8_t g, uint8_t b) {
    if (px < 0 || py < 0 || px >= width_ || py >= height_) return;
    size_t at = (static_cast<size_t>(py) * width_ + px) * 3;
    pixels_[at] = r;
    pixels_[at + 1] = g;
    pixels_[at + 2] = b;
  }

  /// Draws a world-coordinate segment (Bresenham-ish supersampling).
  void Line(Point a, Point b, uint8_t r, uint8_t g, uint8_t bl) {
    double dx = b.x - a.x, dy = b.y - a.y;
    double len = std::max(std::abs(dx) / world_.width() * width_,
                          std::abs(dy) / world_.height() * height_);
    int steps = std::max(2, static_cast<int>(len * 1.5));
    for (int i = 0; i <= steps; ++i) {
      double t = static_cast<double>(i) / steps;
      Set(a.x + dx * t, a.y + dy * t, r, g, bl);
    }
  }

  Status WritePpm(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) return Status::IOError("cannot open " + path);
    std::fprintf(f, "P6\n%d %d\n255\n", width_, height_);
    std::fwrite(pixels_.data(), 1, pixels_.size(), f);
    if (std::fclose(f) != 0) return Status::IOError("close failed");
    return Status::OK();
  }

 private:
  Box world_;
  int width_, height_;
  std::vector<uint8_t> pixels_;
};

/// Colour for a LAS classification code (roughly QGIS's default ramp).
inline void ClassColor(uint8_t cls, double z_frac, uint8_t* r, uint8_t* g,
                       uint8_t* b) {
  auto shade = [&](int base_r, int base_g, int base_b) {
    double s = 0.45 + 0.55 * z_frac;
    *r = static_cast<uint8_t>(std::clamp(base_r * s, 0.0, 255.0));
    *g = static_cast<uint8_t>(std::clamp(base_g * s, 0.0, 255.0));
    *b = static_cast<uint8_t>(std::clamp(base_b * s, 0.0, 255.0));
  };
  switch (cls) {
    case kClassWater: shade(60, 110, 220); break;
    case kClassBuilding: shade(220, 90, 70); break;
    case kClassLowVegetation: shade(120, 200, 90); break;
    case kClassMediumVegetation: shade(70, 170, 70); break;
    case kClassHighVegetation: shade(30, 130, 50); break;
    case kClassGround:
    default: shade(180, 160, 120); break;
  }
}

/// Renders the rows of a LAS-schema table (all rows when `rows` empty).
inline Status RenderPointCloud(const FlatTable& table,
                               const std::vector<uint64_t>& rows,
                               const std::string& path, int width = 800) {
  ColumnPtr xc = table.column("x"), yc = table.column("y"),
            zc = table.column("z"), cc = table.column("classification");
  if (xc == nullptr || yc == nullptr || zc == nullptr || cc == nullptr) {
    return Status::InvalidArgument("table lacks LAS columns");
  }
  Box world;
  auto each = [&](auto&& fn) {
    if (rows.empty()) {
      for (uint64_t r = 0; r < table.num_rows(); ++r) fn(r);
    } else {
      for (uint64_t r : rows) fn(r);
    }
  };
  each([&](uint64_t r) { world.Extend(xc->GetDouble(r), yc->GetDouble(r)); });
  if (world.empty()) return Status::InvalidArgument("nothing to render");
  double zmin = zc->Stats().min, zmax = std::max(zc->Stats().max, zmin + 1e-9);
  int height = std::max(
      1, static_cast<int>(width * world.height() / std::max(world.width(), 1e-9)));
  Canvas canvas(world, width, height);
  each([&](uint64_t r) {
    double z_frac = (zc->GetDouble(r) - zmin) / (zmax - zmin);
    uint8_t cr, cg, cb;
    ClassColor(static_cast<uint8_t>(cc->GetInt64(r)), z_frac, &cr, &cg, &cb);
    canvas.Set(xc->GetDouble(r), yc->GetDouble(r), cr, cg, cb);
  });
  return canvas.WritePpm(path);
}

/// Renders vector layers (roads/land use) over a base canvas — Figure 2.
inline Status RenderLayers(const Box& world,
                           const std::vector<const VectorLayer*>& layers,
                           const std::string& path, int width = 800) {
  int height = std::max(
      1, static_cast<int>(width * world.height() / std::max(world.width(), 1e-9)));
  Canvas canvas(world, width, height);
  for (const VectorLayer* layer : layers) {
    for (const VectorFeature& f : layer->features()) {
      uint8_t r = 200, g = 200, b = 200;
      switch (static_cast<UrbanAtlasClass>(f.feature_class)) {
        case UrbanAtlasClass::kContinuousUrbanFabric: r = 180; g = 60; b = 60; break;
        case UrbanAtlasClass::kDiscontinuousUrbanFabric: r = 220; g = 120; b = 110; break;
        case UrbanAtlasClass::kIndustrialCommercial: r = 150; g = 100; b = 160; break;
        case UrbanAtlasClass::kFastTransitRoads: r = 255; g = 220; b = 40; break;
        case UrbanAtlasClass::kOtherRoads: r = 230; g = 230; b = 230; break;
        case UrbanAtlasClass::kGreenUrbanAreas: r = 110; g = 200; b = 110; break;
        case UrbanAtlasClass::kAgricultural: r = 200; g = 220; b = 130; break;
        case UrbanAtlasClass::kForests: r = 40; g = 130; b = 60; break;
        case UrbanAtlasClass::kWater: r = 70; g = 120; b = 220; break;
      }
      // Road classes use a separate palette.
      switch (static_cast<RoadClass>(f.feature_class)) {
        case RoadClass::kMotorway: r = 255; g = 160; b = 0; break;
        case RoadClass::kPrimary: r = 250; g = 240; b = 110; break;
        case RoadClass::kSecondary: r = 240; g = 240; b = 240; break;
        case RoadClass::kResidential: r = 190; g = 190; b = 190; break;
        default: break;
      }
      if (f.geometry.is_line()) {
        const auto& pts = f.geometry.line().points;
        for (size_t i = 1; i < pts.size(); ++i) {
          canvas.Line(pts[i - 1], pts[i], r, g, b);
        }
      } else if (f.geometry.is_polygon()) {
        // Fill by coarse sampling of the envelope.
        Box env = f.geometry.Envelope();
        int samples = 64;
        for (int sy = 0; sy < samples; ++sy) {
          for (int sx = 0; sx < samples; ++sx) {
            Point p{env.min_x + env.width() * (sx + 0.5) / samples,
                    env.min_y + env.height() * (sy + 0.5) / samples};
            if (PointInPolygon(p, f.geometry.polygon())) {
              canvas.Set(p.x, p.y, r, g, b);
            }
          }
        }
      } else if (f.geometry.is_multipolygon()) {
        for (const Polygon& poly : f.geometry.multipolygon().polygons) {
          for (size_t i = 0, n = poly.shell.points.size(); i < n; ++i) {
            canvas.Line(poly.shell.points[i],
                        poly.shell.points[(i + 1) % n], r, g, b);
          }
        }
      } else if (f.geometry.is_point()) {
        canvas.Set(f.geometry.point().x, f.geometry.point().y, r, g, b);
      }
    }
  }
  return canvas.WritePpm(path);
}

}  // namespace examples
}  // namespace geocol

#endif  // GEOCOL_EXAMPLES_RENDER_H_
