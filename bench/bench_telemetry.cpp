// E12: telemetry overhead on the hot query path.
//
// The metrics registry promises "always on, never felt": sharded relaxed
// atomic counters plus a single enabled-flag load per update. This harness
// quantifies that promise on the same selection workload as E3 (imprint
// filter + refine), comparing counters enabled vs disabled. The acceptance
// bar from DESIGN.md §10 is <2% overhead for counters-only telemetry.
#include <cstdio>

#include "bench/bench_common.h"
#include "core/spatial_engine.h"
#include "telemetry/metrics.h"

using namespace geocol;
using namespace geocol::bench;

int main(int argc, char** argv) {
  geocol::bench::InitBench(argc, argv);
  const uint64_t n = BenchPoints(1000000);
  Banner("E12: telemetry overhead (counters on vs off)",
         "selection latency per region size, metrics enabled vs disabled");

  auto table = GenerateSurvey(n);
  const Box extent = SurveyOptions(n).extent;
  std::printf("survey: %llu points\n",
              static_cast<unsigned long long>(table->num_rows()));

  // Single-threaded, like E3: the overhead of a per-scan counter bump is
  // easiest to see without thread-pool noise on top.
  EngineOptions engine_opts;
  engine_opts.num_threads = 1;
  SpatialQueryEngine engine(table, engine_opts);

  const double fractions[5] = {0.0001, 0.001, 0.01, 0.05, 0.15};
  TablePrinter out({"query", "results", "on ms", "off ms", "overhead"}, 12);

  double sum_on = 0.0;
  double sum_off = 0.0;
  for (int qi = 0; qi < 5; ++qi) {
    double side = std::sqrt(extent.area() * fractions[qi]);
    Point c{extent.min_x + extent.width() * 0.43,
            extent.min_y + extent.height() * 0.57};
    Box q(c.x - side / 2, c.y - side / 2, c.x + side / 2, c.y + side / 2);

    // Interleave on/off repetitions (min of each) so frequency scaling,
    // cache warm-up and background noise hit both sides equally.
    uint64_t results = 0;
    double t_on = 1e300, t_off = 1e300;
    const int reps = BenchReps();
    for (int rep = 0; rep < reps; ++rep) {
      telemetry::SetMetricsEnabled(true);
      {
        Timer t;
        auto r = engine.SelectInBox(q);
        t_on = std::min(t_on, t.ElapsedMillis());
        results = r.ok() ? r->count() : 0;
      }
      telemetry::SetMetricsEnabled(false);
      {
        Timer t;
        (void)engine.SelectInBox(q);
        t_off = std::min(t_off, t.ElapsedMillis());
      }
    }
    telemetry::SetMetricsEnabled(true);
    sum_on += t_on;
    sum_off += t_off;

    char label[16];
    std::snprintf(label, sizeof(label), "S%d %.3g%%", qi + 1,
                  fractions[qi] * 100);
    out.Row({label, TablePrinter::Int(results), TablePrinter::Num(t_on, 3),
             TablePrinter::Num(t_off, 3),
             TablePrinter::Pct(t_off > 0 ? t_on / t_off - 1.0 : 0.0)});
  }

  double overall = sum_off > 0 ? sum_on / sum_off - 1.0 : 0.0;
  out.Row({"ALL", "", TablePrinter::Num(sum_on, 3),
           TablePrinter::Num(sum_off, 3), TablePrinter::Pct(overall)});

  std::printf(
      "\nexpected shape: overhead within noise (<2%%) — each scan touches "
      "thousands of\ncachelines but bumps only a handful of thread-sharded "
      "relaxed counters.\n");
  return 0;
}
