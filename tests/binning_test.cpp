// Bin-bounds tests: construction, BinOf search, sampling behaviour.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/binning.h"
#include "util/rng.h"

namespace geocol {
namespace {

TEST(BinBoundsTest, FromBoundsBasic) {
  auto b = BinBounds::FromBounds({10.0, 20.0, 30.0});
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->num_bins(), 4u);
  EXPECT_EQ(b->BinOf(5), 0u);
  EXPECT_EQ(b->BinOf(10), 0u);   // inclusive upper bound
  EXPECT_EQ(b->BinOf(10.1), 1u);
  EXPECT_EQ(b->BinOf(20), 1u);
  EXPECT_EQ(b->BinOf(25), 2u);
  EXPECT_EQ(b->BinOf(30.0001), 3u);
  EXPECT_EQ(b->BinOf(1e18), 3u);
}

TEST(BinBoundsTest, PadsToPowerOfTwo) {
  auto b = BinBounds::FromBounds({1, 2, 3, 4, 5});  // 6 bins -> 8
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->num_bins(), 8u);
  EXPECT_EQ(b->BinOf(100), 5u);  // everything above lands in the last real bin
}

TEST(BinBoundsTest, RejectsNonIncreasing) {
  EXPECT_FALSE(BinBounds::FromBounds({1, 1}).ok());
  EXPECT_FALSE(BinBounds::FromBounds({2, 1}).ok());
}

TEST(BinBoundsTest, RejectsTooMany) {
  std::vector<double> bounds(64);
  for (int i = 0; i < 64; ++i) bounds[i] = i;
  EXPECT_FALSE(BinBounds::FromBounds(bounds).ok());
}

TEST(BinBoundsTest, BinOfIsMonotone) {
  auto b = BinBounds::FromBounds({-3, 0, 1.5, 7, 100});
  ASSERT_TRUE(b.ok());
  uint32_t prev = 0;
  for (double v = -10; v < 110; v += 0.37) {
    uint32_t bin = b->BinOf(v);
    EXPECT_GE(bin, prev);
    prev = bin;
  }
}

TEST(BinBoundsTest, BinOfMatchesLinearSearch) {
  Rng rng(5);
  std::vector<double> bounds;
  double v = -100;
  for (int i = 0; i < 63; ++i) {
    v += rng.UniformDouble(0.1, 10.0);
    bounds.push_back(v);
  }
  auto b = BinBounds::FromBounds(bounds);
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(b->num_bins(), 64u);
  for (int i = 0; i < 5000; ++i) {
    double x = rng.UniformDouble(-150, 300);
    uint32_t expected = 0;
    while (expected < 63 && x > bounds[expected]) ++expected;
    EXPECT_EQ(b->BinOf(x), expected) << "x=" << x;
  }
}

TEST(BinBoundsSampleTest, EmptyColumnRejected) {
  Column col("c", DataType::kFloat64);
  EXPECT_FALSE(BinBounds::Sample(col, 64, 1024, 1).ok());
}

TEST(BinBoundsSampleTest, BadMaxBinsRejected) {
  auto col = Column::FromVector<double>("c", {1, 2, 3});
  EXPECT_FALSE(BinBounds::Sample(*col, 1, 1024, 1).ok());
  EXPECT_FALSE(BinBounds::Sample(*col, 65, 1024, 1).ok());
}

TEST(BinBoundsSampleTest, FewDistinctValuesShrinkBins) {
  std::vector<double> vals;
  for (int i = 0; i < 1000; ++i) vals.push_back(i % 3);  // 3 distinct
  auto col = Column::FromVector<double>("c", vals);
  auto b = BinBounds::Sample(*col, 64, 1024, 1);
  ASSERT_TRUE(b.ok());
  EXPECT_LE(b->num_bins(), 4u);
  // Each distinct value must land in its own bin.
  EXPECT_NE(b->BinOf(0), b->BinOf(1));
  EXPECT_NE(b->BinOf(1), b->BinOf(2));
}

TEST(BinBoundsSampleTest, UniformDataProducesBalancedBins) {
  Rng rng(9);
  std::vector<double> vals(100000);
  for (auto& v : vals) v = rng.UniformDouble(0, 1000);
  auto col = Column::FromVector<double>("c", vals);
  auto b = BinBounds::Sample(*col, 64, 4096, 1);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->num_bins(), 64u);
  // Histogram the data through the bins; equi-depth means no bin is
  // grossly over-populated.
  std::vector<uint64_t> histo(64, 0);
  for (double v : vals) ++histo[b->BinOf(v)];
  uint64_t max_count = *std::max_element(histo.begin(), histo.end());
  EXPECT_LT(max_count, vals.size() / 64 * 4) << "bins far from equi-depth";
}

TEST(BinBoundsSampleTest, SkewedDataStillCoversTail) {
  // 99% of mass at small values, 1% huge: the last bins must still split
  // the tail rather than lumping everything together.
  Rng rng(11);
  std::vector<double> vals(50000);
  for (auto& v : vals) {
    v = rng.NextBool(0.99) ? rng.UniformDouble(0, 1) : rng.UniformDouble(1e6, 2e6);
  }
  auto col = Column::FromVector<double>("c", vals);
  auto b = BinBounds::Sample(*col, 64, 4096, 1);
  ASSERT_TRUE(b.ok());
  EXPECT_NE(b->BinOf(0.5), b->BinOf(1.5e6));
}

TEST(BinBoundsSampleTest, DeterministicForFixedSeed) {
  Rng rng(13);
  std::vector<double> vals(10000);
  for (auto& v : vals) v = rng.NextGaussian();
  auto col = Column::FromVector<double>("c", vals);
  auto b1 = BinBounds::Sample(*col, 64, 2048, 42);
  auto b2 = BinBounds::Sample(*col, 64, 2048, 42);
  ASSERT_TRUE(b1.ok());
  ASSERT_TRUE(b2.ok());
  ASSERT_EQ(b1->num_bins(), b2->num_bins());
  for (uint32_t i = 0; i < b1->num_bins(); ++i) {
    EXPECT_EQ(b1->upper(i), b2->upper(i));
  }
}

TEST(BinBoundsSampleTest, IntegerColumnsSupported) {
  std::vector<int32_t> vals;
  for (int i = 0; i < 10000; ++i) vals.push_back(i % 100);
  auto col = Column::FromVector<int32_t>("c", vals);
  auto b = BinBounds::Sample(*col, 32, 2048, 1);
  ASSERT_TRUE(b.ok());
  EXPECT_GE(b->num_bins(), 16u);
  EXPECT_LE(b->num_bins(), 32u);
}

}  // namespace
}  // namespace geocol
