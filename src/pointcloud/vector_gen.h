// Synthetic auxiliary GIS layers standing in for OpenStreetMap and the
// Urban Atlas (§4): a road/river/POI network and a land-use/land-cover
// polygon coverage with the Urban Atlas nomenclature codes the demo's
// scenario-2 queries reference ("fast transit roads").
#ifndef GEOCOL_POINTCLOUD_VECTOR_GEN_H_
#define GEOCOL_POINTCLOUD_VECTOR_GEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "geom/geometry.h"
#include "pointcloud/terrain.h"

namespace geocol {

/// OSM-like highway classes.
enum class RoadClass : uint32_t {
  kMotorway = 1,
  kPrimary = 2,
  kSecondary = 3,
  kResidential = 4,
};

/// Urban Atlas nomenclature codes (the subset the demo queries touch).
enum class UrbanAtlasClass : uint32_t {
  kContinuousUrbanFabric = 11100,
  kDiscontinuousUrbanFabric = 11210,
  kIndustrialCommercial = 12100,
  kFastTransitRoads = 12210,  ///< "fast transit roads and associated land"
  kOtherRoads = 12220,
  kGreenUrbanAreas = 14100,
  kAgricultural = 20000,
  kForests = 30000,
  kWater = 50000,
};

const char* UrbanAtlasClassName(UrbanAtlasClass c);
const char* RoadClassName(RoadClass c);

/// One vector feature: geometry + thematic class + display name.
struct VectorFeature {
  uint64_t id = 0;
  Geometry geometry;
  uint32_t feature_class = 0;  ///< RoadClass or UrbanAtlasClass value
  std::string name;
};

/// OSM-like generator: roads as polylines (motorways are long and smooth,
/// residential roads short and wiggly), rivers as wide smooth polylines,
/// POIs as points clustered in urban areas.
class OsmGenerator {
 public:
  OsmGenerator(uint64_t seed, const Box& extent, const TerrainModel& terrain)
      : seed_(seed), extent_(extent), terrain_(&terrain) {}

  std::vector<VectorFeature> GenerateRoads(uint32_t count) const;
  std::vector<VectorFeature> GenerateRivers(uint32_t count) const;
  std::vector<VectorFeature> GeneratePois(uint32_t count) const;

 private:
  uint64_t seed_;
  Box extent_;
  const TerrainModel* terrain_;
};

/// Urban-Atlas-like generator: a block coverage of land-use polygons
/// derived from the terrain model plus fast-transit-road corridor polygons
/// buffered around the motorways.
class UrbanAtlasGenerator {
 public:
  UrbanAtlasGenerator(uint64_t seed, const Box& extent,
                      const TerrainModel& terrain)
      : seed_(seed), extent_(extent), terrain_(&terrain) {}

  /// Block-grid land-use polygons (one rectangle per block, classed by the
  /// dominant terrain character at its centre).
  std::vector<VectorFeature> GenerateLandUse(uint32_t blocks_per_axis) const;

  /// Corridor polygons of class kFastTransitRoads around the given
  /// motorway polylines, `half_width` meters to each side.
  std::vector<VectorFeature> GenerateTransitCorridors(
      const std::vector<VectorFeature>& roads, double half_width) const;

 private:
  uint64_t seed_;
  Box extent_;
  const TerrainModel* terrain_;
};

/// Buffers a polyline into a corridor polygon (per-segment quads merged
/// into a multipolygon — adequate for containment/near queries).
MultiPolygon BufferLine(const LineString& line, double half_width);

}  // namespace geocol

#endif  // GEOCOL_POINTCLOUD_VECTOR_GEN_H_
