// The column: a densely packed, append-only array of one fixed-width type.
// This is the unit the imprints index attaches to, mirroring MonetDB's BAT
// tail array.
#ifndef GEOCOL_COLUMNS_COLUMN_H_
#define GEOCOL_COLUMNS_COLUMN_H_

#include <cassert>
#include <cstring>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "columns/types.h"
#include "util/status.h"

namespace geocol {

/// Min/max statistics of a column (computed lazily, cached until the next
/// append invalidates them).
struct ColumnStats {
  double min = 0.0;
  double max = 0.0;
  bool valid = false;
};

/// A type-erased, densely packed column of fixed-width values.
///
/// Storage is a contiguous byte buffer; typed access goes through
/// `Values<T>()` which checks the runtime type. Appends invalidate the
/// cached statistics and any imprints built on the column (tracked via the
/// append epoch).
class Column {
 public:
  Column(std::string name, DataType type)
      : name_(std::move(name)), type_(type), width_(DataTypeSize(type)) {}

  const std::string& name() const { return name_; }
  DataType type() const { return type_; }
  size_t width() const { return width_; }
  size_t size() const { return data_.size() / width_; }
  bool empty() const { return data_.empty(); }

  /// Monotonic counter bumped on every mutation; index structures remember
  /// the epoch they were built at and rebuild when it moves.
  uint64_t epoch() const { return epoch_; }

  /// Typed read-only view. T must match type().
  template <typename T>
  std::span<const T> Values() const {
    assert(DataTypeOf<T>() == type_);
    return {reinterpret_cast<const T*>(data_.data()), size()};
  }

  template <typename T>
  void Append(T value) {
    assert(DataTypeOf<T>() == type_);
    const auto* p = reinterpret_cast<const uint8_t*>(&value);
    data_.insert(data_.end(), p, p + sizeof(T));
    Invalidate();
  }

  template <typename T>
  void AppendSpan(std::span<const T> values) {
    assert(DataTypeOf<T>() == type_);
    const auto* p = reinterpret_cast<const uint8_t*>(values.data());
    data_.insert(data_.end(), p, p + values.size_bytes());
    Invalidate();
  }

  /// Appends `count` values of this column's type from a raw little-endian
  /// buffer — the COPY BINARY path of the binary bulk loader.
  void AppendRaw(const void* data, size_t count) {
    const auto* p = static_cast<const uint8_t*>(data);
    data_.insert(data_.end(), p, p + count * width_);
    Invalidate();
  }

  void Reserve(size_t rows) { data_.reserve(rows * width_); }
  void Clear() {
    data_.clear();
    Invalidate();
  }

  /// Copy-on-append: a NEW column holding `base`'s bytes followed by
  /// `count` values from a raw little-endian buffer. `base` is never
  /// touched — readers scanning it keep a stable view — and the new column
  /// remembers `base` as its lineage (weak, so retiring every snapshot of
  /// the old version frees its bytes). The imprint manager follows the
  /// lineage to extend the old index incrementally instead of rebuilding.
  /// This is the publication primitive of the live-ingestion path
  /// (DESIGN.md §13).
  static std::shared_ptr<Column> CloneAppend(
      const std::shared_ptr<Column>& base, const void* data, size_t count);

  /// Lineage of a CloneAppend column: the column this one extends, or null
  /// when there is none (fresh column) or every reference to it is gone.
  std::shared_ptr<const Column> base() const { return base_.lock(); }
  /// Rows inherited from base() (0 when no lineage).
  uint64_t base_rows() const { return base_rows_; }

  /// Value converted to double (lossless for all types up to 2^53).
  double GetDouble(size_t row) const;

  /// Batched GetDouble: out[i] = GetDouble(rows[i]). Resolves the type
  /// switch once for the whole batch and runs the SIMD gather kernel, so
  /// refinement can pull candidate coordinates without a per-row dispatch.
  void GetDoubleBatch(const uint64_t* rows, size_t n, double* out) const;

  /// Value converted to int64 (floats are truncated).
  int64_t GetInt64(size_t row) const;

  /// Cached min/max; recomputed after appends. Safe to call from
  /// concurrent readers of an immutable (published) column — computation
  /// is serialised on an internal mutex. Mutating the column while another
  /// thread reads it remains the caller's bug, as everywhere else.
  const ColumnStats& Stats() const;

  /// Seeds the stats cache without a scan — the COW append path knows the
  /// new min/max from base stats + batch extremes. Marks the cache valid.
  void SetCachedStats(double min, double max);

  const uint8_t* raw_data() const { return data_.data(); }

  /// Grants mutable access to the raw buffer for in-place reorganisation
  /// (row shuffles, SFC sorts); bumps the epoch so cached indexes and
  /// statistics are rebuilt.
  uint8_t* BeginRawUpdate() {
    Invalidate();
    return data_.data();
  }
  size_t raw_size_bytes() const { return data_.size(); }
  size_t MemoryBytes() const { return data_.capacity(); }

  /// Creates a column and fills it from a typed vector.
  template <typename T>
  static std::shared_ptr<Column> FromVector(std::string name,
                                            const std::vector<T>& values) {
    auto col = std::make_shared<Column>(std::move(name), DataTypeOf<T>());
    col->template AppendSpan<T>(values);
    return col;
  }

 private:
  void Invalidate() {
    ++epoch_;
    stats_.valid = false;
  }

  std::string name_;
  DataType type_;
  size_t width_;
  std::vector<uint8_t> data_;
  uint64_t epoch_ = 0;
  /// Lineage for incremental index maintenance (set by CloneAppend).
  std::weak_ptr<const Column> base_;
  uint64_t base_rows_ = 0;
  mutable std::mutex stats_mu_;  ///< serialises lazy stats computation
  mutable ColumnStats stats_;
};

using ColumnPtr = std::shared_ptr<Column>;

}  // namespace geocol

#endif  // GEOCOL_COLUMNS_COLUMN_H_
