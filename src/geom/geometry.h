// A compact OGC Simple Features subset: the geometry types the demo's query
// workload needs (points, linestrings, polygons with holes, multipolygons)
// plus axis-aligned boxes used by every index structure in the library.
#ifndef GEOCOL_GEOM_GEOMETRY_H_
#define GEOCOL_GEOM_GEOMETRY_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

namespace geocol {

/// A 2-D point (the Z coordinate of LIDAR points lives in its own column;
/// spatial predicates in the paper are 2-D).
struct Point {
  double x = 0.0;
  double y = 0.0;

  bool operator==(const Point& o) const { return x == o.x && y == o.y; }
};

/// Axis-aligned bounding box. An empty box has min > max.
struct Box {
  double min_x = std::numeric_limits<double>::infinity();
  double min_y = std::numeric_limits<double>::infinity();
  double max_x = -std::numeric_limits<double>::infinity();
  double max_y = -std::numeric_limits<double>::infinity();

  Box() = default;
  Box(double mnx, double mny, double mxx, double mxy)
      : min_x(mnx), min_y(mny), max_x(mxx), max_y(mxy) {}

  bool empty() const { return min_x > max_x || min_y > max_y; }
  double width() const { return max_x - min_x; }
  double height() const { return max_y - min_y; }
  double area() const { return empty() ? 0.0 : width() * height(); }
  Point center() const { return {(min_x + max_x) / 2, (min_y + max_y) / 2}; }

  /// Grows the box to cover `p`.
  void Extend(const Point& p) {
    min_x = p.x < min_x ? p.x : min_x;
    min_y = p.y < min_y ? p.y : min_y;
    max_x = p.x > max_x ? p.x : max_x;
    max_y = p.y > max_y ? p.y : max_y;
  }
  void Extend(double x, double y) { Extend(Point{x, y}); }
  void Extend(const Box& other) {
    if (other.empty()) return;
    Extend(Point{other.min_x, other.min_y});
    Extend(Point{other.max_x, other.max_y});
  }

  bool Contains(const Point& p) const {
    return p.x >= min_x && p.x <= max_x && p.y >= min_y && p.y <= max_y;
  }
  bool Contains(const Box& o) const {
    return !o.empty() && o.min_x >= min_x && o.max_x <= max_x &&
           o.min_y >= min_y && o.max_y <= max_y;
  }
  bool Intersects(const Box& o) const {
    return !empty() && !o.empty() && o.min_x <= max_x && o.max_x >= min_x &&
           o.min_y <= max_y && o.max_y >= min_y;
  }

  /// Box expanded by `d` on every side.
  Box Expanded(double d) const {
    return Box(min_x - d, min_y - d, max_x + d, max_y + d);
  }

  bool operator==(const Box& o) const {
    return min_x == o.min_x && min_y == o.min_y && max_x == o.max_x &&
           max_y == o.max_y;
  }
};

/// An open or closed sequence of vertices.
struct LineString {
  std::vector<Point> points;

  Box Envelope() const;
  /// Sum of segment lengths.
  double Length() const;
};

/// A simple closed ring. Vertices need not repeat the first point at the
/// end; the closing segment is implicit. Orientation is not required.
struct Ring {
  std::vector<Point> points;

  Box Envelope() const;
  /// Signed area via the shoelace formula (positive when counter-clockwise).
  double SignedArea() const;
  double Area() const { return SignedArea() < 0 ? -SignedArea() : SignedArea(); }
};

/// A polygon with an outer shell and zero or more holes.
struct Polygon {
  Ring shell;
  std::vector<Ring> holes;

  Box Envelope() const;
  double Area() const;

  /// Axis-aligned rectangle polygon covering `box`.
  static Polygon FromBox(const Box& box);

  /// Regular n-gon approximating a circle (used for "near"/buffer queries).
  static Polygon Circle(const Point& center, double radius, int segments = 32);
};

struct MultiPolygon {
  std::vector<Polygon> polygons;

  Box Envelope() const;
  double Area() const;
};

/// Tag for the dynamic geometry wrapper.
enum class GeometryType : uint8_t {
  kPoint = 1,
  kLineString = 2,
  kPolygon = 3,
  kMultiPolygon = 6,
  kBox = 100,  // non-OGC convenience type used internally
};

const char* GeometryTypeName(GeometryType t);

/// Dynamically-typed geometry used by the WKT layer, the vector layers and
/// the SQL front end. Cheap to copy for points/boxes; polygon payloads are
/// shared through shared_ptr.
class Geometry {
 public:
  Geometry() : type_(GeometryType::kPoint), point_{} {}
  explicit Geometry(Point p) : type_(GeometryType::kPoint), point_(p) {}
  explicit Geometry(Box b) : type_(GeometryType::kBox), box_(b) {}
  explicit Geometry(LineString ls)
      : type_(GeometryType::kLineString),
        line_(std::make_shared<LineString>(std::move(ls))) {}
  explicit Geometry(Polygon poly)
      : type_(GeometryType::kPolygon),
        polygon_(std::make_shared<Polygon>(std::move(poly))) {}
  explicit Geometry(MultiPolygon mp)
      : type_(GeometryType::kMultiPolygon),
        multi_(std::make_shared<MultiPolygon>(std::move(mp))) {}

  GeometryType type() const { return type_; }
  bool is_point() const { return type_ == GeometryType::kPoint; }
  bool is_box() const { return type_ == GeometryType::kBox; }
  bool is_line() const { return type_ == GeometryType::kLineString; }
  bool is_polygon() const { return type_ == GeometryType::kPolygon; }
  bool is_multipolygon() const { return type_ == GeometryType::kMultiPolygon; }

  const Point& point() const { return point_; }
  const Box& box() const { return box_; }
  const LineString& line() const { return *line_; }
  const Polygon& polygon() const { return *polygon_; }
  const MultiPolygon& multipolygon() const { return *multi_; }

  Box Envelope() const;

 private:
  GeometryType type_;
  Point point_{};
  Box box_{};
  std::shared_ptr<LineString> line_;
  std::shared_ptr<Polygon> polygon_;
  std::shared_ptr<MultiPolygon> multi_;
};

}  // namespace geocol

#endif  // GEOCOL_GEOM_GEOMETRY_H_
