// Cross-dataset operations of scenario 2 (§4.2): combining the point cloud
// with vector layers through spatial predicates — "select all LIDAR points
// that are near a given area that is characterised as a fast transit road
// according to the Urban Atlas nomenclature".
#ifndef GEOCOL_GIS_SPATIAL_JOIN_H_
#define GEOCOL_GIS_SPATIAL_JOIN_H_

#include <vector>

#include "core/spatial_engine.h"
#include "gis/layer.h"

namespace geocol {

/// Result of a point-cloud x layer join.
struct NearLayerResult {
  std::vector<uint64_t> row_ids;  ///< ascending, deduplicated point rows
  uint64_t features_matched = 0;  ///< layer features that contributed
  QueryProfile profile;
};

/// Selects points of `engine`'s table within `distance` of any feature of
/// `layer` carrying `feature_class` (pass 0 to accept every class). Each
/// feature triggers one two-step engine query; results are unioned.
Result<NearLayerResult> PointsNearLayerClass(SpatialQueryEngine* engine,
                                             VectorLayer* layer,
                                             uint32_t feature_class,
                                             double distance);

/// Aggregates `column` over the points selected by PointsNearLayerClass —
/// e.g. "compute the average elevation of the LIDAR points that are near
/// a fast transit road".
Result<double> AggregateNearLayerClass(SpatialQueryEngine* engine,
                                       VectorLayer* layer,
                                       uint32_t feature_class, double distance,
                                       const std::string& column, AggKind kind);

/// Layer-layer join: indexes of features in `a` intersecting any feature
/// of `b` with class `b_class` (0 = any).
std::vector<uint64_t> LayerIntersectingLayer(VectorLayer* a, VectorLayer* b,
                                             uint32_t b_class);

}  // namespace geocol

#endif  // GEOCOL_GIS_SPATIAL_JOIN_H_
