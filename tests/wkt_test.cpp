// WKT parser/writer tests: positive forms, round trips, malformed inputs.
#include <gtest/gtest.h>

#include "geom/wkt.h"

namespace geocol {
namespace {

TEST(WktParseTest, Point) {
  auto g = ParseWkt("POINT (1.5 -2.5)");
  ASSERT_TRUE(g.ok());
  ASSERT_TRUE(g->is_point());
  EXPECT_EQ(g->point().x, 1.5);
  EXPECT_EQ(g->point().y, -2.5);
}

TEST(WktParseTest, PointCaseInsensitiveAndZDropped) {
  auto g = ParseWkt("point(3 4 99.0)");
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->point().x, 3);
  EXPECT_EQ(g->point().y, 4);
}

TEST(WktParseTest, Box) {
  auto g = ParseWkt("BOX(0 0, 10 20)");
  ASSERT_TRUE(g.ok());
  ASSERT_TRUE(g->is_box());
  EXPECT_EQ(g->box().max_y, 20);
}

TEST(WktParseTest, BoxReversedCornersRejected) {
  EXPECT_FALSE(ParseWkt("BOX(10 10, 0 0)").ok());
}

TEST(WktParseTest, LineString) {
  auto g = ParseWkt("LINESTRING (0 0, 1 1, 2 0)");
  ASSERT_TRUE(g.ok());
  ASSERT_TRUE(g->is_line());
  EXPECT_EQ(g->line().points.size(), 3u);
}

TEST(WktParseTest, PolygonWithHole) {
  auto g = ParseWkt(
      "POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0), (4 4, 6 4, 6 6, 4 6, 4 4))");
  ASSERT_TRUE(g.ok());
  ASSERT_TRUE(g->is_polygon());
  // Closing duplicate vertex is dropped.
  EXPECT_EQ(g->polygon().shell.points.size(), 4u);
  ASSERT_EQ(g->polygon().holes.size(), 1u);
  EXPECT_EQ(g->polygon().holes[0].points.size(), 4u);
}

TEST(WktParseTest, MultiPolygon) {
  auto g = ParseWkt(
      "MULTIPOLYGON (((0 0, 1 0, 1 1, 0 1, 0 0)), ((5 5, 6 5, 6 6, 5 6, 5 5)))");
  ASSERT_TRUE(g.ok());
  ASSERT_TRUE(g->is_multipolygon());
  EXPECT_EQ(g->multipolygon().polygons.size(), 2u);
}

TEST(WktParseTest, ScientificNotationCoordinates) {
  auto g = ParseWkt("POINT (8.5e4 4.44e5)");
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->point().x, 85000);
  EXPECT_EQ(g->point().y, 444000);
}

TEST(WktParseTest, MalformedInputs) {
  EXPECT_FALSE(ParseWkt("").ok());
  EXPECT_FALSE(ParseWkt("CIRCLE (0 0, 5)").ok());
  EXPECT_FALSE(ParseWkt("POINT 1 2").ok());
  EXPECT_FALSE(ParseWkt("POINT (1)").ok());
  EXPECT_FALSE(ParseWkt("POINT (1 2").ok());
  EXPECT_FALSE(ParseWkt("POINT (1 2) trailing").ok());
  EXPECT_FALSE(ParseWkt("LINESTRING (1 1)").ok());          // too few points
  EXPECT_FALSE(ParseWkt("POLYGON ((0 0, 1 1))").ok());      // degenerate ring
  EXPECT_FALSE(ParseWkt("POLYGON (0 0, 1 1, 2 2)").ok());   // missing parens
  EXPECT_FALSE(ParseWkt("POINT (a b)").ok());
}

TEST(WktRoundTripTest, AllTypes) {
  const char* inputs[] = {
      "POINT (1 2)",
      "BOX (0 0, 5 5)",
      "LINESTRING (0 0, 1 1, 2 0)",
      "POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))",
      "POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0), (4 4, 6 4, 6 6, 4 6, 4 4))",
      "MULTIPOLYGON (((0 0, 1 0, 1 1, 0 1, 0 0)), "
      "((5 5, 6 5, 6 6, 5 6, 5 5)))",
  };
  for (const char* in : inputs) {
    auto g1 = ParseWkt(in);
    ASSERT_TRUE(g1.ok()) << in;
    std::string text = ToWkt(*g1);
    auto g2 = ParseWkt(text);
    ASSERT_TRUE(g2.ok()) << text;
    EXPECT_EQ(ToWkt(*g2), text) << "unstable round trip for " << in;
    EXPECT_EQ(g1->type(), g2->type());
  }
}

TEST(WktRoundTripTest, PreservesCoordinates) {
  auto g = ParseWkt("POLYGON ((85123.45 444987.65, 85200 444987.65, "
                    "85200 445100, 85123.45 445100, 85123.45 444987.65))");
  ASSERT_TRUE(g.ok());
  auto g2 = ParseWkt(ToWkt(*g, 9));
  ASSERT_TRUE(g2.ok());
  EXPECT_DOUBLE_EQ(g2->polygon().shell.points[0].x, 85123.45);
  EXPECT_DOUBLE_EQ(g2->polygon().shell.points[2].y, 445100);
}

}  // namespace
}  // namespace geocol
