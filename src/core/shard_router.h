// The scatter-gather executor over a Hilbert-sharded table (DESIGN.md
// §12). A query first prunes shards whose bbox misses its envelope —
// before any imprint work — then scatters filter+refine across the
// surviving shards on one shared morsel pool, and merges the local
// results in shard order. Because shards are contiguous runs of the
// Hilbert-sorted row space and every shard computes its exact local
// answer, the merged global row ids (and any aggregate over them) are
// bit-identical to a single engine over the sorted flat table, at every
// thread count and SIMD level; at K = 1 the filter/refine stats match
// verbatim too (for K > 1 they are the deterministic field-wise sum of
// the per-shard stats — per-shard imprints cover different cacheline
// populations than one whole-table imprint, so the unsharded counters
// are not reproducible, only the answers are).
//
// Covered shards (bbox-as-zonemap): a thematic-free box query that fully
// contains a shard's bbox selects every one of its rows by construction,
// so the router emits the shard's id range directly into the merged
// result without touching a column. Row ids stay bit-identical; such a
// shard contributes zero filter/refine stats (nothing was scanned), so
// the K = 1 verbatim-stats property applies to queries that intersect
// but do not cover the single shard.
//
// Live appends (DESIGN.md §13): Append routes a batch to its shards by
// Hilbert start keys, extends each affected shard's columns copy-on-write
// and swaps a NEW shard handle in under the view lock. Readers pin a
// ShardsView — an immutable (shards, bases) snapshot — per query or per
// SQL statement, so a concurrent append can never shift global row ids
// or replace a table version under them. For a persisted layout the
// replacement shard tables are written into next-generation directories
// and the shards.gsm manifest is swapped BEFORE the in-memory publish:
// the swap is the crash-commit point, so reopen always sees a complete
// old-or-new layout.
#ifndef GEOCOL_CORE_SHARD_ROUTER_H_
#define GEOCOL_CORE_SHARD_ROUTER_H_

#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "columns/sharded_table.h"
#include "core/shard.h"
#include "core/spatial_engine.h"

namespace geocol {

/// An immutable snapshot of the router's shard set, pinned for the
/// lifetime of one query (or one SQL statement). Copyable; copies share
/// the shard handles. shards[i] covers global rows
/// [bases[i], bases[i] + shards[i]->num_rows()).
struct ShardsView {
  std::vector<std::shared_ptr<Shard>> shards;
  std::vector<uint64_t> bases;
  uint64_t total_rows = 0;
  /// Bumped by every Append publish; equal versions = identical views.
  uint64_t version = 0;
};

/// Bbox-pruned scatter-gather query execution over one sharded table.
///
/// Thread-safety: concurrent queries against one router are safe, and —
/// unlike the flat engine — so are concurrent Append calls: queries
/// execute against a pinned ShardsView while appends publish replacement
/// shards under the view lock. Appends against one router serialise.
class ShardRouter {
 public:
  /// `options` configures every shard engine plus the router-level pool
  /// and cache: num_threads sizes ONE pool shared by the scatter loop and
  /// all shard engines (nested morsel scheduling keeps it busy), and the
  /// cache binding applies at the router only — per-shard engines always
  /// run cache-free.
  explicit ShardRouter(std::shared_ptr<ShardedTable> table,
                       EngineOptions options = {});

  const ShardedTable& table() const { return *table_; }
  const EngineOptions& options() const { return options_; }
  Schema schema() const;
  /// Shard count is fixed at construction; appends never change it.
  size_t num_shards() const { return start_keys_.size(); }

  /// Pins the current shard set. O(K): copies the handle/base vectors.
  ShardsView View() const;

  /// Threads executing one query: pool workers + the calling thread.
  uint32_t num_effective_threads() const {
    return pool_ != nullptr ? static_cast<uint32_t>(pool_->num_threads()) + 1
                            : 1;
  }

  /// All points with (x, y) inside `box`, as global row ids.
  Result<SelectionResult> SelectInBox(const Box& box);

  /// All points contained in `geometry`.
  Result<SelectionResult> SelectInGeometry(const Geometry& geometry);

  /// General form: spatial predicate plus conjunctive thematic ranges.
  /// Pins a fresh view; the overload executes against a caller-pinned
  /// view (the SQL executor pins one view per statement so selection,
  /// aggregation and projection all read the same epoch).
  Result<SelectionResult> Select(const Geometry& geometry, double buffer,
                                 const std::vector<AttributeRange>& thematic);
  Result<SelectionResult> Select(const ShardsView& view,
                                 const Geometry& geometry, double buffer,
                                 const std::vector<AttributeRange>& thematic);

  /// Aggregate of `column` over the selected points — bit-identical to
  /// the unsharded engine's Aggregate over the sorted flat table.
  Result<double> Aggregate(const Geometry& geometry, double buffer,
                           const std::vector<AttributeRange>& thematic,
                           const std::string& column, AggKind kind);

  /// Aggregates `column` over an explicit global row list, resolving each
  /// row to its shard's local values. Runs the shared aggregation core,
  /// so the result is bit-identical to AggregateRows over the equivalent
  /// flat column (the SQL executor's post-selection aggregate path).
  /// `rows` must come from a selection executed against `view`.
  Result<double> AggregateGlobalRows(const ShardsView& view,
                                     const std::vector<uint64_t>& rows,
                                     const std::string& column, AggKind kind,
                                     ThreadPool* pool = nullptr) const;
  Result<double> AggregateGlobalRows(const std::vector<uint64_t>& rows,
                                     const std::string& column, AggKind kind,
                                     ThreadPool* pool = nullptr) const;

  /// Appends a batch (schema must equal the table's) as ONE atomic
  /// publish: rows are routed to shards by the Hilbert key of (x, y)
  /// scaled to the layout's fixed extent, each affected shard's columns
  /// are extended copy-on-write, and — for a layout loaded from disk —
  /// the new shard tables land in next-generation directories with the
  /// shards.gsm manifest swap as the crash-commit point. Readers holding
  /// a ShardsView are untouched; new View() calls see all rows or none.
  /// Concurrent Append calls serialise. Only the affected shards' version
  /// tokens change, so router cache keys invalidate precisely.
  Status Append(const FlatTable& batch);

  /// Sum of imprint storage across all shards.
  uint64_t IndexStorageBytes() const;

  /// Rebinds the router's cache budget (the SQL session's per-session
  /// knob). Not thread-safe against queries in flight.
  void set_cache_budget(uint64_t budget_bytes);

  /// The cache this router consults, or nullptr when cache-off.
  cache::QueryResultCache* result_cache() const { return cache_; }

 private:
  Result<SelectionResult> Execute(const ShardsView& view,
                                  const Geometry& geometry, double buffer,
                                  const std::vector<AttributeRange>& thematic);

  /// Tier (a)/(c) key prefix: the byte image of the pinned shard set
  /// (layout id, shard count, and every shard's base offset, version
  /// token and referenced-column epochs) plus the query and the
  /// result-shaping knobs — re-sharding changes the layout id, an append
  /// changes the affected shards' version tokens (and downstream bases),
  /// so stale entries age out by construction.
  Result<std::string> SelectionKey(
      const ShardsView& view, const Geometry& geometry, double buffer,
      const std::vector<AttributeRange>& thematic) const;

  std::shared_ptr<ShardedTable> table_;
  EngineOptions options_;
  /// Hilbert key of each shard's first row (shard 0 owns everything below
  /// shard 1's key). Computed once — appends only extend shard tails, so
  /// first rows, and therefore routing, never change.
  std::vector<uint64_t> start_keys_;
  /// Guards shards_/bases_/view_version_ and the in-place mutation of
  /// table_'s slices; queries take it shared for the O(K) view copy only.
  mutable std::shared_mutex shards_mu_;
  std::vector<std::shared_ptr<Shard>> shards_;
  /// shards_[i] covers global rows [bases_[i], bases_[i] + rows_i).
  std::vector<uint64_t> bases_;
  uint64_t view_version_ = 0;
  /// Serialises Append calls (routing + COW build happen outside
  /// shards_mu_, so readers are never stalled behind an append).
  std::mutex append_mu_;
  /// One pool for the scatter loop and every shard engine; null = serial.
  std::unique_ptr<ThreadPool> pool_;
  /// Keeps a private cache instance alive; null when using Global().
  std::shared_ptr<cache::QueryResultCache> cache_owner_;
  /// The cache every query consults; nullptr = cache-off.
  cache::QueryResultCache* cache_ = nullptr;
};

/// Global-row value access across shards for the SQL layer: caches one
/// ColumnPtr per shard and translates global ids on each read. Built from
/// a pinned view, so the columns match the selection that produced the
/// row ids even while appends land.
class ShardedColumnReader {
 public:
  static Result<ShardedColumnReader> Make(const ShardsView& view,
                                          const std::string& column);
  static Result<ShardedColumnReader> Make(const ShardRouter& router,
                                          const std::string& column);

  double GetDouble(uint64_t global_row) const;
  DataType type() const { return columns_.empty() ? DataType::kFloat64
                                                  : columns_[0]->type(); }

 private:
  ShardedColumnReader() = default;

  std::vector<ColumnPtr> columns_;  ///< one per shard
  std::vector<uint64_t> bases_;
};

}  // namespace geocol

#endif  // GEOCOL_CORE_SHARD_ROUTER_H_
