// E2 (paper §3.2 and [18]): storage footprint per system.
//
// Paper claims being reproduced:
//   - "Imprints storage comes with a 5-12% storage overhead."
//   - "For the flat-table storage, MonetDB requires the least total
//      storage mainly due to the columnar organisation and the small
//      amount of storage required by the column imprints index."
// Rows: flat columns, flat+imprints(x,y), zonemaps, point R-tree,
// block store (compressed blocks + block R-tree), LAZ tile archive.
#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>

#include "baselines/block_store.h"
#include "baselines/rtree.h"
#include "baselines/zonemap.h"
#include "bench/bench_common.h"
#include "columns/column_file.h"
#include "core/imprints.h"
#include "las/las_reader.h"
#include "las/las_writer.h"
#include "util/binary_io.h"
#include "util/tempdir.h"
#include "util/timer.h"

using namespace geocol;
using namespace geocol::bench;

int main(int argc, char** argv) {
  geocol::bench::InitBench(argc, argv);
  const uint64_t n = BenchPoints(1000000);
  Banner("E2: storage footprint (paper section 3.2, [18] table)",
         "flat columns + imprints vs block store vs LAZ archive");

  auto table = GenerateSurvey(n);
  const uint64_t points = table->num_rows();
  const uint64_t flat_bytes = table->DataBytes();
  std::printf("survey: %llu points, 26 attributes\n",
              static_cast<unsigned long long>(points));

  TablePrinter out({"layout", "bytes", "bytes/point", "vs flat", "index %"});

  auto row = [&](const std::string& name, uint64_t bytes, uint64_t index_bytes) {
    out.Row({name, TablePrinter::Mb(bytes),
             TablePrinter::Num(static_cast<double>(bytes) / points, 1),
             TablePrinter::Num(static_cast<double>(bytes) / flat_bytes) + "x",
             index_bytes == 0
                 ? "-"
                 : TablePrinter::Pct(static_cast<double>(index_bytes) /
                                     flat_bytes)});
  };

  row("flat columns (26 attrs)", flat_bytes, 0);

  // ---- imprints on the columns every query touches (x, y) plus z.
  {
    uint64_t imprint_bytes = 0;
    for (const char* col : {"x", "y", "z"}) {
      auto ix = ImprintsIndex::Build(*table->column(col));
      if (!ix.ok()) return 1;
      ImprintsStorage s = ix->Storage(table->column(col)->raw_size_bytes());
      imprint_bytes += s.total_bytes;
      std::printf("  imprints(%s): %s, overhead %s of the column, "
                  "%.2f vectors/line\n",
                  col, TablePrinter::Mb(s.total_bytes).c_str(),
                  TablePrinter::Pct(s.overhead_fraction).c_str(),
                  s.vectors_per_line);
    }
    row("flat + imprints(x,y,z)", flat_bytes + imprint_bytes, imprint_bytes);
  }

  // ---- zonemaps on the same three columns.
  {
    uint64_t zm_bytes = 0;
    for (const char* col : {"x", "y", "z"}) {
      auto ix = ZoneMapIndex::Build(*table->column(col));
      if (!ix.ok()) return 1;
      zm_bytes += ix->StorageBytes();
    }
    row("flat + zonemaps(x,y,z)", flat_bytes + zm_bytes, zm_bytes);
  }

  // ---- classic point R-tree as the primary-spatial-index strawman.
  {
    auto tree = BuildPointRTree(*table);
    if (!tree.ok()) return 1;
    row("flat + point R-tree", flat_bytes + tree->MemoryBytes(),
        tree->MemoryBytes());
  }

  // ---- block store: the same 26-attribute records re-blocked,
  // compressed and indexed with an R-tree over block boxes.
  {
    LasHeader header;
    header.scale[0] = header.scale[1] = header.scale[2] = 0.01;
    header.offset[0] = 85000;
    header.offset[1] = 444000;
    auto records = TableToRecords(*table, header);
    if (!records.ok()) return 1;
    auto store = BlockStore::Build(std::move(*records), header);
    if (!store.ok()) return 1;
    row("block store (compressed)", store->StorageBytes(),
        store->IndexBytes());
  }

  // ---- LAZ tile archive on disk (file-based storage).
  {
    TempDir tmp("bench-storage");
    AhnGeneratorOptions opts = SurveyOptions(n);
    double area = std::max(opts.extent.area(), 1.0);
    opts.point_density = static_cast<double>(n) / area;
    opts.scan_line_spacing = 1.0 / std::sqrt(opts.point_density);
    AhnGenerator gen(opts);
    if (!gen.WriteTileDirectory(tmp.path(), /*compress=*/true).ok()) return 1;
    std::vector<std::string> files;
    if (!ListFiles(tmp.path(), ".laz", &files).ok()) return 1;
    uint64_t bytes = 0;
    for (const auto& f : files) {
      auto sz = FileSizeBytes(f);
      if (sz.ok()) bytes += *sz;
    }
    row("LAZ tile archive", bytes, 0);
  }

  // ---- checksum overhead on the persisted read path: the same table
  // read back with and without CRC32C verification. The write always
  // checksums; only the verify pass is optional. Cold-cache is the number
  // that matters — the durable read path exists for restarts and crash
  // recovery, where the page cache is empty; the warm row isolates the
  // pure CPU cost of verification against an in-memory copy.
  {
    TempDir tmp("bench-checksum");
    std::string dir = tmp.path() + "/table";
    if (!WriteTableDir(*table, dir).ok()) return 1;

    auto drop_cache = [&] {
      std::vector<std::string> files;
      if (!ListFiles(dir, "", &files).ok()) return;
      for (const auto& f : files) {
        int fd = ::open(f.c_str(), O_RDONLY);
        if (fd >= 0) {
          ::posix_fadvise(fd, 0, 0, POSIX_FADV_DONTNEED);
          ::close(fd);
        }
      }
    };
    auto read_once = [&](bool verify, bool cold) {
      if (cold) drop_cache();
      Timer t;
      auto got = ReadTableDir(dir, verify);
      if (!got.ok()) std::abort();
      return t.ElapsedSeconds();
    };
    double mb = flat_bytes / 1048576.0;
    std::printf("\nchecksummed read path (verified vs unverified):\n");
    for (bool cold : {false, true}) {
      // The two configurations run as back-to-back pairs and the overhead
      // is the median of the per-pair ratios, so slow I/O drift (shared-host
      // bandwidth wandering between batches) cancels instead of biasing
      // whichever configuration happened to run during the slow patch.
      std::vector<double> ratios;
      double with_crc = 1e30, without = 1e30;
      for (int rep = 0; rep < (cold ? 9 : 5); ++rep) {
        double u = read_once(false, cold);
        double v = read_once(true, cold);
        without = std::min(without, u);
        with_crc = std::min(with_crc, v);
        ratios.push_back(v / u);
      }
      std::sort(ratios.begin(), ratios.end());
      double median = ratios[ratios.size() / 2];
      std::printf(
          "  %-18s %.3f s vs %.3f s (%4.0f vs %4.0f MB/s), overhead %.1f%%\n",
          cold ? "cold (restart):" : "warm (page cache):", with_crc, without,
          mb / with_crc, mb / without, (median - 1.0) * 100.0);
    }
    std::printf(
        "  target: <= ~5%% on the cold path (the chunk CRC runs cache-hot "
        "over just-read bytes)\n");
  }

  std::printf(
      "\nexpected shape (paper): imprint overhead lands in the 5-12%% band; "
      "flat+imprints needs no\nheavyweight spatial index (a point R-tree "
      "costs ~10x more than imprints); compressed blocks\nand LAZ trade "
      "smaller footprints for decompression on every access.\n");
  return 0;
}
