// The "spatially-enabled" query engine of the paper: flat-table point
// cloud + lazily built column imprints on the coordinate columns + the
// two-step filter/refinement executor (§3.3). This is the primary public
// API of the library.
#ifndef GEOCOL_CORE_SPATIAL_ENGINE_H_
#define GEOCOL_CORE_SPATIAL_ENGINE_H_

#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "cache/query_cache.h"
#include "columns/flat_table.h"
#include "core/aggregate.h"
#include "core/imprint_scan.h"
#include "core/profile.h"
#include "core/refinement.h"
#include "geom/geometry.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace geocol {

/// A thematic range predicate on a non-spatial attribute
/// (`classification BETWEEN 3 AND 5`, `intensity >= 100`, ...).
struct AttributeRange {
  std::string column;
  double lo = -std::numeric_limits<double>::infinity();
  double hi = std::numeric_limits<double>::infinity();
};

/// Query result cache binding of one engine (DESIGN.md §11).
struct CacheOptions {
  /// Memory the engine asks the cache to hold. 0 leaves the engine
  /// entirely cache-free: no lookups, no inserts, no extra spans — the
  /// execution path is bit-identical to an engine built before the cache
  /// layer existed.
  uint64_t budget_bytes = 0;
  /// Cache instance to bind to; null binds to the process-wide
  /// QueryResultCache::Global(), whose budget is grown (never shrunk) to
  /// `budget_bytes`. Tests and benchmarks pass private instances for cold
  /// state and exact budget control.
  std::shared_ptr<cache::QueryResultCache> instance;
};

/// Engine configuration; the booleans exist so benchmarks can ablate each
/// technique (E3/E4/E5 run the same engine with features toggled).
struct EngineOptions {
  ImprintsOptions imprints;
  RefineOptions refine;
  /// When false the filter step degrades to a full scan of x/y.
  bool use_imprints = true;
  /// Query/build parallelism: 0 = one thread per hardware core, 1 = the
  /// serial executor (results, stats and profiles identical to the engine
  /// before morsel-driven execution), n = n threads total (the calling
  /// thread participates, so n threads means n-1 pool workers).
  uint32_t num_threads = 0;
  /// Directory for persisted imprint sidecar files ("" = in-memory only).
  /// A corrupt or stale sidecar is quarantined and rebuilt from the
  /// column — it degrades to a rebuild, never fails the query.
  std::string imprints_dir;
  /// Query result cache binding; budget 0 (the default) is cache-off.
  CacheOptions cache;
  /// Paged-tier chunk cache budget. > 0 grows (never shrinks) the
  /// process-wide cache::ChunkCache::Global() budget to this many bytes at
  /// engine construction; 0 leaves the global default
  /// (GEOCOL_CHUNK_CACHE_MB, else 64 MiB) untouched. Only meaningful when
  /// the engine's table holds paged columns.
  uint64_t chunk_cache_budget_bytes = 0;
};

/// Result of a spatial selection.
struct SelectionResult {
  std::vector<uint64_t> row_ids;     ///< ascending qualifying row ids
  ImprintScanStats filter_x;         ///< filter-step accounting
  ImprintScanStats filter_y;
  RefinementStats refine;            ///< refinement-step accounting
  QueryProfile profile;              ///< per-operator wall times

  uint64_t count() const { return row_ids.size(); }
};

/// Aggregates `column` over `rows`. kCount ignores the column. Resident
/// values are read as typed spans; paged columns gather the selected
/// values once (faulting only the chunks the selection touches) and
/// accumulate over the gathered sequence, so the result is bit-identical
/// to the resident open of the same file. A non-null `pool` aggregates row
/// chunks in parallel and merges the partials in chunk order, so the
/// result is deterministic for a given row list (floating-point sums may
/// differ from the serial order in the last bits; min/max/count are
/// exact). The only Status source is a paged-column chunk fault.
Result<double> AggregateRows(const Column& column,
                             const std::vector<uint64_t>& rows, AggKind kind,
                             ThreadPool* pool = nullptr);

/// The spatially-enabled engine over one flat point-cloud table.
///
/// Thread-safety: concurrent queries (Select*/Aggregate) against one
/// engine are safe, including the racing first queries that trigger the
/// imprint build. Appending to the underlying table while queries are in
/// flight is not.
class SpatialQueryEngine {
 public:
  /// `table` must contain columns named `x_column`/`y_column` (any numeric
  /// type). The table is shared: appends through other references are
  /// detected via column epochs and trigger imprint rebuilds.
  SpatialQueryEngine(std::shared_ptr<FlatTable> table,
                     EngineOptions options = {},
                     std::string x_column = "x", std::string y_column = "y");

  /// As above, but executes on `borrowed_pool` (not owned; nullptr runs
  /// serially) instead of creating a private pool from
  /// `options.num_threads`. The shard router uses this so all shard
  /// engines share one morsel pool.
  SpatialQueryEngine(std::shared_ptr<FlatTable> table, EngineOptions options,
                     std::string x_column, std::string y_column,
                     ThreadPool* borrowed_pool);

  /// As above, additionally sharing an existing imprint manager instead of
  /// creating a private one. The live-table path hands every published
  /// snapshot engine the same manager, so an epoch's imprints are built
  /// once, survive across epochs for untouched columns, and appended
  /// columns extend their lineage base's index incrementally. The manager
  /// must already be configured (pool, sidecar dir) — this constructor
  /// never mutates it, so hand-off races cannot occur with queries running
  /// on older snapshots.
  SpatialQueryEngine(std::shared_ptr<FlatTable> table, EngineOptions options,
                     std::string x_column, std::string y_column,
                     ThreadPool* borrowed_pool,
                     std::shared_ptr<ImprintManager> shared_imprints);

  const FlatTable& table() const { return *table_; }
  const EngineOptions& options() const { return options_; }

  /// Threads executing one query: pool workers + the calling thread.
  uint32_t num_effective_threads() const {
    return pool_ != nullptr ? static_cast<uint32_t>(pool_->num_threads()) + 1
                            : 1;
  }

  /// All points with (x, y) inside `box`. For a rectangle the refinement
  /// is exact during the filter step already.
  Result<SelectionResult> SelectInBox(const Box& box);

  /// All points contained in `geometry` (polygon/multipolygon/box).
  Result<SelectionResult> SelectInGeometry(const Geometry& geometry);

  /// All points within distance `d` of `geometry` — the "near" queries of
  /// scenario 2 (§4.2).
  Result<SelectionResult> SelectWithinDistance(const Geometry& geometry,
                                               double d);

  /// General form: spatial predicate plus conjunctive thematic ranges.
  /// `buffer` > 0 selects ST_DWithin semantics.
  Result<SelectionResult> Select(const Geometry& geometry, double buffer,
                                 const std::vector<AttributeRange>& thematic);

  /// Aggregate of `column` over the points selected by the predicate:
  /// e.g. "compute the average elevation of the LIDAR points near ..."
  Result<double> Aggregate(const Geometry& geometry, double buffer,
                           const std::vector<AttributeRange>& thematic,
                           const std::string& column, AggKind kind);

  /// Imprint storage across the coordinate (and thematically filtered)
  /// columns currently indexed — the 5-12% overhead claim of §3.2.
  uint64_t IndexStorageBytes() const { return imprints_->TotalStorageBytes(); }

  ImprintManager& imprint_manager() { return *imprints_; }

  /// The (possibly shared) manager itself; snapshot publication passes it
  /// on to the next epoch's engine.
  const std::shared_ptr<ImprintManager>& imprint_manager_ptr() const {
    return imprints_;
  }

  /// Rebinds the engine's cache budget after construction (the SQL
  /// session's per-session knob). 0 detaches the engine from the cache;
  /// > 0 attaches it (growing a shared instance's budget as needed). Not
  /// thread-safe against queries in flight on this engine.
  void set_cache_budget(uint64_t budget_bytes);

  /// The cache this engine consults, or nullptr when cache-off.
  cache::QueryResultCache* result_cache() const { return cache_; }

 private:
  /// Shared two-step implementation.
  Result<SelectionResult> Execute(const Geometry& geometry, double buffer,
                                  const std::vector<AttributeRange>& thematic);

  /// Filter step on one column; returns a row-level selection.
  Status FilterColumn(const ColumnPtr& column, double lo, double hi,
                      BitVector* rows, ImprintScanStats* stats,
                      QueryProfile* profile, const std::string& op_name);

  /// Tier (a)/(c) key prefix: the complete byte image of everything the
  /// selection depends on — table id, per-column epochs, geometry bits,
  /// thematic ranges, and result-shaping knobs (thread count, imprint and
  /// refine options). NotFound when a thematic column is missing.
  Result<std::string> SelectionKey(
      const Geometry& geometry, double buffer,
      const std::vector<AttributeRange>& thematic) const;

  /// Construction tail shared by both constructors (sidecar dir, pool
  /// hand-off to the imprint manager, cache binding).
  void Init();

  std::shared_ptr<FlatTable> table_;
  EngineOptions options_;
  std::string x_name_, y_name_;
  std::shared_ptr<ImprintManager> imprints_;
  /// False when imprints_ was injected pre-configured (live-table path);
  /// Init() then leaves its pool/sidecar settings alone.
  bool owns_imprints_ = true;
  /// Pool this engine created for itself (the plain constructor); null
  /// when serial or when executing on a borrowed pool.
  std::unique_ptr<ThreadPool> owned_pool_;
  /// Workers shared by all queries; null when running serially. The
  /// calling thread always participates in parallel loops, so the pool
  /// holds num_effective_threads() - 1 workers.
  ThreadPool* pool_ = nullptr;
  /// Keeps a private cache instance alive; null when using Global().
  std::shared_ptr<cache::QueryResultCache> cache_owner_;
  /// The cache every query consults; nullptr = cache-off.
  cache::QueryResultCache* cache_ = nullptr;
};

}  // namespace geocol

#endif  // GEOCOL_CORE_SPATIAL_ENGINE_H_
