// Morton (Z-order) space-filling curve, used by `lassort`-style file
// re-ordering and by the block store's spatial block ordering (paper §2.3).
#ifndef GEOCOL_SFC_MORTON_H_
#define GEOCOL_SFC_MORTON_H_

#include <cstdint>
#include <utility>

#include "geom/geometry.h"

namespace geocol {

/// Interleaves the low 32 bits of x and y into a 64-bit Morton code
/// (x occupies the even bit positions).
uint64_t MortonEncode(uint32_t x, uint32_t y);

/// Inverse of MortonEncode.
std::pair<uint32_t, uint32_t> MortonDecode(uint64_t code);

/// Maps doubles within `extent` to the 32-bit grid and encodes. Values are
/// clamped to the extent.
uint64_t MortonEncodeScaled(double x, double y, const Box& extent,
                            uint32_t bits = 21);

}  // namespace geocol

#endif  // GEOCOL_SFC_MORTON_H_
