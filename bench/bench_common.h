// Shared helpers of the benchmark harnesses: survey generation sized from
// the environment, simple aligned table printing, and repeat-timing.
//
// Every bench binary prints the experiment id from DESIGN.md/EXPERIMENTS.md
// and regenerates one table/figure of the evaluation. Scale knobs:
//   GEOCOL_BENCH_POINTS   approximate survey size   (default per binary)
//   GEOCOL_BENCH_REPS     timing repetitions        (default 3)
#ifndef GEOCOL_BENCH_BENCH_COMMON_H_
#define GEOCOL_BENCH_BENCH_COMMON_H_

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "columns/flat_table.h"
#include "pointcloud/generator.h"
#include "telemetry/metrics.h"
#include "util/logging.h"
#include "util/timer.h"

namespace geocol {
namespace bench {

inline uint64_t EnvU64(const char* name, uint64_t def) {
  const char* v = std::getenv(name);
  if (v == nullptr) return def;
  char* end = nullptr;
  unsigned long long parsed = std::strtoull(v, &end, 10);
  return end != v && parsed > 0 ? parsed : def;
}

inline uint64_t BenchPoints(uint64_t def) {
  return EnvU64("GEOCOL_BENCH_POINTS", def);
}

inline int BenchReps() {
  return static_cast<int>(EnvU64("GEOCOL_BENCH_REPS", 3));
}

/// Survey options sized so `approx_points` points cover a square extent at
/// AHN2-like density (8 pts/m²).
inline AhnGeneratorOptions SurveyOptions(uint64_t approx_points,
                                         uint64_t seed = 20150831) {
  AhnGeneratorOptions opts;
  opts.seed = seed;
  double area = static_cast<double>(approx_points) / 8.0;
  double side = std::sqrt(area);
  opts.extent = Box(85000.0, 444000.0, 85000.0 + side, 444000.0 + side);
  opts.point_density = 8.0;
  opts.scan_line_spacing = 1.0 / std::sqrt(8.0);
  opts.strip_width = std::max(side / 8.0, 10.0);
  return opts;
}

/// Generates an in-memory flat table of ~`approx_points` AHN-like points.
inline std::shared_ptr<FlatTable> GenerateSurvey(uint64_t approx_points,
                                                 uint64_t seed = 20150831) {
  AhnGenerator gen(SurveyOptions(approx_points, seed));
  auto table = gen.GenerateTable(approx_points);
  if (!table.ok()) {
    GEOCOL_LOG(Error).With("error", table.status().ToString())
        << "survey generation failed";
    std::exit(1);
  }
  return std::move(table).value();
}

/// Runs `fn` BenchReps() times and returns the minimum wall time (ms).
inline double TimeMs(const std::function<void()>& fn, int reps = 0) {
  if (reps <= 0) reps = BenchReps();
  double best = 1e300;
  for (int i = 0; i < reps; ++i) {
    Timer t;
    fn();
    best = std::min(best, t.ElapsedMillis());
  }
  return best;
}

/// Machine-readable mirror of the bench output. When a bench binary is run
/// with `--json <path>`, every TablePrinter row is also recorded as a
/// `{bench, config, metrics}` object and the collected rows are written to
/// `path` as one JSON array at exit. tools/bench_report.py merges these
/// files into the BENCH_E*.json artifacts at the repo root.
class JsonSink {
 public:
  static JsonSink& Get() {
    static JsonSink sink;
    return sink;
  }

  void Open(std::string path) { path_ = std::move(path); }
  bool enabled() const { return !path_.empty(); }

  /// Banner() routes through this: rows that follow belong to experiment
  /// `id` (e.g. "E11") with human description `description`.
  void SetBench(std::string id, std::string description) {
    bench_ = std::move(id);
    description_ = std::move(description);
  }

  void AddRow(const std::vector<std::string>& headers,
              const std::vector<std::string>& cells) {
    if (!enabled()) return;
    Row row;
    row.bench = bench_;
    row.description = description_;
    const size_t n = std::min(headers.size(), cells.size());
    for (size_t i = 0; i < n; ++i) row.metrics.emplace_back(headers[i], cells[i]);
    rows_.push_back(std::move(row));
  }

  void Flush() {
    if (!enabled() || flushed_) return;
    flushed_ = true;
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      GEOCOL_LOG(Error).With("path", path_) << "bench: cannot write JSON";
      return;
    }
    std::fprintf(f, "[\n");
    for (size_t r = 0; r < rows_.size(); ++r) {
      const Row& row = rows_[r];
      std::fprintf(f, "  {\"bench\": %s, \"config\": {\"description\": %s",
                   Quote(row.bench).c_str(), Quote(row.description).c_str());
      EmitEnv(f, "GEOCOL_BENCH_POINTS");
      EmitEnv(f, "GEOCOL_BENCH_REPS");
      EmitEnv(f, "GEOCOL_THREADS");
      EmitEnv(f, "GEOCOL_SIMD");
      std::fprintf(f, "}, \"metrics\": {");
      for (size_t i = 0; i < row.metrics.size(); ++i) {
        std::fprintf(f, "%s%s: %s", i == 0 ? "" : ", ",
                     Quote(row.metrics[i].first).c_str(),
                     NumberOrQuote(row.metrics[i].second).c_str());
      }
      std::fprintf(f, "}}%s\n", r + 1 == rows_.size() ? "" : ",");
    }
    std::fprintf(f, "]\n");
    std::fclose(f);
  }

  ~JsonSink() { Flush(); }

 private:
  struct Row {
    std::string bench;
    std::string description;
    std::vector<std::pair<std::string, std::string>> metrics;
  };

  static std::string Quote(const std::string& s) {
    std::string out = "\"";
    for (char c : s) {
      if (c == '"' || c == '\\') {
        out += '\\';
        out += c;
      } else if (c == '\n') {
        out += "\\n";
      } else {
        out += c;
      }
    }
    out += '"';
    return out;
  }

  // Cells that parse fully as finite numbers are emitted bare; everything
  // else ("85.3%", "1.20 MB") stays a JSON string.
  static std::string NumberOrQuote(const std::string& s) {
    if (!s.empty()) {
      char* end = nullptr;
      double v = std::strtod(s.c_str(), &end);
      if (end == s.c_str() + s.size() && std::isfinite(v)) return s;
    }
    return Quote(s);
  }

  static void EmitEnv(std::FILE* f, const char* name) {
    const char* v = std::getenv(name);
    if (v != nullptr) std::fprintf(f, ", %s: %s", Quote(name).c_str(), Quote(v).c_str());
  }

  std::string path_;
  std::string bench_ = "unknown";
  std::string description_;
  std::vector<Row> rows_;
  bool flushed_ = false;
};

/// Parses harness-level flags; every bench binary calls this first thing
/// in main().
///   --json <path>     write TablePrinter rows as a JSON array
///   --metrics <path>  dump the telemetry registry as JSON at exit
///                     (ingested by tools/bench_report.py --metrics)
/// With GEOCOL_METRICS=1 a one-line telemetry summary prints on exit.
inline void InitBench(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      JsonSink::Get().Open(argv[i + 1]);
    }
    if (std::strcmp(argv[i], "--metrics") == 0) {
      telemetry::WriteMetricsJsonAtExit(argv[i + 1]);
    }
  }
  std::atexit([] { telemetry::MaybePrintSummary(stderr); });
}

/// Minimal aligned-column table printer for the harness reports.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers, int col_width = 14)
      : headers_(std::move(headers)), width_(col_width) {
    PrintRowImpl(headers_);
    for (size_t i = 0; i < headers_.size(); ++i) {
      std::printf("%s", std::string(static_cast<size_t>(width_), '-').c_str());
      std::printf(i + 1 == headers_.size() ? "\n" : "-+-");
    }
  }

  void Row(const std::vector<std::string>& cells) {
    PrintRowImpl(cells);
    JsonSink::Get().AddRow(headers_, cells);
  }

  static std::string Num(double v, int precision = 2) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
  }
  static std::string Int(uint64_t v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(v));
    return buf;
  }
  static std::string Pct(double fraction, int precision = 1) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
    return buf;
  }
  static std::string Mb(uint64_t bytes) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2f MB", bytes / (1024.0 * 1024.0));
    return buf;
  }

 private:
  void PrintRowImpl(const std::vector<std::string>& cells) {
    for (size_t i = 0; i < cells.size(); ++i) {
      std::printf("%-*s", width_, cells[i].c_str());
      std::printf(i + 1 == cells.size() ? "\n" : " | ");
    }
  }

  std::vector<std::string> headers_;
  int width_;
};

inline void Banner(const char* experiment, const char* description) {
  std::printf("\n=================================================================\n");
  std::printf("%s\n%s\n", experiment, description);
  std::printf("=================================================================\n");
  // "E11: SIMD kernels" -> bench id "E11" for the JSON rows.
  std::string id(experiment);
  size_t cut = id.find_first_of(": ");
  if (cut != std::string::npos) id = id.substr(0, cut);
  JsonSink::Get().SetBench(id, description);
}

}  // namespace bench
}  // namespace geocol

#endif  // GEOCOL_BENCH_BENCH_COMMON_H_
