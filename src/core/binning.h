// Global bin bounds of a column imprint (Sidirourgos & Kersten, SIGMOD'13).
// The 64 bit positions of an imprint vector each correspond to one bin of
// the column's value domain; bins are approximately equi-depth, derived
// from a random sample of the column.
#ifndef GEOCOL_CORE_BINNING_H_
#define GEOCOL_CORE_BINNING_H_

#include <array>
#include <cstdint>

#include "columns/column.h"
#include "util/status.h"

namespace geocol {

/// The per-imprint global binning: `num_bins` ranges covering the whole
/// domain. Bin i covers (upper[i-1], upper[i]]; bin 0 is unbounded below
/// and the last bin unbounded above (its stored bound is +inf).
class BinBounds {
 public:
  BinBounds() = default;

  uint32_t num_bins() const { return num_bins_; }

  /// Upper (inclusive) bound of bin `i`.
  double upper(uint32_t i) const { return upper_[i]; }

  /// Bin index of value `v`: the first bin whose upper bound is >= v.
  /// Branch-light binary search — this is the hot loop of index build.
  uint32_t BinOf(double v) const {
    uint32_t idx = 0;
    uint32_t len = num_bins_;
    while (len > 1) {
      uint32_t half = len >> 1;
      if (v > upper_[idx + half - 1]) idx += half;
      len -= half;
    }
    return idx;
  }

  /// Builds bounds from explicit upper bounds (must be strictly
  /// increasing; the final +inf bin is appended automatically).
  static Result<BinBounds> FromBounds(const std::vector<double>& inner_bounds);

  /// Restores bounds from a raw persisted upper-bound array (size must be
  /// a power of two in [2, 64]; finite prefix strictly increasing, +inf
  /// padding allowed at the tail). Exact inverse of iterating upper().
  static Result<BinBounds> FromRawUppers(const std::vector<double>& uppers);

  /// Samples `sample_size` values from `column` and derives up to
  /// `max_bins` (rounded to a power of two in [2, 64]) equi-depth bins.
  static Result<BinBounds> Sample(const Column& column, uint32_t max_bins,
                                  uint32_t sample_size, uint64_t seed);

 private:
  uint32_t num_bins_ = 0;
  std::array<double, 64> upper_{};
};

}  // namespace geocol

#endif  // GEOCOL_CORE_BINNING_H_
