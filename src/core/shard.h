// The shard execution interface: scan/refine/aggregate over an opaque
// handle. The router talks to shards exclusively through this surface —
// bbox for pruning, epochs for cache keys, Select for local-row
// selections, GetColumn for merge-side value access — so a shard that
// lives in another process or on another node only needs to speak the
// same contract (DESIGN.md §12 sketches that evolution). Today's only
// implementation is LocalShard: a slice table plus a cache-off engine on
// a borrowed morsel pool.
#ifndef GEOCOL_CORE_SHARD_H_
#define GEOCOL_CORE_SHARD_H_

#include <memory>
#include <string>
#include <vector>

#include "columns/sharded_table.h"
#include "core/spatial_engine.h"

namespace geocol {

/// One spatial shard, addressed opaquely. All row ids in and out of a
/// shard are LOCAL (0-based within the shard); the router translates to
/// global ids via the shard's base offset.
class Shard {
 public:
  virtual ~Shard() = default;

  virtual uint64_t num_rows() const = 0;

  /// Tight bounds of the shard's points; the router prunes a shard when
  /// this misses the query envelope. Empty for a rowless shard.
  virtual const Box& bbox() const = 0;

  /// Mutation epoch of one column — the cache-key ingredient that makes a
  /// single-shard append invalidate by construction.
  virtual Result<uint64_t> ColumnEpoch(const std::string& name) const = 0;

  /// Process-unique identity of the shard's current column-version set.
  /// A live append publishes a NEW table version for the shard, so the
  /// token changes exactly when the shard's data does; router cache keys
  /// embed it per shard for precise invalidation.
  virtual uint64_t VersionToken() const = 0;

  /// Exact spatial selection local to this shard: ascending local row ids
  /// plus the shard's filter/refine stats and profile.
  virtual Result<SelectionResult> Select(
      const Geometry& geometry, double buffer,
      const std::vector<AttributeRange>& thematic) = 0;

  /// Local column values for merge-side aggregation and projection.
  virtual Result<ColumnPtr> GetColumn(const std::string& name) const = 0;

  /// Imprint storage currently held for this shard.
  virtual uint64_t IndexStorageBytes() const = 0;
};

/// In-process shard: wraps a ShardSlice's table with a SpatialQueryEngine
/// that shares the router's thread pool and never consults the query
/// result cache (caching happens once, at the router, over merged global
/// results). When the slice was loaded from disk, imprint sidecars live
/// in the shard's own directory next to its column files.
class LocalShard final : public Shard {
 public:
  /// `options` is the router's engine configuration; the cache binding is
  /// stripped and the imprints sidecar dir is pointed at `slice.dir`.
  LocalShard(const ShardSlice& slice, const EngineOptions& options,
             const std::string& x_column, const std::string& y_column,
             ThreadPool* pool);

  /// Replacement-shard constructor for live appends: shares the retired
  /// shard's (pre-configured) imprint manager, so the appended columns
  /// extend their lineage base's imprints incrementally instead of
  /// rebuilding, and untouched columns keep their index for free.
  LocalShard(const ShardSlice& slice, const EngineOptions& options,
             const std::string& x_column, const std::string& y_column,
             ThreadPool* pool, std::shared_ptr<ImprintManager> imprints);

  uint64_t num_rows() const override { return table_->num_rows(); }
  const Box& bbox() const override { return bbox_; }
  Result<uint64_t> ColumnEpoch(const std::string& name) const override;
  uint64_t VersionToken() const override { return table_->table_id(); }
  Result<SelectionResult> Select(
      const Geometry& geometry, double buffer,
      const std::vector<AttributeRange>& thematic) override;
  Result<ColumnPtr> GetColumn(const std::string& name) const override;
  uint64_t IndexStorageBytes() const override {
    return engine_.IndexStorageBytes();
  }

  SpatialQueryEngine& engine() { return engine_; }

  /// The shard's imprint manager, for hand-off to a replacement shard.
  const std::shared_ptr<ImprintManager>& imprint_manager_ptr() const {
    return engine_.imprint_manager_ptr();
  }

 private:
  static EngineOptions ShardOptions(const EngineOptions& options,
                                    const std::string& dir);

  std::shared_ptr<FlatTable> table_;
  Box bbox_;
  SpatialQueryEngine engine_;
};

}  // namespace geocol

#endif  // GEOCOL_CORE_SHARD_H_
