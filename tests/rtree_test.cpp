// STR R-tree tests: structure, query correctness against brute force,
// degenerate inputs, and the point-R-tree convenience builder.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "baselines/rtree.h"
#include "columns/flat_table.h"
#include "util/rng.h"

namespace geocol {
namespace {

std::vector<RTree::Entry> RandomBoxes(size_t n, uint64_t seed,
                                      double world = 1000) {
  Rng rng(seed);
  std::vector<RTree::Entry> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    double x = rng.UniformDouble(0, world);
    double y = rng.UniformDouble(0, world);
    double w = rng.UniformDouble(0, 10);
    double h = rng.UniformDouble(0, 10);
    out.push_back({Box(x, y, x + w, y + h), i});
  }
  return out;
}

std::set<uint64_t> BruteForce(const std::vector<RTree::Entry>& entries,
                              const Box& q) {
  std::set<uint64_t> out;
  for (const auto& e : entries) {
    if (e.box.Intersects(q)) out.insert(e.payload);
  }
  return out;
}

TEST(RTreeTest, EmptyTree) {
  RTree t = RTree::BulkLoad({});
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.num_entries(), 0u);
  std::vector<uint64_t> out;
  t.QueryBox(Box(0, 0, 1, 1), &out);
  EXPECT_TRUE(out.empty());
}

TEST(RTreeTest, SingleEntry) {
  RTree t = RTree::BulkLoad({{Box(1, 1, 2, 2), 42}});
  EXPECT_EQ(t.num_entries(), 1u);
  EXPECT_EQ(t.height(), 1);
  std::vector<uint64_t> out;
  t.QueryBox(Box(0, 0, 3, 3), &out);
  EXPECT_EQ(out, std::vector<uint64_t>{42});
  out.clear();
  t.QueryBox(Box(5, 5, 6, 6), &out);
  EXPECT_TRUE(out.empty());
}

TEST(RTreeTest, MatchesBruteForceOnRandomQueries) {
  auto entries = RandomBoxes(5000, 141);
  RTree t = RTree::BulkLoad(entries, 16);
  EXPECT_EQ(t.num_entries(), 5000u);
  Rng rng(142);
  for (int q = 0; q < 50; ++q) {
    double x = rng.UniformDouble(0, 1000), y = rng.UniformDouble(0, 1000);
    double s = rng.UniformDouble(1, 200);
    Box query(x, y, x + s, y + s);
    std::vector<uint64_t> out;
    t.QueryBox(query, &out);
    std::set<uint64_t> got(out.begin(), out.end());
    EXPECT_EQ(got.size(), out.size()) << "duplicate results";
    EXPECT_EQ(got, BruteForce(entries, query));
  }
}

TEST(RTreeTest, HeightGrowsLogarithmically) {
  RTree small = RTree::BulkLoad(RandomBoxes(16, 143), 16);
  EXPECT_EQ(small.height(), 1);
  RTree mid = RTree::BulkLoad(RandomBoxes(200, 144), 16);
  EXPECT_EQ(mid.height(), 2);
  RTree big = RTree::BulkLoad(RandomBoxes(5000, 145), 16);
  EXPECT_LE(big.height(), 4);
}

TEST(RTreeTest, PrunesNodesOnSelectiveQueries) {
  auto entries = RandomBoxes(20000, 146);
  RTree t = RTree::BulkLoad(entries, 16);
  std::vector<uint64_t> out;
  t.QueryBox(Box(0, 0, 10, 10), &out);
  // Visiting a tiny corner must touch far fewer nodes than the tree holds.
  EXPECT_LT(t.last_nodes_visited(), 20000u / 16 / 2);
}

TEST(RTreeTest, DuplicateAndDegenerateBoxes) {
  std::vector<RTree::Entry> entries;
  for (uint64_t i = 0; i < 100; ++i) {
    entries.push_back({Box(5, 5, 5, 5), i});  // all identical points
  }
  RTree t = RTree::BulkLoad(entries, 8);
  std::vector<uint64_t> out;
  t.QueryBox(Box(4, 4, 6, 6), &out);
  EXPECT_EQ(out.size(), 100u);
  out.clear();
  t.QueryBox(Box(6.1, 6.1, 7, 7), &out);
  EXPECT_TRUE(out.empty());
}

TEST(RTreeTest, FanoutTwoStillCorrect) {
  auto entries = RandomBoxes(500, 147);
  RTree t = RTree::BulkLoad(entries, 2);
  Box q(100, 100, 400, 400);
  std::vector<uint64_t> out;
  t.QueryBox(q, &out);
  EXPECT_EQ(std::set<uint64_t>(out.begin(), out.end()),
            BruteForce(entries, q));
}

TEST(RTreeTest, MemoryReported) {
  RTree t = RTree::BulkLoad(RandomBoxes(1000, 148));
  EXPECT_GT(t.MemoryBytes(), 1000 * sizeof(RTree::Entry));
}

TEST(PointRTreeTest, BuildsFromTableAndAnswersBoxQueries) {
  Rng rng(149);
  std::vector<double> xs(5000), ys(5000);
  for (size_t i = 0; i < xs.size(); ++i) {
    xs[i] = rng.UniformDouble(0, 100);
    ys[i] = rng.UniformDouble(0, 100);
  }
  FlatTable table("pc");
  ASSERT_TRUE(table.AddColumn(Column::FromVector("x", xs)).ok());
  ASSERT_TRUE(table.AddColumn(Column::FromVector("y", ys)).ok());
  auto tree = BuildPointRTree(table);
  ASSERT_TRUE(tree.ok());
  Box q(20, 20, 40, 50);
  std::vector<uint64_t> out;
  tree->QueryBox(q, &out);
  std::sort(out.begin(), out.end());
  std::vector<uint64_t> expected;
  for (uint64_t r = 0; r < xs.size(); ++r) {
    if (q.Contains(Point{xs[r], ys[r]})) expected.push_back(r);
  }
  EXPECT_EQ(out, expected);
}

TEST(PointRTreeTest, MissingColumnsRejected) {
  FlatTable t("bad");
  EXPECT_FALSE(BuildPointRTree(t).ok());
}

}  // namespace
}  // namespace geocol
