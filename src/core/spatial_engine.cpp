#include "core/spatial_engine.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "util/timer.h"

namespace geocol {

double AggregateRows(const Column& column, const std::vector<uint64_t>& rows,
                     AggKind kind) {
  if (kind == AggKind::kCount) return static_cast<double>(rows.size());
  if (rows.empty()) return std::nan("");
  double sum = 0.0;
  double mn = std::numeric_limits<double>::infinity();
  double mx = -std::numeric_limits<double>::infinity();
  for (uint64_t r : rows) {
    double v = column.GetDouble(r);
    sum += v;
    mn = std::min(mn, v);
    mx = std::max(mx, v);
  }
  switch (kind) {
    case AggKind::kSum: return sum;
    case AggKind::kAvg: return sum / static_cast<double>(rows.size());
    case AggKind::kMin: return mn;
    case AggKind::kMax: return mx;
    case AggKind::kCount: break;
  }
  return std::nan("");
}

SpatialQueryEngine::SpatialQueryEngine(std::shared_ptr<FlatTable> table,
                                       EngineOptions options,
                                       std::string x_column,
                                       std::string y_column)
    : table_(std::move(table)),
      options_(options),
      x_name_(std::move(x_column)),
      y_name_(std::move(y_column)),
      imprints_(options.imprints) {}

Result<SelectionResult> SpatialQueryEngine::SelectInBox(const Box& box) {
  return Execute(Geometry(box), 0.0, {});
}

Result<SelectionResult> SpatialQueryEngine::SelectInGeometry(
    const Geometry& geometry) {
  return Execute(geometry, 0.0, {});
}

Result<SelectionResult> SpatialQueryEngine::SelectWithinDistance(
    const Geometry& geometry, double d) {
  if (d < 0) return Status::InvalidArgument("negative distance");
  return Execute(geometry, d, {});
}

Result<SelectionResult> SpatialQueryEngine::Select(
    const Geometry& geometry, double buffer,
    const std::vector<AttributeRange>& thematic) {
  return Execute(geometry, buffer, thematic);
}

Result<double> SpatialQueryEngine::Aggregate(
    const Geometry& geometry, double buffer,
    const std::vector<AttributeRange>& thematic, const std::string& column,
    AggKind kind) {
  GEOCOL_ASSIGN_OR_RETURN(SelectionResult sel,
                          Execute(geometry, buffer, thematic));
  if (kind == AggKind::kCount) {
    return static_cast<double>(sel.row_ids.size());
  }
  GEOCOL_ASSIGN_OR_RETURN(ColumnPtr col, table_->GetColumn(column));
  return AggregateRows(*col, sel.row_ids, kind);
}

Status SpatialQueryEngine::FilterColumn(const ColumnPtr& column, double lo,
                                        double hi, BitVector* rows,
                                        ImprintScanStats* stats,
                                        QueryProfile* profile,
                                        const std::string& op_name) {
  Timer t;
  if (options_.use_imprints) {
    GEOCOL_ASSIGN_OR_RETURN(const ImprintsIndex* ix,
                            imprints_.GetOrBuild(column));
    double build_ms = t.ElapsedMillis();
    Timer t2;
    GEOCOL_RETURN_NOT_OK(ImprintRangeSelect(*column, *ix, lo, hi, rows, stats));
    char detail[128];
    std::snprintf(detail, sizeof(detail),
                  "lines %llu/%llu full=%llu (build %.2f ms)",
                  static_cast<unsigned long long>(stats->lines_candidate),
                  static_cast<unsigned long long>(stats->lines_total),
                  static_cast<unsigned long long>(stats->lines_full), build_ms);
    profile->Add(op_name, t2.ElapsedNanos(), column->size(),
                 stats->rows_selected, detail);
    return Status::OK();
  }
  FullScanRangeSelect(*column, lo, hi, rows);
  ImprintScanStats local;
  local.lines_total = 0;
  local.values_checked = column->size();
  local.rows_selected = rows->Count();
  *stats = local;
  profile->Add(op_name + ".scan", t.ElapsedNanos(), column->size(),
               local.rows_selected);
  return Status::OK();
}

Result<SelectionResult> SpatialQueryEngine::Execute(
    const Geometry& geometry, double buffer,
    const std::vector<AttributeRange>& thematic) {
  GEOCOL_ASSIGN_OR_RETURN(ColumnPtr xcol, table_->GetColumn(x_name_));
  GEOCOL_ASSIGN_OR_RETURN(ColumnPtr ycol, table_->GetColumn(y_name_));
  if (xcol->size() != ycol->size()) {
    return Status::Corruption("x/y column length mismatch");
  }
  SelectionResult result;
  if (xcol->empty()) return result;

  Box env = geometry.Envelope();
  if (buffer > 0) env = env.Expanded(buffer);
  if (env.empty()) return result;

  // ---- Step 1: filter. Imprint range selections on x and y, intersected,
  // then conjunctive thematic ranges, each narrowing the selection.
  BitVector rows;
  GEOCOL_RETURN_NOT_OK(FilterColumn(xcol, env.min_x, env.max_x, &rows,
                                    &result.filter_x, &result.profile,
                                    "filter.imprints.x"));
  BitVector rows_y;
  GEOCOL_RETURN_NOT_OK(FilterColumn(ycol, env.min_y, env.max_y, &rows_y,
                                    &result.filter_y, &result.profile,
                                    "filter.imprints.y"));
  {
    Timer t;
    rows.And(rows_y);
    result.profile.Add("filter.intersect", t.ElapsedNanos(),
                       result.filter_x.rows_selected + result.filter_y.rows_selected,
                       rows.Count());
  }
  for (const AttributeRange& attr : thematic) {
    GEOCOL_ASSIGN_OR_RETURN(ColumnPtr col, table_->GetColumn(attr.column));
    if (col->size() != xcol->size()) {
      return Status::Corruption("thematic column length mismatch: " +
                                attr.column);
    }
    BitVector sel;
    ImprintScanStats st;
    GEOCOL_RETURN_NOT_OK(FilterColumn(col, attr.lo, attr.hi, &sel, &st,
                                      &result.profile,
                                      "filter.imprints." + attr.column));
    Timer t;
    rows.And(sel);
    result.profile.Add("filter.intersect." + attr.column, t.ElapsedNanos(),
                       st.rows_selected, rows.Count());
  }

  // ---- Step 2: refinement. A box query with no buffer is already exact
  // after the envelope filter; everything else goes through the grid.
  Timer t;
  uint64_t candidates = rows.Count();
  if (geometry.is_box() && buffer == 0.0) {
    result.row_ids.reserve(candidates);
    rows.CollectSetBits(&result.row_ids);
    result.refine.candidates = candidates;
    result.refine.accepted = candidates;
    result.profile.Add("refine.none(box)", t.ElapsedNanos(), candidates,
                       candidates);
    return result;
  }
  GEOCOL_RETURN_NOT_OK(GridRefine(*xcol, *ycol, rows, geometry, buffer,
                                  options_.refine, &result.row_ids,
                                  &result.refine));
  char detail[128];
  std::snprintf(detail, sizeof(detail),
                "grid=%ux%u cells in/bnd/out=%llu/%llu/%llu exact=%llu",
                result.refine.grid_cols, result.refine.grid_rows,
                static_cast<unsigned long long>(result.refine.cells_inside),
                static_cast<unsigned long long>(result.refine.cells_boundary),
                static_cast<unsigned long long>(result.refine.cells_outside),
                static_cast<unsigned long long>(result.refine.exact_tests));
  result.profile.Add(options_.refine.use_grid ? "refine.grid"
                                              : "refine.exhaustive",
                     t.ElapsedNanos(), candidates, result.row_ids.size(),
                     detail);
  return result;
}

}  // namespace geocol
