#include "telemetry/metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdarg>
#include <cstdlib>
#include <limits>

namespace geocol {
namespace telemetry {

namespace {

std::atomic<bool> g_metrics_enabled{true};

/// Round-robin shard assignment: cheap, stable per thread, and spreads
/// concurrent writers across cache lines even when thread ids collide.
std::atomic<size_t> g_next_shard{0};

/// Escapes a string for embedding in a JSON document.
void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      case '\r': *out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendFormat(std::string* out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void AppendFormat(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  int n = std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  if (n > 0) out->append(buf, std::min<size_t>(static_cast<size_t>(n), sizeof(buf) - 1));
}

}  // namespace

void SetMetricsEnabled(bool enabled) {
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

bool MetricsEnabled() {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

size_t Counter::ShardIndex() {
  thread_local size_t slot =
      g_next_shard.fetch_add(1, std::memory_order_relaxed) % kShards;
  return slot;
}

size_t Histogram::BucketIndexFor(int64_t value) {
  uint64_t v = value < 0 ? 0 : static_cast<uint64_t>(value);
  if (v < kSubBuckets) return static_cast<size_t>(v);
  // msb >= kSubBucketBits here; the top kSubBucketBits+1 bits pick the
  // octave and its linear sub-bucket.
  const int msb = 63 - __builtin_clzll(v);
  const size_t sub =
      static_cast<size_t>((v >> (msb - kSubBucketBits)) & (kSubBuckets - 1));
  return static_cast<size_t>(msb - kSubBucketBits + 1) * kSubBuckets + sub;
}

int64_t Histogram::BucketUpperBoundFor(size_t i) {
  if (i >= kNumBuckets) return std::numeric_limits<int64_t>::max();
  if (i < kSubBuckets) return static_cast<int64_t>(i);
  const uint64_t octave = i / kSubBuckets + (kSubBucketBits - 1);
  const uint64_t sub = i % kSubBuckets;
  // 2^62-octave max: the +1 sub-bucket end minus one stays <= INT64_MAX.
  const uint64_t upper = (uint64_t{1} << octave) +
                         (sub + 1) * (uint64_t{1} << (octave - kSubBucketBits)) -
                         1;
  return static_cast<int64_t>(upper);
}

int64_t Histogram::ValueAtQuantile(double q) const {
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Snapshot the buckets once and derive the total from the snapshot, so
  // a concurrent Observe cannot leave rank > walked-total.
  std::vector<uint64_t> snap(kNumBuckets);
  uint64_t total = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    snap[i] = buckets_[i].load(std::memory_order_relaxed);
    total += snap[i];
  }
  if (total == 0) return 0;
  uint64_t rank = static_cast<uint64_t>(
      std::ceil(q * static_cast<double>(total)));
  if (rank < 1) rank = 1;
  if (rank > total) rank = total;
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    cumulative += snap[i];
    if (cumulative >= rank) return BucketUpperBoundFor(i);
  }
  return BucketUpperBoundFor(kNumBuckets - 1);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never destroyed
  return *registry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot.reset(new Counter());
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot.reset(new Gauge());
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         int64_t first_bound) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot.reset(new Histogram(first_bound));
  return *slot;
}

namespace {

/// HELP text for the exposition format. Well-known metrics get a curated
/// line; everything else a generic one (scrapers only require presence +
/// escaping, but the core series deserve real descriptions).
const char* MetricHelp(const std::string& name) {
  static const std::map<std::string, const char*>* kHelp =
      new std::map<std::string, const char*>{
          {"geocol_queries_total", "Spatial selection queries executed."},
          {"geocol_query_nanos",
           "Engine-level query latency in nanoseconds."},
          {"geocol_sql_wall_nanos",
           "End-to-end SQL statement wall time (parse+plan+execute), ns."},
          {"geocol_io_read_bytes_total",
           "Bytes read from column storage files."},
          {"geocol_io_write_bytes_total",
           "Bytes written to column storage files."},
          {"geocol_crc_chunk_verifies_total",
           "CRC32C chunk verifications performed on read."},
          {"geocol_imprint_scans_total", "Column imprint scans executed."},
          {"geocol_chunk_faults_total",
           "Chunk-cache misses that faulted a chunk from disk."},
          {"geocol_chunk_cache_hits_total", "Chunk-cache hits."},
          {"geocol_chunk_fault_us",
           "Latency of a single chunk fault (read+verify+decode), us."},
          {"geocol_shards_scanned_total",
           "Shards answered by a routed query (scanned or covered)."},
          {"geocol_shards_pruned_total",
           "Shards skipped by bbox pruning before any scan."},
          {"geocol_shards_covered_total",
           "Shards answered via the bbox-as-zonemap covered shortcut."},
          {"geocol_flight_events_total",
           "Query events appended to the flight recorder."},
          {"geocol_flight_bytes_total",
           "Bytes appended to the flight-recorder log."},
          {"geocol_flight_rotations_total",
           "Flight-recorder log rotations."},
          {"geocol_flight_append_errors_total",
           "Flight-recorder append failures (recording degraded)."},
      };
  auto it = kHelp->find(name);
  return it != kHelp->end() ? it->second
                            : "GeoColumn engine metric (auto-registered).";
}

}  // namespace

std::string EscapeLabelValue(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string MetricsRegistry::RenderPrometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& kv : counters_) {
    AppendFormat(&out, "# HELP %s %s\n", kv.first.c_str(),
                 MetricHelp(kv.first));
    AppendFormat(&out, "# TYPE %s counter\n", kv.first.c_str());
    AppendFormat(&out, "%s %" PRIu64 "\n", kv.first.c_str(),
                 kv.second->Value());
  }
  for (const auto& kv : gauges_) {
    AppendFormat(&out, "# HELP %s %s\n", kv.first.c_str(),
                 MetricHelp(kv.first));
    AppendFormat(&out, "# TYPE %s gauge\n", kv.first.c_str());
    AppendFormat(&out, "%s %" PRId64 "\n", kv.first.c_str(),
                 kv.second->Value());
  }
  for (const auto& kv : histograms_) {
    const Histogram& h = *kv.second;
    AppendFormat(&out, "# HELP %s %s\n", kv.first.c_str(),
                 MetricHelp(kv.first));
    AppendFormat(&out, "# TYPE %s histogram\n", kv.first.c_str());
    // Sparse cumulative series: 1888 log-linear buckets are mostly empty,
    // so emit a boundary only where the count advances, plus +Inf.
    uint64_t cumulative = 0;
    for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      uint64_t c = h.BucketCount(i);
      if (c == 0) continue;
      cumulative += c;
      AppendFormat(&out, "%s_bucket{le=\"%s\"} %" PRIu64 "\n",
                   kv.first.c_str(),
                   EscapeLabelValue(
                       std::to_string(Histogram::BucketUpperBoundFor(i)))
                       .c_str(),
                   cumulative);
    }
    AppendFormat(&out, "%s_bucket{le=\"+Inf\"} %" PRIu64 "\n",
                 kv.first.c_str(), cumulative);
    AppendFormat(&out, "%s_sum %" PRId64 "\n", kv.first.c_str(), h.Sum());
    AppendFormat(&out, "%s_count %" PRIu64 "\n", kv.first.c_str(), h.Count());
  }
  return out;
}

std::string MetricsRegistry::RenderJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& kv : counters_) {
    if (!first) out += ",";
    first = false;
    out += "\n    ";
    AppendJsonString(&out, kv.first);
    AppendFormat(&out, ": %" PRIu64, kv.second->Value());
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& kv : gauges_) {
    if (!first) out += ",";
    first = false;
    out += "\n    ";
    AppendJsonString(&out, kv.first);
    AppendFormat(&out, ": %" PRId64, kv.second->Value());
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& kv : histograms_) {
    const Histogram& h = *kv.second;
    if (!first) out += ",";
    first = false;
    out += "\n    ";
    AppendJsonString(&out, kv.first);
    out += ": {\"count\": ";
    AppendFormat(&out, "%" PRIu64 ", \"sum\": %" PRId64, h.Count(), h.Sum());
    AppendFormat(&out,
                 ", \"p50\": %" PRId64 ", \"p90\": %" PRId64
                 ", \"p99\": %" PRId64 ", \"p999\": %" PRId64,
                 h.ValueAtQuantile(0.50), h.ValueAtQuantile(0.90),
                 h.ValueAtQuantile(0.99), h.ValueAtQuantile(0.999));
    out += ", \"buckets\": [";
    bool first_bucket = true;
    for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      uint64_t c = h.BucketCount(i);
      if (c == 0) continue;
      if (!first_bucket) out += ", ";
      first_bucket = false;
      AppendFormat(&out, "{\"le\": %" PRId64 ", \"count\": %" PRIu64 "}",
                   Histogram::BucketUpperBoundFor(i), c);
    }
    out += "]}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& kv : counters_) kv.second->Reset();
  for (auto& kv : gauges_) kv.second->Reset();
  for (auto& kv : histograms_) kv.second->Reset();
}

std::string SummaryLine() {
  MetricsRegistry& reg = MetricsRegistry::Global();
  uint64_t bytes_read = reg.GetCounter("geocol_io_read_bytes_total").Value();
  uint64_t bytes_written = reg.GetCounter("geocol_io_write_bytes_total").Value();
  uint64_t crc = reg.GetCounter("geocol_crc_chunk_verifies_total").Value();
  uint64_t hits = reg.GetCounter("geocol_imprint_cache_hits_total").Value();
  uint64_t misses = reg.GetCounter("geocol_imprint_cache_misses_total").Value();
  uint64_t scans = reg.GetCounter("geocol_imprint_scans_total").Value();
  uint64_t queries = reg.GetCounter("geocol_queries_total").Value();
  double hit_rate =
      (hits + misses) > 0 ? 100.0 * static_cast<double>(hits) /
                                static_cast<double>(hits + misses)
                          : 0.0;
  std::string out;
  AppendFormat(&out,
               "[telemetry] queries=%" PRIu64 " imprint_scans=%" PRIu64
               " imprint_hit_rate=%.1f%% io_read=%.2f MiB io_write=%.2f MiB"
               " crc_verifies=%" PRIu64,
               queries, scans, hit_rate,
               static_cast<double>(bytes_read) / (1024.0 * 1024.0),
               static_cast<double>(bytes_written) / (1024.0 * 1024.0), crc);
  return out;
}

void MaybePrintSummary(std::FILE* out) {
  const char* env = std::getenv("GEOCOL_METRICS");
  if (env == nullptr || std::string(env) != "1") return;
  std::fprintf(out, "%s\n", SummaryLine().c_str());
}

namespace {
std::string* g_metrics_json_path = nullptr;

void DumpMetricsJson() {
  if (g_metrics_json_path == nullptr) return;
  std::FILE* f = std::fopen(g_metrics_json_path->c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "telemetry: cannot write %s\n",
                 g_metrics_json_path->c_str());
    return;
  }
  std::string json = MetricsRegistry::Global().RenderJson();
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
}
}  // namespace

void WriteMetricsJsonAtExit(std::string path) {
  if (g_metrics_json_path == nullptr) {
    g_metrics_json_path = new std::string(std::move(path));
    std::atexit(DumpMetricsJson);
  } else {
    *g_metrics_json_path = std::move(path);
  }
}

}  // namespace telemetry
}  // namespace geocol
