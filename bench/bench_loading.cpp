// E1 (paper §3.2): loading a LAS/LAZ tile archive into each system.
//
// Paper claim being reproduced: the flat-table binary loader ("for each
// property ... a binary dump of a C-array ... appended ... using COPY
// BINARY") loads the full AHN2 in < 1 day while PostgreSQL pointcloud
// needs ~1 week — roughly a 7x gap. Our harness contrasts:
//   flat+binary  — the paper's loader (dump + COPY BINARY)
//   flat+csv     — conventional CSV conversion + parsing
//   blockstore   — PG-pointcloud-style blocking + compression + R-tree
//   filestore    — LAStools: no load at all, but lassort+lasindex prep
#include <cstdio>

#include "baselines/block_store.h"
#include "baselines/file_store.h"
#include "bench/bench_common.h"
#include "las/las_reader.h"
#include "loader/binary_loader.h"
#include "loader/csv_loader.h"
#include "util/tempdir.h"
#include "util/timer.h"

using namespace geocol;
using namespace geocol::bench;

int main(int argc, char** argv) {
  geocol::bench::InitBench(argc, argv);
  const uint64_t n = BenchPoints(400000);
  Banner("E1: bulk loading throughput (paper section 3.2)",
         "flat+COPY BINARY vs flat+CSV vs block store vs file-store prep");

  TempDir tmp("bench-load");
  std::string tiles = tmp.File("tiles");
  std::string scratch = tmp.File("scratch");
  if (!MakeDir(tiles).ok() || !MakeDir(scratch).ok()) return 1;

  AhnGenerator gen(SurveyOptions(n));
  {
    AhnGeneratorOptions o = gen.options();
    AhnGeneratorOptions sized = o;
    double area = std::max(o.extent.area(), 1.0);
    sized.point_density = static_cast<double>(n) / area;
    sized.scan_line_spacing = 1.0 / std::sqrt(sized.point_density);
    AhnGenerator g2(sized);
    auto tiles_written = g2.WriteTileDirectory(tiles, /*compress=*/true);
    if (!tiles_written.ok()) {
      std::fprintf(stderr, "tile generation failed\n");
      return 1;
    }
    std::printf("survey: ~%llu points in %llu LAZ tiles\n",
                static_cast<unsigned long long>(n),
                static_cast<unsigned long long>(*tiles_written));
  }

  TablePrinter table({"loader", "points", "total s", "read s", "convert s",
                      "append s", "Mpts/s", "vs binary"});

  double binary_seconds = 0;
  uint64_t points = 0;

  // ---- flat table + binary loader (the paper's approach).
  {
    BinaryLoader loader(scratch);
    LoadStats stats;
    auto t = loader.LoadDirectory(tiles, &stats);
    if (!t.ok()) return 1;
    binary_seconds = stats.TotalSeconds();
    points = stats.points;
    table.Row({"flat+binary", TablePrinter::Int(stats.points),
               TablePrinter::Num(stats.TotalSeconds()),
               TablePrinter::Num(stats.read_seconds),
               TablePrinter::Num(stats.convert_seconds),
               TablePrinter::Num(stats.append_seconds),
               TablePrinter::Num(stats.PointsPerSecond() / 1e6),
               "1.00x"});
  }

  // ---- flat table + CSV round trip.
  {
    CsvLoader loader(scratch);
    LoadStats stats;
    auto t = loader.LoadDirectory(tiles, &stats);
    if (!t.ok()) return 1;
    table.Row({"flat+csv", TablePrinter::Int(stats.points),
               TablePrinter::Num(stats.TotalSeconds()),
               TablePrinter::Num(stats.read_seconds),
               TablePrinter::Num(stats.convert_seconds),
               TablePrinter::Num(stats.append_seconds),
               TablePrinter::Num(stats.PointsPerSecond() / 1e6),
               TablePrinter::Num(stats.TotalSeconds() / binary_seconds) + "x"});
  }

  // ---- block store (PG-pointcloud-like): read tiles, block, compress,
  // index.
  {
    Timer read_timer;
    std::vector<LasPointRecord> records;
    LasHeader header;
    std::vector<std::string> files;
    if (!ListFiles(tiles, ".laz", &files).ok()) return 1;
    for (const auto& f : files) {
      auto tile = ReadLasFile(f);
      if (!tile.ok()) return 1;
      header = tile->header;
      records.insert(records.end(), tile->points.begin(), tile->points.end());
    }
    double read_s = read_timer.ElapsedSeconds();
    BlockStore::BuildStats bs;
    auto store = BlockStore::Build(std::move(records), header,
                                   BlockStoreOptions(), &bs);
    if (!store.ok()) return 1;
    double total = read_s + bs.TotalSeconds();
    table.Row({"blockstore", TablePrinter::Int(store->num_points()),
               TablePrinter::Num(total), TablePrinter::Num(read_s),
               TablePrinter::Num(bs.sort_seconds + bs.block_seconds),
               TablePrinter::Num(bs.compress_seconds + bs.index_seconds),
               TablePrinter::Num(store->num_points() / total / 1e6),
               TablePrinter::Num(total / binary_seconds) + "x"});
  }

  // ---- file store: "loading" is lassort + lasindex preparation.
  {
    Timer t;
    if (!FileStore::SortTiles(tiles).ok()) return 1;
    double sort_s = t.ElapsedSeconds();
    FileStoreOptions opts;
    opts.use_index = true;
    auto store = FileStore::Open(tiles, opts);
    if (!store.ok()) return 1;
    Timer t2;
    if (!store->BuildIndexes().ok()) return 1;
    double index_s = t2.ElapsedSeconds();
    double total = sort_s + index_s;
    table.Row({"filestore prep", TablePrinter::Int(points),
               TablePrinter::Num(total), TablePrinter::Num(sort_s),
               TablePrinter::Num(index_s), "-",
               TablePrinter::Num(points / total / 1e6),
               TablePrinter::Num(total / binary_seconds) + "x"});
  }

  std::printf(
      "\nexpected shape (paper): flat+binary fastest; CSV parsing dominates "
      "the conventional path;\nblock store pays sort+compress+index on top "
      "of reading (PostgreSQL: ~7x slower at AHN2 scale).\n");
  return 0;
}
