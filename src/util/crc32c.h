// CRC32C (Castagnoli, reflected polynomial 0x82F63B78) — the checksum
// guarding every persisted format (column chunks, table manifests, imprint
// sidecars, layer files). Software slice-by-8 everywhere, with a runtime-
// dispatched SSE4.2 hardware path on x86-64 so verification stays well
// under the read-path noise floor.
#ifndef GEOCOL_UTIL_CRC32C_H_
#define GEOCOL_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace geocol {

/// Extends a running CRC32C over `n` more bytes. Start from 0 and feed
/// consecutive byte ranges to checksum a file incrementally:
///   crc = Crc32cExtend(Crc32cExtend(0, a, na), b, nb) == Crc32c(a||b).
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n);

/// One-shot CRC32C of a buffer ("123456789" -> 0xE3069283).
inline uint32_t Crc32c(const void* data, size_t n) {
  return Crc32cExtend(0, data, n);
}

/// Combines the CRCs of two adjacent byte ranges without touching the
/// data: Crc32cCombine(Crc32c(a, na), Crc32c(b, nb), nb) == Crc32c(a||b).
/// O(log len_b) GF(2) matrix products, so a whole-file checksum can be
/// assembled from per-chunk checksums already on disk.
uint32_t Crc32cCombine(uint32_t crc_a, uint32_t crc_b, uint64_t len_b);

/// Precomputed "advance a CRC register over len_b zero bytes" operator.
/// Building it costs one Crc32cCombine worth of matrix squarings; applying
/// it is 32 xors. Folding the per-chunk CRCs of a thousand-chunk column
/// file into its whole-payload CRC (the paged open path) therefore builds
/// one operator for the fixed chunk size and pays O(1) per chunk.
struct Crc32cCombineOp {
  uint32_t mat[32];
};

Crc32cCombineOp Crc32cCombineOpFor(uint64_t len_b);

/// Crc32cCombine(crc_a, crc_b, len_b) using the operator built for len_b.
uint32_t Crc32cCombineWithOp(const Crc32cCombineOp& op, uint32_t crc_a,
                             uint32_t crc_b);

namespace internal {
/// Portable slice-by-8 implementation, exposed so tests can pin the
/// hardware path against it.
uint32_t Crc32cSoftware(uint32_t crc, const void* data, size_t n);
/// True when the hardware CRC32 instruction is used on this machine.
bool Crc32cHardwareEnabled();
}  // namespace internal

}  // namespace geocol

#endif  // GEOCOL_UTIL_CRC32C_H_
