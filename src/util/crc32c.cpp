#include "util/crc32c.h"

#include <array>
#include <cstring>

namespace geocol {

namespace {

constexpr uint32_t kPoly = 0x82F63B78u;  // reflected Castagnoli

struct Tables {
  // table[k][b]: CRC of byte b followed by k zero bytes; slice-by-8 folds
  // eight input bytes per iteration through these.
  uint32_t t[8][256];
};

Tables BuildTables() {
  Tables tables{};
  for (uint32_t b = 0; b < 256; ++b) {
    uint32_t crc = b;
    for (int k = 0; k < 8; ++k) {
      crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
    }
    tables.t[0][b] = crc;
  }
  for (int k = 1; k < 8; ++k) {
    for (uint32_t b = 0; b < 256; ++b) {
      uint32_t crc = tables.t[k - 1][b];
      tables.t[k][b] = tables.t[0][crc & 0xFF] ^ (crc >> 8);
    }
  }
  return tables;
}

const Tables& GetTables() {
  static const Tables tables = BuildTables();
  return tables;
}

// ---- CRC combination over GF(2) ----------------------------------------
//
// Appending one zero bit to a message multiplies its CRC register by x
// (mod the polynomial); that map is linear over GF(2), so "append k zero
// bytes" is a 32x32 bit matrix. Squaring the matrix doubles the zero
// count, which lets Crc32cCombine apply "append len_b zeros" to crc_a in
// O(log len_b) products, after which the two CRCs simply xor (the
// pre/post inversion terms cancel between the shifted crc_a and crc_b).

uint32_t Gf2MatrixTimes(const uint32_t* mat, uint32_t vec) {
  uint32_t sum = 0;
  while (vec != 0) {
    if (vec & 1) sum ^= *mat;
    vec >>= 1;
    ++mat;
  }
  return sum;
}

void Gf2MatrixSquare(uint32_t* square, const uint32_t* mat) {
  for (int n = 0; n < 32; ++n) square[n] = Gf2MatrixTimes(mat, mat[n]);
}

}  // namespace

Crc32cCombineOp Crc32cCombineOpFor(uint64_t len_b) {
  Crc32cCombineOp op;
  for (int n = 0; n < 32; ++n) op.mat[n] = 1u << n;  // identity
  if (len_b == 0) return op;

  uint32_t even[32];
  uint32_t odd[32];
  odd[0] = kPoly;
  uint32_t row = 1;
  for (int n = 1; n < 32; ++n) {
    odd[n] = row;
    row <<= 1;
  }
  Gf2MatrixSquare(even, odd);
  Gf2MatrixSquare(odd, even);

  // Same walk as Crc32cCombine, but composing matrices instead of
  // advancing one vector. All these matrices are powers of the same shift,
  // so composition order is immaterial.
  uint64_t len = len_b;
  do {
    Gf2MatrixSquare(even, odd);
    if (len & 1) {
      for (int n = 0; n < 32; ++n) op.mat[n] = Gf2MatrixTimes(even, op.mat[n]);
    }
    len >>= 1;
    if (len == 0) break;
    Gf2MatrixSquare(odd, even);
    if (len & 1) {
      for (int n = 0; n < 32; ++n) op.mat[n] = Gf2MatrixTimes(odd, op.mat[n]);
    }
    len >>= 1;
  } while (len != 0);
  return op;
}

uint32_t Crc32cCombineWithOp(const Crc32cCombineOp& op, uint32_t crc_a,
                             uint32_t crc_b) {
  return Gf2MatrixTimes(op.mat, crc_a) ^ crc_b;
}

uint32_t Crc32cCombine(uint32_t crc_a, uint32_t crc_b, uint64_t len_b) {
  if (len_b == 0) return crc_a;
  uint32_t even[32];  // "append 2^k zero bits" operator, even k
  uint32_t odd[32];   // ... odd k

  // One zero bit: the reflected-polynomial shift.
  odd[0] = kPoly;
  uint32_t row = 1;
  for (int n = 1; n < 32; ++n) {
    odd[n] = row;
    row <<= 1;
  }
  Gf2MatrixSquare(even, odd);  // two zero bits
  Gf2MatrixSquare(odd, even);  // four zero bits

  // Walk the bits of len_b (in bytes), squaring up through zero counts.
  uint64_t len = len_b;
  do {
    Gf2MatrixSquare(even, odd);
    if (len & 1) crc_a = Gf2MatrixTimes(even, crc_a);
    len >>= 1;
    if (len == 0) break;
    Gf2MatrixSquare(odd, even);
    if (len & 1) crc_a = Gf2MatrixTimes(odd, crc_a);
    len >>= 1;
  } while (len != 0);
  return crc_a ^ crc_b;
}

namespace internal {

uint32_t Crc32cSoftware(uint32_t crc, const void* data, size_t n) {
  const Tables& tb = GetTables();
  const uint8_t* p = static_cast<const uint8_t*>(data);
  crc = ~crc;
  // Align to 8 bytes so the slice loop can load whole words.
  while (n > 0 && (reinterpret_cast<uintptr_t>(p) & 7) != 0) {
    crc = tb.t[0][(crc ^ *p++) & 0xFF] ^ (crc >> 8);
    --n;
  }
  while (n >= 8) {
    uint64_t word;
    std::memcpy(&word, p, 8);
    word ^= crc;  // little-endian: low 4 bytes absorb the running crc
    crc = tb.t[7][word & 0xFF] ^ tb.t[6][(word >> 8) & 0xFF] ^
          tb.t[5][(word >> 16) & 0xFF] ^ tb.t[4][(word >> 24) & 0xFF] ^
          tb.t[3][(word >> 32) & 0xFF] ^ tb.t[2][(word >> 40) & 0xFF] ^
          tb.t[1][(word >> 48) & 0xFF] ^ tb.t[0][(word >> 56) & 0xFF];
    p += 8;
    n -= 8;
  }
  while (n > 0) {
    crc = tb.t[0][(crc ^ *p++) & 0xFF] ^ (crc >> 8);
    --n;
  }
  return ~crc;
}

}  // namespace internal

#if defined(__x86_64__) && defined(__GNUC__)

namespace {

// The crc32q instruction has 3-cycle latency but 1-cycle throughput, so a
// single dependent chain runs at ~1/3 of peak. Big buffers are therefore
// split into three equal lanes advanced by three independent chains, whose
// results are recombined with the linear "advance the CRC register through
// kLane zero bytes" operator, precomputed as byte-sliced tables.
constexpr size_t kLane = 1024;  // bytes per interleaved lane

struct ZeroShift {
  uint32_t t[4][256];
};

ZeroShift BuildZeroShift() {
  const Tables& tb = GetTables();
  ZeroShift z{};
  for (int i = 0; i < 4; ++i) {
    for (uint32_t v = 0; v < 256; ++v) {
      uint32_t s = v << (8 * i);
      for (size_t k = 0; k < kLane; ++k) s = tb.t[0][s & 0xFF] ^ (s >> 8);
      z.t[i][v] = s;
    }
  }
  return z;
}

inline uint32_t ShiftLane(const ZeroShift& z, uint32_t s) {
  return z.t[0][s & 0xFF] ^ z.t[1][(s >> 8) & 0xFF] ^
         z.t[2][(s >> 16) & 0xFF] ^ z.t[3][s >> 24];
}

__attribute__((target("sse4.2"))) uint32_t Crc32cHardware(uint32_t crc,
                                                          const void* data,
                                                          size_t n) {
  static const ZeroShift zshift = BuildZeroShift();
  const uint8_t* p = static_cast<const uint8_t*>(data);
  crc = ~crc;
  while (n > 0 && (reinterpret_cast<uintptr_t>(p) & 7) != 0) {
    crc = __builtin_ia32_crc32qi(crc, *p++);
    --n;
  }
  uint64_t crc64 = crc;
  while (n >= 3 * kLane) {
    uint64_t a = crc64, b = 0, c = 0;
    for (size_t i = 0; i < kLane; i += 8) {
      uint64_t wa, wb, wc;
      std::memcpy(&wa, p + i, 8);
      std::memcpy(&wb, p + kLane + i, 8);
      std::memcpy(&wc, p + 2 * kLane + i, 8);
      a = __builtin_ia32_crc32di(a, wa);
      b = __builtin_ia32_crc32di(b, wb);
      c = __builtin_ia32_crc32di(c, wc);
    }
    // States compose linearly: serial(A||B||C) = L(L(a)) ^ L(b) ^ c with
    // L = the kLane-zero-bytes advance.
    crc64 = ShiftLane(zshift, ShiftLane(zshift, static_cast<uint32_t>(a))) ^
            ShiftLane(zshift, static_cast<uint32_t>(b)) ^
            static_cast<uint32_t>(c);
    p += 3 * kLane;
    n -= 3 * kLane;
  }
  while (n >= 8) {
    uint64_t word;
    std::memcpy(&word, p, 8);
    crc64 = __builtin_ia32_crc32di(crc64, word);
    p += 8;
    n -= 8;
  }
  crc = static_cast<uint32_t>(crc64);
  while (n > 0) {
    crc = __builtin_ia32_crc32qi(crc, *p++);
    --n;
  }
  return ~crc;
}

bool DetectSse42() { return __builtin_cpu_supports("sse4.2"); }

}  // namespace

namespace internal {
bool Crc32cHardwareEnabled() {
  static const bool enabled = DetectSse42();
  return enabled;
}
}  // namespace internal

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n) {
  if (internal::Crc32cHardwareEnabled()) {
    return Crc32cHardware(crc, data, n);
  }
  return internal::Crc32cSoftware(crc, data, n);
}

#else  // portable fallback

namespace internal {
bool Crc32cHardwareEnabled() { return false; }
}  // namespace internal

uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n) {
  return internal::Crc32cSoftware(crc, data, n);
}

#endif

}  // namespace geocol
