// E13: the epoch-aware query result cache (DESIGN.md §11).
//
// Three workloads over the same AHN-like survey:
//   repeat — an interactive client re-issues the exact same viewport
//            query; steady-state repeats are served from the selection
//            tier. Acceptance bar: >=5x speedup on the hit. (Large
//            results pass the admission doorkeeper on their second
//            sighting, so one untimed promoting execution sits between
//            the timed cold and warm runs.)
//   pan    — a map client pans: every viewport is new, so every query
//            misses. The cache-enabled engine must stay within 2% of a
//            cache-free engine — the doorkeeper turns each one-shot miss
//            into a key build plus one fingerprint store, deferring the
//            copy-and-retain cost until a query actually repeats.
//   agg    — a dashboard refreshes AVG(z) over a fixed region; repeats
//            are served from the aggregate tier.
#include <cstdio>

#include "bench/bench_common.h"
#include "cache/query_cache.h"
#include "core/spatial_engine.h"

using namespace geocol;
using namespace geocol::bench;

namespace {

Box Viewport(const Box& extent, double fraction, double cx, double cy) {
  double side = std::sqrt(extent.area() * fraction);
  double x = extent.min_x + extent.width() * cx;
  double y = extent.min_y + extent.height() * cy;
  return Box(x - side / 2, y - side / 2, x + side / 2, y + side / 2);
}

}  // namespace

int main(int argc, char** argv) {
  geocol::bench::InitBench(argc, argv);
  const uint64_t n = BenchPoints(1000000);
  Banner("E13: query result cache (repeat / pan / aggregate)",
         "hit speedup on repeated viewports, cold overhead while panning");

  auto table = GenerateSurvey(n);
  const Box extent = SurveyOptions(n).extent;
  std::printf("survey: %llu points\n",
              static_cast<unsigned long long>(table->num_rows()));

  auto cache = std::make_shared<cache::QueryResultCache>();
  EngineOptions cached_opts;
  cached_opts.cache.budget_bytes = 256ull << 20;
  cached_opts.cache.instance = cache;
  SpatialQueryEngine cached(table, cached_opts);
  SpatialQueryEngine plain(table);  // budget 0: the pre-cache engine

  const int reps = BenchReps();
  const double fractions[3] = {0.001, 0.01, 0.05};

  // ---- Workload 1: exact repeats. Cold = first-sighting miss (cache
  // cleared before each timed run), then one untimed execution promotes
  // the entry through the doorkeeper, warm = steady-state hit.
  TablePrinter repeat_out(
      {"workload", "query", "results", "cold ms", "warm ms", "speedup"}, 12);
  for (int qi = 0; qi < 3; ++qi) {
    Box q = Viewport(extent, fractions[qi], 0.43, 0.57);
    uint64_t results = 0;
    double t_cold = 1e300, t_warm = 1e300;
    for (int rep = 0; rep < reps; ++rep) {
      cache->Clear();
      {
        Timer t;
        auto r = cached.SelectInBox(q);
        t_cold = std::min(t_cold, t.ElapsedMillis());
        results = r.ok() ? r->count() : 0;
      }
      (void)cached.SelectInBox(q);  // promotes past the doorkeeper
      {
        Timer t;
        (void)cached.SelectInBox(q);
        t_warm = std::min(t_warm, t.ElapsedMillis());
      }
    }
    char label[16];
    std::snprintf(label, sizeof(label), "V%d %.3g%%", qi + 1,
                  fractions[qi] * 100);
    repeat_out.Row({"repeat", label, TablePrinter::Int(results),
                    TablePrinter::Num(t_cold, 3), TablePrinter::Num(t_warm, 3),
                    TablePrinter::Num(t_warm > 0 ? t_cold / t_warm : 0.0, 1)});
  }

  // ---- Workload 2: panning. Every viewport in the sweep is distinct, so
  // the cached engine misses on all of them; measure the full sweep against
  // the cache-free engine.
  constexpr int kPanSteps = 16;
  TablePrinter pan_out(
      {"workload", "query", "results", "cache ms", "plain ms", "overhead"},
      12);
  {
    uint64_t results = 0;
    double t_cache = 1e300, t_plain = 1e300;
    for (int rep = 0; rep < reps; ++rep) {
      cache->Clear();
      {
        Timer t;
        for (int s = 0; s < kPanSteps; ++s) {
          Box q = Viewport(extent, 0.01, 0.1 + 0.05 * s, 0.3 + 0.02 * s);
          auto r = cached.SelectInBox(q);
          results += r.ok() ? r->count() : 0;
        }
        t_cache = std::min(t_cache, t.ElapsedMillis());
      }
      {
        Timer t;
        for (int s = 0; s < kPanSteps; ++s) {
          Box q = Viewport(extent, 0.01, 0.1 + 0.05 * s, 0.3 + 0.02 * s);
          (void)plain.SelectInBox(q);
        }
        t_plain = std::min(t_plain, t.ElapsedMillis());
      }
    }
    pan_out.Row({"pan", "16 x 1%", TablePrinter::Int(results / (2 * reps)),
                 TablePrinter::Num(t_cache, 3), TablePrinter::Num(t_plain, 3),
                 TablePrinter::Pct(t_plain > 0 ? t_cache / t_plain - 1.0
                                               : 0.0)});
  }

  // ---- Workload 3: repeated aggregate over a fixed region.
  TablePrinter agg_out(
      {"workload", "query", "value", "cold ms", "warm ms", "speedup"}, 12);
  {
    Box q = Viewport(extent, 0.05, 0.5, 0.5);
    Geometry g(q);
    double value = 0.0;
    double t_cold = 1e300, t_warm = 1e300;
    for (int rep = 0; rep < reps; ++rep) {
      cache->Clear();
      {
        Timer t;
        auto r = cached.Aggregate(g, 0.0, {}, "z", AggKind::kAvg);
        t_cold = std::min(t_cold, t.ElapsedMillis());
        value = r.ok() ? *r : 0.0;
      }
      {
        Timer t;
        (void)cached.Aggregate(g, 0.0, {}, "z", AggKind::kAvg);
        t_warm = std::min(t_warm, t.ElapsedMillis());
      }
    }
    agg_out.Row({"agg", "AVG(z) 5%", TablePrinter::Num(value, 3),
                 TablePrinter::Num(t_cold, 3), TablePrinter::Num(t_warm, 3),
                 TablePrinter::Num(t_warm > 0 ? t_cold / t_warm : 0.0, 1)});
  }

  std::printf("\n%s\n", cache->StatsToString().c_str());
  std::printf(
      "expected shape: repeat/agg speedups of 5x or more (a hit copies the\n"
      "row-id list instead of scanning imprints and refining cells); pan\n"
      "overhead within noise (<2%%) — the doorkeeper reduces a one-shot\n"
      "miss to one key build and one fingerprint store.\n");
  return 0;
}
