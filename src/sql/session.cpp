#include "sql/session.h"

#include "sql/parser.h"

namespace geocol {
namespace sql {

Result<ResultSet> Session::Execute(const std::string& sql_text) {
  GEOCOL_ASSIGN_OR_RETURN(SelectStmt stmt, Parse(sql_text));
  GEOCOL_ASSIGN_OR_RETURN(PlannedQuery plan, PlanQuery(catalog_, std::move(stmt)));
  last_plan_ = plan.Describe();
  GEOCOL_ASSIGN_OR_RETURN(ResultSet rs, ExecuteQuery(plan));
  last_profile_ = rs.profile;
  return rs;
}

}  // namespace sql
}  // namespace geocol
