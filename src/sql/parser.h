// Recursive-descent parser for the GeoColumn SQL dialect.
#ifndef GEOCOL_SQL_PARSER_H_
#define GEOCOL_SQL_PARSER_H_

#include <string>

#include "sql/ast.h"
#include "util/status.h"

namespace geocol {
namespace sql {

/// Parses one statement (an optional trailing ';' is accepted).
Result<SelectStmt> Parse(const std::string& sql);

}  // namespace sql
}  // namespace geocol

#endif  // GEOCOL_SQL_PARSER_H_
