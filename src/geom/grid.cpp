#include "geom/grid.h"

#include <algorithm>
#include <cmath>

#include "simd/kernels.h"

namespace geocol {

RegularGrid::RegularGrid(const Box& extent, uint32_t cols, uint32_t rows)
    : extent_(extent),
      cols_(std::max<uint32_t>(cols, 1)),
      rows_(std::max<uint32_t>(rows, 1)) {
  // Inflate degenerate extents so CellOf() stays well defined.
  if (extent_.width() <= 0.0) extent_.max_x = extent_.min_x + 1e-9;
  if (extent_.height() <= 0.0) extent_.max_y = extent_.min_y + 1e-9;
  inv_cell_w_ = cols_ / extent_.width();
  inv_cell_h_ = rows_ / extent_.height();
}

void RegularGrid::CellOfBatch(const double* xs, const double* ys, size_t n,
                              uint64_t* cells) const {
  simd::GridParams g;
  g.min_x = extent_.min_x;
  g.min_y = extent_.min_y;
  g.inv_w = inv_cell_w_;
  g.inv_h = inv_cell_h_;
  g.cols = cols_;
  g.rows = rows_;
  simd::Kernels().cell_of(xs, ys, n, g, cells);
}

Box RegularGrid::CellBox(uint64_t idx) const {
  uint64_t cy = idx / cols_;
  uint64_t cx = idx % cols_;
  double w = extent_.width() / cols_;
  double h = extent_.height() / rows_;
  return Box(extent_.min_x + cx * w, extent_.min_y + cy * h,
             extent_.min_x + (cx + 1) * w, extent_.min_y + (cy + 1) * h);
}

std::vector<BoxRelation> RegularGrid::ClassifyCells(const Geometry& g,
                                                    double buffer) const {
  std::vector<BoxRelation> out(num_cells());
  for (uint64_t i = 0; i < out.size(); ++i) {
    out[i] = ClassifyBoxGeometry(CellBox(i), g, buffer);
  }
  return out;
}

RegularGrid RegularGrid::ForExpectedPoints(const Box& extent,
                                           uint64_t num_points,
                                           uint64_t target_points_per_cell,
                                           uint32_t max_cells_per_axis) {
  double cells =
      static_cast<double>(num_points) / std::max<uint64_t>(target_points_per_cell, 1);
  double per_axis = std::sqrt(std::max(cells, 1.0));
  // Keep the grid aspect ratio close to the extent's.
  double w = std::max(extent.width(), 1e-9);
  double h = std::max(extent.height(), 1e-9);
  double aspect = std::sqrt(w / h);
  auto clampu = [&](double v) {
    return static_cast<uint32_t>(
        std::clamp(v, 1.0, static_cast<double>(max_cells_per_axis)));
  };
  return RegularGrid(extent, clampu(per_axis * aspect),
                     clampu(per_axis / aspect));
}

}  // namespace geocol
