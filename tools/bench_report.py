#!/usr/bin/env python3
"""Merge per-binary bench JSON outputs into BENCH_E*.json artifacts.

Every bench binary accepts `--json <path>` and writes its table rows as a
JSON array of {bench, config, metrics} objects (bench_imprints, which runs
on google-benchmark, writes that library's native report instead; it is
converted here). This script groups all rows by experiment id and writes
one BENCH_<id>.json per experiment:

    build/bench/bench_selection --json /tmp/sel.json
    build/bench/bench_simd      --json /tmp/simd.json
    tools/bench_report.py --out-dir . /tmp/sel.json /tmp/simd.json
    # -> ./BENCH_E3.json ./BENCH_E11.json ...
"""

import argparse
import json
import os
import sys
from collections import defaultdict

# google-benchmark reports carry no experiment id; map the binary name
# (recorded in the report context) to its id from EXPERIMENTS.md.
GBENCH_EXPERIMENTS = {"bench_imprints": "E7"}


def rows_from_file(path):
    with open(path) as f:
        doc = json.load(f)
    if isinstance(doc, list):
        return doc  # native {bench, config, metrics} rows
    if isinstance(doc, dict) and "benchmarks" in doc:
        # google-benchmark format: one row per benchmark entry.
        exe = os.path.basename(
            doc.get("context", {}).get("executable", "")) or "gbench"
        bench = GBENCH_EXPERIMENTS.get(exe, exe)
        rows = []
        for b in doc["benchmarks"]:
            metrics = {
                k: v
                for k, v in b.items()
                if isinstance(v, (int, float)) or k == "name"
            }
            rows.append({
                "bench": bench,
                "config": {"source": exe},
                "metrics": metrics,
            })
        return rows
    raise ValueError(f"{path}: unrecognised bench JSON shape")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("inputs", nargs="+", help="per-binary --json outputs")
    ap.add_argument("--out-dir", default=".",
                    help="directory for BENCH_<id>.json files")
    args = ap.parse_args()

    by_bench = defaultdict(list)
    for path in args.inputs:
        try:
            for row in rows_from_file(path):
                by_bench[str(row.get("bench", "unknown"))].append(row)
        except (OSError, ValueError, json.JSONDecodeError) as e:
            print(f"bench_report: skipping {path}: {e}", file=sys.stderr)

    os.makedirs(args.out_dir, exist_ok=True)
    for bench, rows in sorted(by_bench.items()):
        out = os.path.join(args.out_dir, f"BENCH_{bench}.json")
        with open(out, "w") as f:
            json.dump(rows, f, indent=2)
            f.write("\n")
        print(f"wrote {out} ({len(rows)} rows)")
    if not by_bench:
        print("bench_report: no rows found", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
