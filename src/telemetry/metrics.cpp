#include "telemetry/metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdlib>
#include <limits>

namespace geocol {
namespace telemetry {

namespace {

std::atomic<bool> g_metrics_enabled{true};

/// Round-robin shard assignment: cheap, stable per thread, and spreads
/// concurrent writers across cache lines even when thread ids collide.
std::atomic<size_t> g_next_shard{0};

/// Escapes a string for embedding in a JSON document.
void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      case '\r': *out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendFormat(std::string* out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void AppendFormat(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list ap;
  va_start(ap, fmt);
  int n = std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  if (n > 0) out->append(buf, std::min<size_t>(static_cast<size_t>(n), sizeof(buf) - 1));
}

}  // namespace

void SetMetricsEnabled(bool enabled) {
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

bool MetricsEnabled() {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

size_t Counter::ShardIndex() {
  thread_local size_t slot =
      g_next_shard.fetch_add(1, std::memory_order_relaxed) % kShards;
  return slot;
}

int64_t Histogram::BucketUpperBound(size_t i) const {
  if (i + 1 >= kNumBuckets) return std::numeric_limits<int64_t>::max();
  // first_bound * 4^i, saturating.
  int64_t bound = first_bound_;
  for (size_t k = 0; k < i; ++k) {
    if (bound > std::numeric_limits<int64_t>::max() / 4) {
      return std::numeric_limits<int64_t>::max();
    }
    bound *= 4;
  }
  return bound;
}

size_t Histogram::BucketIndex(int64_t value) const {
  int64_t bound = first_bound_;
  for (size_t i = 0; i + 1 < kNumBuckets; ++i) {
    if (value <= bound) return i;
    if (bound > std::numeric_limits<int64_t>::max() / 4) break;
    bound *= 4;
  }
  return kNumBuckets - 1;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never destroyed
  return *registry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot.reset(new Counter());
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot.reset(new Gauge());
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         int64_t first_bound) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot.reset(new Histogram(first_bound));
  return *slot;
}

std::string MetricsRegistry::RenderPrometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& kv : counters_) {
    AppendFormat(&out, "# TYPE %s counter\n", kv.first.c_str());
    AppendFormat(&out, "%s %" PRIu64 "\n", kv.first.c_str(),
                 kv.second->Value());
  }
  for (const auto& kv : gauges_) {
    AppendFormat(&out, "# TYPE %s gauge\n", kv.first.c_str());
    AppendFormat(&out, "%s %" PRId64 "\n", kv.first.c_str(),
                 kv.second->Value());
  }
  for (const auto& kv : histograms_) {
    const Histogram& h = *kv.second;
    AppendFormat(&out, "# TYPE %s histogram\n", kv.first.c_str());
    uint64_t cumulative = 0;
    for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      cumulative += h.BucketCount(i);
      int64_t bound = h.BucketUpperBound(i);
      if (bound == std::numeric_limits<int64_t>::max()) {
        AppendFormat(&out, "%s_bucket{le=\"+Inf\"} %" PRIu64 "\n",
                     kv.first.c_str(), cumulative);
      } else {
        AppendFormat(&out, "%s_bucket{le=\"%" PRId64 "\"} %" PRIu64 "\n",
                     kv.first.c_str(), bound, cumulative);
      }
    }
    AppendFormat(&out, "%s_sum %" PRId64 "\n", kv.first.c_str(), h.Sum());
    AppendFormat(&out, "%s_count %" PRIu64 "\n", kv.first.c_str(), h.Count());
  }
  return out;
}

std::string MetricsRegistry::RenderJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& kv : counters_) {
    if (!first) out += ",";
    first = false;
    out += "\n    ";
    AppendJsonString(&out, kv.first);
    AppendFormat(&out, ": %" PRIu64, kv.second->Value());
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& kv : gauges_) {
    if (!first) out += ",";
    first = false;
    out += "\n    ";
    AppendJsonString(&out, kv.first);
    AppendFormat(&out, ": %" PRId64, kv.second->Value());
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& kv : histograms_) {
    const Histogram& h = *kv.second;
    if (!first) out += ",";
    first = false;
    out += "\n    ";
    AppendJsonString(&out, kv.first);
    out += ": {\"count\": ";
    AppendFormat(&out, "%" PRIu64 ", \"sum\": %" PRId64 ", \"buckets\": [",
                 h.Count(), h.Sum());
    for (size_t i = 0; i < Histogram::kNumBuckets; ++i) {
      if (i) out += ", ";
      int64_t bound = h.BucketUpperBound(i);
      if (bound == std::numeric_limits<int64_t>::max()) {
        AppendFormat(&out, "{\"le\": \"+Inf\", \"count\": %" PRIu64 "}",
                     h.BucketCount(i));
      } else {
        AppendFormat(&out, "{\"le\": %" PRId64 ", \"count\": %" PRIu64 "}",
                     bound, h.BucketCount(i));
      }
    }
    out += "]}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& kv : counters_) kv.second->Reset();
  for (auto& kv : gauges_) kv.second->Reset();
  for (auto& kv : histograms_) kv.second->Reset();
}

std::string SummaryLine() {
  MetricsRegistry& reg = MetricsRegistry::Global();
  uint64_t bytes_read = reg.GetCounter("geocol_io_read_bytes_total").Value();
  uint64_t bytes_written = reg.GetCounter("geocol_io_write_bytes_total").Value();
  uint64_t crc = reg.GetCounter("geocol_crc_chunk_verifies_total").Value();
  uint64_t hits = reg.GetCounter("geocol_imprint_cache_hits_total").Value();
  uint64_t misses = reg.GetCounter("geocol_imprint_cache_misses_total").Value();
  uint64_t scans = reg.GetCounter("geocol_imprint_scans_total").Value();
  uint64_t queries = reg.GetCounter("geocol_queries_total").Value();
  double hit_rate =
      (hits + misses) > 0 ? 100.0 * static_cast<double>(hits) /
                                static_cast<double>(hits + misses)
                          : 0.0;
  std::string out;
  AppendFormat(&out,
               "[telemetry] queries=%" PRIu64 " imprint_scans=%" PRIu64
               " imprint_hit_rate=%.1f%% io_read=%.2f MiB io_write=%.2f MiB"
               " crc_verifies=%" PRIu64,
               queries, scans, hit_rate,
               static_cast<double>(bytes_read) / (1024.0 * 1024.0),
               static_cast<double>(bytes_written) / (1024.0 * 1024.0), crc);
  return out;
}

void MaybePrintSummary(std::FILE* out) {
  const char* env = std::getenv("GEOCOL_METRICS");
  if (env == nullptr || std::string(env) != "1") return;
  std::fprintf(out, "%s\n", SummaryLine().c_str());
}

namespace {
std::string* g_metrics_json_path = nullptr;

void DumpMetricsJson() {
  if (g_metrics_json_path == nullptr) return;
  std::FILE* f = std::fopen(g_metrics_json_path->c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "telemetry: cannot write %s\n",
                 g_metrics_json_path->c_str());
    return;
  }
  std::string json = MetricsRegistry::Global().RenderJson();
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
}
}  // namespace

void WriteMetricsJsonAtExit(std::string path) {
  if (g_metrics_json_path == nullptr) {
    g_metrics_json_path = new std::string(std::move(path));
    std::atexit(DumpMetricsJson);
  } else {
    *g_metrics_json_path = std::move(path);
  }
}

}  // namespace telemetry
}  // namespace geocol
