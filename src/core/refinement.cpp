#include "core/refinement.h"

#include <algorithm>

#include "geom/predicates.h"

namespace geocol {

namespace {

inline bool ExactTest(const Geometry& g, double buffer, const Point& p) {
  return buffer > 0.0 ? GeometryDWithin(g, p, buffer)
                      : GeometryContainsPoint(g, p);
}

Status CheckInputs(const Column& x, const Column& y,
                   const BitVector& candidates) {
  if (x.size() != y.size()) {
    return Status::InvalidArgument("x/y column length mismatch");
  }
  if (candidates.size() != x.size()) {
    return Status::InvalidArgument("candidate vector length mismatch");
  }
  return Status::OK();
}

}  // namespace

Status GridRefine(const Column& x, const Column& y, const BitVector& candidates,
                  const Geometry& geometry, double buffer,
                  const RefineOptions& options, std::vector<uint64_t>* out_rows,
                  RefinementStats* stats) {
  GEOCOL_RETURN_NOT_OK(CheckInputs(x, y, candidates));
  if (!options.use_grid) {
    return ExhaustiveRefine(x, y, candidates, geometry, buffer, out_rows,
                            stats);
  }
  RefinementStats local;

  // Pass 1: collect candidate rows and their extent. The grid only needs to
  // cover the filtered superset, which is already close to the query
  // envelope thanks to the imprint filter.
  std::vector<uint64_t> cand_rows;
  Box extent;
  for (size_t r = candidates.FindNext(0); r < candidates.size();
       r = candidates.FindNext(r + 1)) {
    cand_rows.push_back(r);
    extent.Extend(x.GetDouble(r), y.GetDouble(r));
  }
  local.candidates = cand_rows.size();
  if (cand_rows.empty()) {
    if (stats != nullptr) *stats = local;
    return Status::OK();
  }

  RegularGrid grid = RegularGrid::ForExpectedPoints(
      extent, cand_rows.size(), options.target_points_per_cell,
      options.max_cells_per_axis);
  local.cells_total = grid.num_cells();
  local.grid_cols = grid.cols();
  local.grid_rows = grid.rows();

  // Pass 2: classify cells lazily — only cells that actually hold
  // candidates are ever evaluated against the geometry (§3.3: "the spatial
  // relation is then evaluated between each non-empty cell and G").
  constexpr uint8_t kUnclassified = 0xFF;
  std::vector<uint8_t> cell_class(grid.num_cells(), kUnclassified);

  for (uint64_t r : cand_rows) {
    Point p{x.GetDouble(r), y.GetDouble(r)};
    uint64_t cell = grid.CellOf(p.x, p.y);
    uint8_t& cls = cell_class[cell];
    if (cls == kUnclassified) {
      cls = static_cast<uint8_t>(grid.ClassifyCell(cell, geometry, buffer));
      ++local.cells_nonempty;
      switch (static_cast<BoxRelation>(cls)) {
        case BoxRelation::kInside: ++local.cells_inside; break;
        case BoxRelation::kOutside: ++local.cells_outside; break;
        case BoxRelation::kBoundary: ++local.cells_boundary; break;
      }
    }
    switch (static_cast<BoxRelation>(cls)) {
      case BoxRelation::kInside:
        out_rows->push_back(r);
        ++local.accepted;
        break;
      case BoxRelation::kOutside:
        break;
      case BoxRelation::kBoundary:
        ++local.exact_tests;
        if (ExactTest(geometry, buffer, p)) {
          out_rows->push_back(r);
          ++local.accepted;
        }
        break;
    }
  }
  if (stats != nullptr) *stats = local;
  return Status::OK();
}

Status ExhaustiveRefine(const Column& x, const Column& y,
                        const BitVector& candidates, const Geometry& geometry,
                        double buffer, std::vector<uint64_t>* out_rows,
                        RefinementStats* stats) {
  GEOCOL_RETURN_NOT_OK(CheckInputs(x, y, candidates));
  RefinementStats local;
  for (size_t r = candidates.FindNext(0); r < candidates.size();
       r = candidates.FindNext(r + 1)) {
    ++local.candidates;
    ++local.exact_tests;
    Point p{x.GetDouble(r), y.GetDouble(r)};
    if (ExactTest(geometry, buffer, p)) {
      out_rows->push_back(r);
      ++local.accepted;
    }
  }
  if (stats != nullptr) *stats = local;
  return Status::OK();
}

}  // namespace geocol
