#include "util/binary_io.h"

#include <sys/stat.h>

#include <cerrno>

namespace geocol {

BinaryWriter::~BinaryWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

Status BinaryWriter::Open(const std::string& path) {
  if (file_ != nullptr) return Status::Internal("writer already open");
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) {
    return Status::IOError("cannot open for write: " + path + " (" +
                           std::strerror(errno) + ")");
  }
  bytes_written_ = 0;
  return Status::OK();
}

Status BinaryWriter::Close() {
  if (file_ == nullptr) return Status::OK();
  int rc = std::fclose(file_);
  file_ = nullptr;
  if (rc != 0) return Status::IOError("fclose failed");
  return Status::OK();
}

Status BinaryWriter::WriteBytes(const void* data, size_t n) {
  if (file_ == nullptr) return Status::Internal("writer not open");
  if (n == 0) return Status::OK();
  if (std::fwrite(data, 1, n, file_) != n) {
    return Status::IOError("short write");
  }
  bytes_written_ += n;
  return Status::OK();
}

Status BinaryWriter::WriteString(const std::string& s) {
  GEOCOL_RETURN_NOT_OK(WriteScalar<uint32_t>(static_cast<uint32_t>(s.size())));
  return WriteBytes(s.data(), s.size());
}

BinaryReader::~BinaryReader() {
  if (file_ != nullptr) std::fclose(file_);
}

Status BinaryReader::Open(const std::string& path) {
  if (file_ != nullptr) return Status::Internal("reader already open");
  file_ = std::fopen(path.c_str(), "rb");
  if (file_ == nullptr) {
    return Status::IOError("cannot open for read: " + path + " (" +
                           std::strerror(errno) + ")");
  }
  return Status::OK();
}

Status BinaryReader::Close() {
  if (file_ == nullptr) return Status::OK();
  std::fclose(file_);
  file_ = nullptr;
  return Status::OK();
}

Status BinaryReader::ReadBytes(void* data, size_t n) {
  if (file_ == nullptr) return Status::Internal("reader not open");
  if (n == 0) return Status::OK();
  if (std::fread(data, 1, n, file_) != n) {
    return Status::Corruption("short read (truncated file?)");
  }
  return Status::OK();
}

Status BinaryReader::ReadString(std::string* s, uint32_t max_len) {
  uint32_t len = 0;
  GEOCOL_RETURN_NOT_OK(ReadScalar(&len));
  if (len > max_len) {
    return Status::Corruption("string length " + std::to_string(len) +
                              " exceeds limit");
  }
  s->resize(len);
  return ReadBytes(s->data(), len);
}

Status BinaryReader::Seek(uint64_t offset) {
  if (file_ == nullptr) return Status::Internal("reader not open");
  if (std::fseek(file_, static_cast<long>(offset), SEEK_SET) != 0) {
    return Status::IOError("seek failed");
  }
  return Status::OK();
}

Result<uint64_t> BinaryReader::FileSize() {
  if (file_ == nullptr) return Status::Internal("reader not open");
  long cur = std::ftell(file_);
  if (std::fseek(file_, 0, SEEK_END) != 0) return Status::IOError("seek end");
  long end = std::ftell(file_);
  if (std::fseek(file_, cur, SEEK_SET) != 0) return Status::IOError("seek back");
  return static_cast<uint64_t>(end);
}

Result<uint64_t> FileSizeBytes(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    return Status::IOError("stat failed: " + path);
  }
  return static_cast<uint64_t>(st.st_size);
}

bool PathExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

Status WriteFileBytes(const std::string& path, const void* data, size_t n) {
  BinaryWriter w;
  GEOCOL_RETURN_NOT_OK(w.Open(path));
  GEOCOL_RETURN_NOT_OK(w.WriteBytes(data, n));
  return w.Close();
}

Status ReadFileBytes(const std::string& path, std::vector<uint8_t>* out) {
  BinaryReader r;
  GEOCOL_RETURN_NOT_OK(r.Open(path));
  GEOCOL_ASSIGN_OR_RETURN(uint64_t size, r.FileSize());
  out->resize(size);
  GEOCOL_RETURN_NOT_OK(r.ReadBytes(out->data(), size));
  return r.Close();
}

}  // namespace geocol
