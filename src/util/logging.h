// Minimal leveled logger. Benchmarks and the SQL shell use it for progress
// reporting; the library itself logs only at kWarning and above.
//
// Messages can carry structured key=value fields alongside the free-form
// text; fields are appended to the line in insertion order:
//
//   GEOCOL_LOG(Warning).With("path", p).With("rows", n)
//       << "quarantined corrupt sidecar";
//   // [WARN imprints_io.cpp:42] quarantined corrupt sidecar path=... rows=...
//
// The initial level is kWarning, overridable by the GEOCOL_LOG_LEVEL env
// var (debug|info|warning|error, read once at first use); an explicit
// SetLogLevel() call always wins over the env var.
#ifndef GEOCOL_UTIL_LOGGING_H_
#define GEOCOL_UTIL_LOGGING_H_

#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace geocol {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum level; messages below it are dropped.
/// Overrides any GEOCOL_LOG_LEVEL env setting.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Emits one log line to stderr; used via the GEOCOL_LOG macro.
void LogMessage(LogLevel level, const char* file, int line,
                const std::string& message);

namespace internal {

/// Accumulates a stream-formatted message plus structured fields and
/// emits it on destruction.
class LogStream {
 public:
  LogStream(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogStream() {
    std::string message = stream_.str();
    for (const auto& kv : fields_) {
      if (!message.empty()) message += " ";
      message += kv.first;
      message += "=";
      message += kv.second;
    }
    LogMessage(level_, file_, line_, message);
  }

  template <typename T>
  LogStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

  /// Attaches a structured key=value field (value is stream-formatted).
  template <typename T>
  LogStream& With(std::string key, const T& value) {
    std::ostringstream v;
    v << value;
    fields_.emplace_back(std::move(key), v.str());
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
  std::vector<std::pair<std::string, std::string>> fields_;
};

}  // namespace internal
}  // namespace geocol

#define GEOCOL_LOG(level)                                              \
  ::geocol::internal::LogStream(::geocol::LogLevel::k##level, __FILE__, \
                                __LINE__)

#endif  // GEOCOL_UTIL_LOGGING_H_
