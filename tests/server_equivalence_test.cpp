// Differential proof that the multi-tenant server is an oracle-faithful
// front end over sql::Session (DESIGN.md §16): N concurrent clients
// replay a seeded workload and every result digest / error status is
// diffed bitwise against a single-threaded local session over the same
// catalog — including the shared-scan batched path (forced by holding
// the lone worker while overlapping viewport queries pile up) and live
// appends racing readers (per-statement epoch pinning).
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "core/live_table.h"
#include "core/table_appender.h"
#include "gis/catalog.h"
#include "pointcloud/generator.h"
#include "server/client.h"
#include "server/server.h"
#include "sql/executor.h"
#include "sql/session.h"
#include "util/rng.h"

namespace geocol {
namespace {

constexpr double kMinX = 85000, kMinY = 444000, kMaxX = 85060,
                 kMaxY = 444060;

/// Seeded statement mix: viewport aggregates, projections with ORDER BY /
/// LIMIT, thematic filters, and a periodic planner error (the server must
/// refuse it with the oracle's exact Status).
std::vector<std::string> WorkloadStatements(size_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> fx(kMinX, kMaxX);
  std::uniform_real_distribution<double> fy(kMinY, kMaxY);
  std::vector<std::string> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    double x0 = fx(rng), x1 = fx(rng), y0 = fy(rng), y1 = fy(rng);
    if (x0 > x1) std::swap(x0, x1);
    if (y0 > y1) std::swap(y0, y1);
    char where[256];
    std::snprintf(where, sizeof(where),
                  "x BETWEEN %.17g AND %.17g AND y BETWEEN %.17g AND %.17g",
                  x0, x1, y0, y1);
    switch (i % 6) {
      case 0:
        out.push_back(std::string("SELECT COUNT(*) FROM ahn2 WHERE ") +
                      where);
        break;
      case 1:
        out.push_back(std::string("SELECT AVG(z), MIN(z), MAX(z) FROM ahn2"
                                  " WHERE ") +
                      where);
        break;
      case 2:
        out.push_back(std::string("SELECT x, y, z FROM ahn2 WHERE ") +
                      where + " ORDER BY z DESC LIMIT 16");
        break;
      case 3:
        out.push_back(std::string("SELECT COUNT(*) FROM ahn2 WHERE ") +
                      where + " AND z >= 5");
        break;
      case 4:
        out.push_back(std::string("SELECT SUM(intensity) FROM ahn2 WHERE ") +
                      where);
        break;
      default:
        out.push_back(std::string("SELECT no_such_col FROM ahn2 WHERE ") +
                      where);
        break;
    }
  }
  return out;
}

/// One client-side observation, comparable against the oracle.
struct Observed {
  std::string sql;
  bool ok = false;
  uint32_t digest = 0;    ///< when ok
  std::string error;      ///< Status::ToString() when !ok
};

void DiffAgainstOracle(const std::vector<Observed>& observed,
                       Catalog* catalog) {
  sql::Session oracle(catalog);
  for (const auto& o : observed) {
    auto local = oracle.Execute(o.sql);
    ASSERT_EQ(o.ok, local.ok()) << o.sql << " server/oracle ok mismatch";
    if (o.ok) {
      EXPECT_EQ(o.digest, sql::ResultSetDigest(*local)) << o.sql;
    } else {
      EXPECT_EQ(o.error, local.status().ToString()) << o.sql;
    }
  }
}

TEST(ServerEquivalenceTest, ConcurrentClientsMatchOracle) {
  AhnGeneratorOptions gopts;
  gopts.extent = Box(kMinX, kMinY, kMaxX, kMaxY);
  AhnGenerator gen(gopts);
  auto table = gen.GenerateTable(8000);
  ASSERT_TRUE(table.ok());
  Catalog catalog;
  ASSERT_TRUE(catalog.AddPointCloud("ahn2", *table).ok());

  server::ServerOptions sopts;
  sopts.workers = 3;
  server::Server srv(&catalog, sopts);
  ASSERT_TRUE(srv.Start().ok());
  const int port = srv.port();

  constexpr int kClients = 6, kQueriesPerClient = 30;
  std::vector<std::vector<Observed>> per_client(kClients);
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      auto statements = WorkloadStatements(kQueriesPerClient, 9100 + c);
      server::Client::Options copts;
      copts.port = port;
      copts.client_id = "client-" + std::to_string(c);
      auto client = server::Client::Connect(copts);
      ASSERT_TRUE(client.ok());
      for (const auto& sql : statements) {
        auto outcome = client->Query(sql);
        ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
        Observed o;
        o.sql = sql;
        o.ok = outcome->ok;
        if (outcome->ok) {
          o.digest = sql::ResultSetDigest(outcome->result);
        } else {
          o.error = outcome->error.ToStatus().ToString();
        }
        per_client[c].push_back(std::move(o));
      }
    });
  }
  for (auto& t : threads) t.join();
  srv.Stop();

  for (const auto& observed : per_client) {
    ASSERT_EQ(observed.size(), static_cast<size_t>(kQueriesPerClient));
    DiffAgainstOracle(observed, &catalog);
  }
  server::ServerStats s = srv.stats();
  EXPECT_EQ(s.queries_ok + s.queries_error,
            static_cast<uint64_t>(kClients * kQueriesPerClient));
}

TEST(ServerEquivalenceTest, SharedScanBatchedPathBitIdentical) {
  AhnGeneratorOptions gopts;
  gopts.extent = Box(kMinX, kMinY, kMaxX, kMaxY);
  AhnGenerator gen(gopts);
  auto table = gen.GenerateTable(8000);
  ASSERT_TRUE(table.ok());
  Catalog catalog;
  ASSERT_TRUE(catalog.AddPointCloud("ahn2", *table).ok());

  // One worker, briefly plugged: while it holds the plug query in the
  // test hook, the viewport queries below pile up in the queue, so its
  // next pop extracts them all as one shared-scan batch group.
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> held{0};
  server::ServerOptions sopts;
  sopts.workers = 1;
  sopts.before_execute_hook = [&](const server::QueryTask&) {
    if (held.fetch_add(1) == 0) {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return release; });
    }
  };
  server::Server srv(&catalog, sopts);
  ASSERT_TRUE(srv.Start().ok());
  const int port = srv.port();

  std::thread plug([&] {
    server::Client::Options copts;
    copts.port = port;
    auto client = server::Client::Connect(copts);
    ASSERT_TRUE(client.ok());
    auto rs = client->Query("SELECT COUNT(*) FROM ahn2");
    ASSERT_TRUE(rs.ok());
    EXPECT_TRUE(rs->ok);
  });
  while (held.load() == 0) std::this_thread::yield();

  // Overlapping viewports around the extent centre, varied shapes so the
  // fan-out covers aggregates, thematic filters, ORDER BY rendering and
  // a predicate-free member. All must plan cleanly — refused statements
  // are never admitted, so they cannot join the queue this test fills.
  std::vector<std::string> statements = {
      "SELECT COUNT(*) FROM ahn2 WHERE x BETWEEN 85010 AND 85050"
      " AND y BETWEEN 444010 AND 444050",
      "SELECT AVG(z), MIN(z), MAX(z) FROM ahn2 WHERE x BETWEEN 85005 AND"
      " 85045 AND y BETWEEN 444005 AND 444045",
      "SELECT x, y, z FROM ahn2 WHERE x BETWEEN 85020 AND 85055"
      " AND y BETWEEN 444020 AND 444055 ORDER BY z DESC LIMIT 16",
      "SELECT COUNT(*) FROM ahn2 WHERE x BETWEEN 85000 AND 85030"
      " AND y BETWEEN 444000 AND 444030 AND z >= 5",
      "SELECT SUM(intensity) FROM ahn2 WHERE x BETWEEN 85015 AND 85035"
      " AND y BETWEEN 444015 AND 444060",
      "SELECT COUNT(*), AVG(z) FROM ahn2 WHERE x BETWEEN 85001 AND 85059"
      " AND y BETWEEN 444001 AND 444059",
      "SELECT classification, z FROM ahn2 WHERE x BETWEEN 85025 AND 85045"
      " AND y BETWEEN 444025 AND 444045 LIMIT 32",
      "SELECT COUNT(*) FROM ahn2",
  };
  std::vector<Observed> observed(statements.size());
  std::vector<std::thread> clients;
  for (size_t i = 0; i < statements.size(); ++i) {
    clients.emplace_back([&, i] {
      server::Client::Options copts;
      copts.port = port;
      auto client = server::Client::Connect(copts);
      ASSERT_TRUE(client.ok());
      auto outcome = client->Query(statements[i]);
      ASSERT_TRUE(outcome.ok());
      observed[i].sql = statements[i];
      observed[i].ok = outcome->ok;
      if (outcome->ok) {
        observed[i].digest = sql::ResultSetDigest(outcome->result);
      } else {
        observed[i].error = outcome->error.ToStatus().ToString();
      }
    });
  }
  // Every viewport query must be admitted before the worker wakes.
  while (srv.stats().queue_depth < statements.size()) {
    std::this_thread::yield();
  }
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  plug.join();
  for (auto& t : clients) t.join();
  srv.Stop();

  server::ServerStats s = srv.stats();
  EXPECT_GE(s.batches, 1u);
  EXPECT_GE(s.batch_members, 2u);
  EXPECT_EQ(s.batch_fallbacks, 0u);
  DiffAgainstOracle(observed, &catalog);
}

TEST(ServerEquivalenceTest, LiveAppendsRaceReadersWithEpochPinning) {
  // Readers hammer COUNT(*) while an appender commits epochs; because
  // statements pin their epoch at admission, every observed count must be
  // an exact epoch size (initial + k * batch), never a torn value, and
  // counts are non-decreasing per client (one statement in flight at a
  // time per connection).
  const Box extent(0, 0, 100, 100);
  constexpr size_t kInitial = 1000, kBatch = 500;
  constexpr int kCommits = 10;
  Rng rng(77);
  auto make_points = [&](size_t n) {
    std::vector<double> xs(n), ys(n), zs(n);
    for (size_t i = 0; i < n; ++i) {
      xs[i] = rng.UniformDouble(extent.min_x, extent.max_x);
      ys[i] = rng.UniformDouble(extent.min_y, extent.max_y);
      zs[i] = rng.UniformDouble(-5, 40);
    }
    auto t = std::make_shared<FlatTable>("live");
    EXPECT_TRUE(t->AddColumn(Column::FromVector("x", xs)).ok());
    EXPECT_TRUE(t->AddColumn(Column::FromVector("y", ys)).ok());
    EXPECT_TRUE(t->AddColumn(Column::FromVector("z", zs)).ok());
    return t;
  };
  auto live = LiveTable::Create(make_points(kInitial));
  ASSERT_TRUE(live.ok());
  Catalog catalog;
  ASSERT_TRUE(catalog.AddLivePointCloud("live", *live).ok());

  server::ServerOptions sopts;
  sopts.workers = 2;
  server::Server srv(&catalog, sopts);
  ASSERT_TRUE(srv.Start().ok());
  const int port = srv.port();

  std::atomic<bool> writer_done{false};
  std::thread writer([&] {
    TableAppender app(*live);
    for (int c = 0; c < kCommits; ++c) {
      ASSERT_TRUE(app.StageBatch(*make_points(kBatch)).ok());
      ASSERT_TRUE(app.Commit().ok());
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    writer_done.store(true);
  });

  constexpr int kReaders = 3;
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      server::Client::Options copts;
      copts.port = port;
      auto client = server::Client::Connect(copts);
      ASSERT_TRUE(client.ok());
      double last = 0;
      while (!writer_done.load()) {
        auto rs = client->Query("SELECT COUNT(*) FROM live");
        ASSERT_TRUE(rs.ok());
        ASSERT_TRUE(rs->ok) << rs->error.message;
        double count = rs->result.rows[0][0].number;
        // Exactly an epoch size, never torn.
        double over = count - static_cast<double>(kInitial);
        EXPECT_GE(over, 0);
        EXPECT_EQ(std::fmod(over, static_cast<double>(kBatch)), 0.0)
            << count;
        EXPECT_GE(count, last);
        last = count;
      }
    });
  }
  writer.join();
  for (auto& t : readers) t.join();

  // After the last commit every new statement sees the final epoch.
  {
    server::Client::Options copts;
    copts.port = port;
    auto client = server::Client::Connect(copts);
    ASSERT_TRUE(client.ok());
    auto rs = client->Query("SELECT COUNT(*) FROM live");
    ASSERT_TRUE(rs.ok());
    ASSERT_TRUE(rs->ok);
    EXPECT_EQ(rs->result.rows[0][0].number,
              static_cast<double>(kInitial + kCommits * kBatch));
  }
  srv.Stop();
}

}  // namespace
}  // namespace geocol
