// Flight recorder tests: event round-trip, crash-safe log prefix recovery
// (truncation sweep + bit flips), rotation, heat drain semantics, and the
// end-to-end contract behind `geocol replay` — events recorded through a
// Session carry result digests that re-execution reproduces bit-for-bit.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "gis/catalog.h"
#include "pointcloud/generator.h"
#include "sql/executor.h"
#include "sql/session.h"
#include "telemetry/heat.h"
#include "telemetry/metrics.h"
#include "telemetry/recorder.h"
#include "util/binary_io.h"
#include "util/tempdir.h"

namespace geocol {
namespace {

using telemetry::DeserializeEvent;
using telemetry::EventToJson;
using telemetry::FlightRecorder;
using telemetry::QueryEvent;
using telemetry::ReadFlightLog;
using telemetry::ReadFlightLogWithRotation;
using telemetry::SerializeEvent;
using telemetry::TruncateToValidPrefix;

/// A fully populated event with every field keyed off `i`, so prefix
/// recovery tests can identify which events survived.
QueryEvent MakeEvent(int i) {
  QueryEvent ev;
  ev.start_unix_nanos = 1700000000000000000LL + i;
  ev.wall_nanos = 1000 + i;
  ev.query = "SELECT COUNT(*) FROM t WHERE z > " + std::to_string(i);
  ev.table = "t";
  ev.generation = 3;
  ev.sharded = (i % 2) == 0;
  ev.column_epochs = {1, 2, static_cast<uint64_t>(i)};
  ev.shards_total = 16;
  ev.shards_scanned = 4;
  ev.shards_pruned = 11;
  ev.shards_covered = 1;
  for (int t = 0; t < 3; ++t) {
    ev.cache_hits[t] = static_cast<uint64_t>(10 * t + i);
    ev.cache_misses[t] = static_cast<uint64_t>(t);
  }
  ev.chunk_faults = 7;
  ev.chunk_cache_hits = 21;
  ev.io_read_bytes = 1 << 20;
  ev.imprint_scans = 2;
  ev.imprint_cachelines_probed = 512;
  ev.imprint_cachelines_full = 100;
  ev.imprint_values_checked = 4096;
  ev.rows_out = static_cast<uint64_t>(i);
  ev.ok = true;
  ev.digest_valid = true;
  ev.result_digest = 0xdeadbeefu + static_cast<uint32_t>(i);
  ev.span_nanos = {{"engine.select_in_box", 500}, {"sql.parse", 20}};
  ev.critical_path_nanos = 900;
  ev.shard_heat.push_back({static_cast<uint32_t>(i), 1, 0, 100});
  ev.chunk_heat.push_back({"/data/x.gcol", 5, 3, 1});
  return ev;
}

TEST(QueryEventTest, SerializeDeserializeRoundTrip) {
  QueryEvent in = MakeEvent(42);
  in.ok = false;
  in.error = "boom: \"quoted\"\npath\\seg";
  auto out = DeserializeEvent(SerializeEvent(in));
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->start_unix_nanos, in.start_unix_nanos);
  EXPECT_EQ(out->wall_nanos, in.wall_nanos);
  EXPECT_EQ(out->query, in.query);
  EXPECT_EQ(out->table, in.table);
  EXPECT_EQ(out->generation, in.generation);
  EXPECT_EQ(out->sharded, in.sharded);
  EXPECT_EQ(out->column_epochs, in.column_epochs);
  EXPECT_EQ(out->shards_total, in.shards_total);
  EXPECT_EQ(out->shards_scanned, in.shards_scanned);
  EXPECT_EQ(out->shards_pruned, in.shards_pruned);
  EXPECT_EQ(out->shards_covered, in.shards_covered);
  for (int t = 0; t < 3; ++t) {
    EXPECT_EQ(out->cache_hits[t], in.cache_hits[t]);
    EXPECT_EQ(out->cache_misses[t], in.cache_misses[t]);
  }
  EXPECT_EQ(out->chunk_faults, in.chunk_faults);
  EXPECT_EQ(out->chunk_cache_hits, in.chunk_cache_hits);
  EXPECT_EQ(out->io_read_bytes, in.io_read_bytes);
  EXPECT_EQ(out->imprint_scans, in.imprint_scans);
  EXPECT_EQ(out->imprint_cachelines_probed, in.imprint_cachelines_probed);
  EXPECT_EQ(out->imprint_cachelines_full, in.imprint_cachelines_full);
  EXPECT_EQ(out->imprint_values_checked, in.imprint_values_checked);
  EXPECT_EQ(out->rows_out, in.rows_out);
  EXPECT_EQ(out->ok, in.ok);
  EXPECT_EQ(out->error, in.error);
  EXPECT_EQ(out->digest_valid, in.digest_valid);
  EXPECT_EQ(out->result_digest, in.result_digest);
  EXPECT_EQ(out->span_nanos, in.span_nanos);
  EXPECT_EQ(out->critical_path_nanos, in.critical_path_nanos);
  ASSERT_EQ(out->shard_heat.size(), 1u);
  EXPECT_EQ(out->shard_heat[0].shard, 42u);
  EXPECT_EQ(out->shard_heat[0].rows, 100u);
  ASSERT_EQ(out->chunk_heat.size(), 1u);
  EXPECT_EQ(out->chunk_heat[0].file, "/data/x.gcol");
  EXPECT_EQ(out->chunk_heat[0].faults, 1u);
}

TEST(QueryEventTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(DeserializeEvent({}).ok());
  EXPECT_FALSE(DeserializeEvent({1, 2, 3}).ok());
  // Trailing bytes after a valid image are corruption, not slack.
  std::vector<uint8_t> img = SerializeEvent(MakeEvent(1));
  img.push_back(0);
  EXPECT_FALSE(DeserializeEvent(img).ok());
  // Unsupported version.
  std::vector<uint8_t> v2 = SerializeEvent(MakeEvent(1));
  v2[0] = 99;
  EXPECT_FALSE(DeserializeEvent(v2).ok());
}

TEST(QueryEventTest, JsonExportShape) {
  QueryEvent ev = MakeEvent(3);
  ev.query = "SELECT \"x\"\nFROM t";
  std::string j = EventToJson(ev);
  EXPECT_EQ(j.find('\n'), std::string::npos) << "JSONL must be one line";
  EXPECT_NE(j.find("\"type\": \"query_event\""), std::string::npos);
  EXPECT_NE(j.find("\"query\": \"SELECT \\\"x\\\"\\nFROM t\""),
            std::string::npos);
  EXPECT_NE(j.find("\"shards\": {\"total\": 16"), std::string::npos);
  EXPECT_NE(j.find("\"cache\": {\"selection\""), std::string::npos);
  EXPECT_NE(j.find("\"digest_valid\": true"), std::string::npos);
  EXPECT_NE(j.find("\"shard_heat\": [{\"shard\": 3"), std::string::npos);
}

class RecorderFileTest : public ::testing::Test {
 protected:
  void TearDown() override { FlightRecorder::Global().Close(); }

  /// Opens the global recorder at `path` and appends events 0..n-1.
  void Record(const std::string& path, int n,
              uint64_t max_bytes = 64ull << 20) {
    FlightRecorder::Options opt;
    opt.max_bytes = max_bytes;
    ASSERT_TRUE(FlightRecorder::Global().Open(path, opt).ok());
    for (int i = 0; i < n; ++i) {
      ASSERT_TRUE(FlightRecorder::Global().Append(MakeEvent(i)).ok());
    }
    FlightRecorder::Global().Close();
  }

  TempDir dir_{"flightrec"};
};

TEST_F(RecorderFileTest, AppendAndReadBack) {
  const std::string path = dir_.File("flight.gfr");
  Record(path, 5);
  auto events = ReadFlightLog(path);
  ASSERT_TRUE(events.ok()) << events.status().ToString();
  ASSERT_EQ(events->size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ((*events)[i].rows_out, static_cast<uint64_t>(i));
    EXPECT_EQ((*events)[i].query, MakeEvent(i).query);
  }
}

TEST_F(RecorderFileTest, ReopenAppendsAfterCleanClose) {
  const std::string path = dir_.File("flight.gfr");
  Record(path, 3);
  Record(path, 2);  // reopen resumes, does not restart
  auto events = ReadFlightLog(path);
  ASSERT_TRUE(events.ok());
  EXPECT_EQ(events->size(), 5u);
}

// The crash-safety sweep: cut the log at EVERY byte offset and require
// (a) the reader returns a clean prefix of whole events, and (b) reopening
// for append on the cut file recovers and future appends are readable.
TEST_F(RecorderFileTest, TruncationSweepRecoversValidPrefix) {
  const std::string path = dir_.File("flight.gfr");
  Record(path, 4);
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(ReadFileBytes(path, &bytes).ok());

  // Frame boundaries, to check the recovered count is exactly the number
  // of fully written frames before the cut.
  std::vector<uint64_t> frame_ends;  // cumulative end offset of frame i
  {
    uint64_t pos = 8;
    while (pos < bytes.size()) {
      uint32_t len = 0;
      std::memcpy(&len, bytes.data() + pos, sizeof(len));
      pos += 8 + len;
      frame_ends.push_back(pos);
    }
    ASSERT_EQ(frame_ends.size(), 4u);
  }

  for (size_t cut = 0; cut <= bytes.size(); ++cut) {
    const std::string cut_path = dir_.File("cut.gfr");
    std::vector<uint8_t> prefix(bytes.begin(),
                                bytes.begin() + static_cast<ptrdiff_t>(cut));
    ASSERT_TRUE(WriteFileAtomic(cut_path, prefix.data(), prefix.size()).ok());

    size_t expect = 0;
    while (expect < frame_ends.size() && frame_ends[expect] <= cut) ++expect;

    auto events = ReadFlightLog(cut_path);
    ASSERT_TRUE(events.ok()) << "cut=" << cut;
    ASSERT_EQ(events->size(), expect) << "cut=" << cut;
    for (size_t i = 0; i < expect; ++i) {
      ASSERT_EQ((*events)[i].query, MakeEvent(static_cast<int>(i)).query);
    }

    // Reopen-for-append must truncate the torn tail and keep working.
    ASSERT_TRUE(FlightRecorder::Global().Open(cut_path).ok());
    ASSERT_TRUE(FlightRecorder::Global().Append(MakeEvent(99)).ok());
    FlightRecorder::Global().Close();
    auto after = ReadFlightLog(cut_path);
    ASSERT_TRUE(after.ok()) << "cut=" << cut;
    ASSERT_EQ(after->size(), expect + 1) << "cut=" << cut;
    EXPECT_EQ(after->back().rows_out, 99u);
  }
}

TEST_F(RecorderFileTest, BitFlipInTailFrameDropsOnlyThatFrame) {
  const std::string path = dir_.File("flight.gfr");
  Record(path, 3);
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(ReadFileBytes(path, &bytes).ok());
  // Flip one payload byte in the last frame.
  bytes[bytes.size() - 5] ^= 0x40;
  ASSERT_TRUE(WriteFileAtomic(path, bytes.data(), bytes.size()).ok());
  auto events = ReadFlightLog(path);
  ASSERT_TRUE(events.ok());
  EXPECT_EQ(events->size(), 2u);

  auto prefix = TruncateToValidPrefix(path);
  ASSERT_TRUE(prefix.ok());
  auto size = FileSizeBytes(path);
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, *prefix);
}

TEST_F(RecorderFileTest, CorruptHeaderYieldsEmptyLogAndCleanReopen) {
  const std::string path = dir_.File("flight.gfr");
  const char junk[] = "not a flight log at all";
  ASSERT_TRUE(WriteFileAtomic(path, junk, sizeof(junk)).ok());
  auto events = ReadFlightLog(path);
  ASSERT_TRUE(events.ok());
  EXPECT_TRUE(events->empty());
  // Open rewrites a fresh header over the junk.
  ASSERT_TRUE(FlightRecorder::Global().Open(path).ok());
  ASSERT_TRUE(FlightRecorder::Global().Append(MakeEvent(1)).ok());
  FlightRecorder::Global().Close();
  auto after = ReadFlightLog(path);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->size(), 1u);
}

TEST_F(RecorderFileTest, RotationBoundsDiskAndKeepsContiguousSuffix) {
  const std::string path = dir_.File("flight.gfr");
  const uint64_t kMax = 4096;
  Record(path, 64, kMax);
  ASSERT_TRUE(PathExists(path + ".1"));
  auto cur_size = FileSizeBytes(path);
  auto old_size = FileSizeBytes(path + ".1");
  ASSERT_TRUE(cur_size.ok());
  ASSERT_TRUE(old_size.ok());
  EXPECT_LE(*cur_size, kMax);
  EXPECT_LE(*old_size, kMax);

  auto events = ReadFlightLogWithRotation(path);
  ASSERT_TRUE(events.ok());
  ASSERT_FALSE(events->empty());
  EXPECT_LT(events->size(), 64u);  // older rotations were replaced
  // Retained history is a contiguous suffix ending at the last append.
  const uint64_t first = (*events)[0].rows_out;
  for (size_t i = 0; i < events->size(); ++i) {
    EXPECT_EQ((*events)[i].rows_out, first + i);
  }
  EXPECT_EQ(events->back().rows_out, 63u);
}

TEST_F(RecorderFileTest, AppendWhenClosedFails) {
  EXPECT_FALSE(FlightRecorder::Global().enabled());
  EXPECT_FALSE(FlightRecorder::Global().Append(MakeEvent(0)).ok());
}

TEST(HeatTest, DrainReturnsAndClearsSortedDeltas) {
  telemetry::ResetHeat();
  telemetry::TouchShardHeat("t", 3, /*covered=*/false, 10);
  telemetry::TouchShardHeat("t", 1, /*covered=*/true, 5);
  telemetry::TouchShardHeat("t", 3, /*covered=*/false, 7);
  telemetry::TouchChunkHeat("b.gcol", 0, /*fault=*/true);
  telemetry::TouchChunkHeat("a.gcol", 2, /*fault=*/false);
  telemetry::TouchChunkHeat("b.gcol", 0, /*fault=*/false);

  auto shards = telemetry::DrainShardHeat();
  ASSERT_EQ(shards.size(), 2u);
  EXPECT_EQ(shards[0].shard, 1u);
  EXPECT_EQ(shards[0].covered, 1u);
  EXPECT_EQ(shards[0].rows, 5u);
  EXPECT_EQ(shards[1].shard, 3u);
  EXPECT_EQ(shards[1].scans, 2u);
  EXPECT_EQ(shards[1].rows, 17u);

  auto chunks = telemetry::DrainChunkHeat();
  ASSERT_EQ(chunks.size(), 2u);
  EXPECT_EQ(chunks[0].file, "a.gcol");
  EXPECT_EQ(chunks[1].file, "b.gcol");
  EXPECT_EQ(chunks[1].touches, 2u);
  EXPECT_EQ(chunks[1].faults, 1u);

  // Delta semantics: the drain cleared everything.
  EXPECT_TRUE(telemetry::DrainShardHeat().empty());
  EXPECT_TRUE(telemetry::DrainChunkHeat().empty());
}

// ---------------- end-to-end: Session -> log -> replay ----------------

class SessionRecordingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    AhnGeneratorOptions opts;
    opts.extent = Box(85000, 444000, 85200, 444200);
    AhnGenerator gen(opts);
    auto table = gen.GenerateTable(8000);
    ASSERT_TRUE(table.ok());
    ASSERT_TRUE(catalog_.AddPointCloud("ahn2", *table).ok());
    session_ = std::make_unique<sql::Session>(&catalog_);
  }

  void TearDown() override { FlightRecorder::Global().Close(); }

  TempDir dir_{"flightsess"};
  Catalog catalog_;
  std::unique_ptr<sql::Session> session_;
};

TEST_F(SessionRecordingTest, ExecuteRecordsEventsWithDigests) {
  const std::string path = dir_.File("flight.gfr");
  ASSERT_TRUE(FlightRecorder::Global().Open(path).ok());
  auto& tax = telemetry::MetricsRegistry::Global().GetCounter(
      "geocol_flight_overhead_nanos_total");
  const uint64_t tax_before = tax.Value();

  const std::vector<std::string> workload = {
      "SELECT COUNT(*), AVG(z) FROM ahn2",
      "SELECT x, y, z FROM ahn2 WHERE ST_Within(pt, "
      "ST_GeomFromText('BOX(85050 444050, 85100 444100)')) LIMIT 50",
      "SELECT COUNT(*) FROM ahn2 WHERE classification BETWEEN 2 AND 5",
  };
  for (const auto& q : workload) {
    ASSERT_TRUE(session_->Execute(q).ok()) << q;
  }
  // A statement that fails to plan is still recorded.
  ASSERT_FALSE(session_->Execute("SELECT z FROM no_such_table").ok());
  FlightRecorder::Global().Close();

  auto events = ReadFlightLog(path);
  ASSERT_TRUE(events.ok()) << events.status().ToString();
  ASSERT_EQ(events->size(), 4u);
  for (size_t i = 0; i < workload.size(); ++i) {
    const QueryEvent& ev = (*events)[i];
    EXPECT_EQ(ev.query, workload[i]);
    EXPECT_EQ(ev.table, "ahn2");
    EXPECT_TRUE(ev.ok);
    EXPECT_TRUE(ev.digest_valid);
    EXPECT_GT(ev.wall_nanos, 0);
    EXPECT_GT(ev.start_unix_nanos, 0);
    EXPECT_FALSE(ev.span_nanos.empty());
  }
  EXPECT_EQ((*events)[0].rows_out, 1u);   // one aggregate row
  EXPECT_EQ((*events)[1].rows_out, 50u);  // LIMIT 50
  const QueryEvent& bad = (*events)[3];
  EXPECT_FALSE(bad.ok);
  EXPECT_FALSE(bad.error.empty());
  EXPECT_FALSE(bad.digest_valid);
  // The recorder self-measures its per-statement tax (E17).
  EXPECT_GT(tax.Value(), tax_before);
}

TEST_F(SessionRecordingTest, ReplayReproducesDigestsBitForBit) {
  const std::string path = dir_.File("flight.gfr");
  ASSERT_TRUE(FlightRecorder::Global().Open(path).ok());
  const std::vector<std::string> workload = {
      "SELECT COUNT(*), AVG(z), MIN(z), MAX(z) FROM ahn2",
      "SELECT x, y, z FROM ahn2 WHERE ST_Within(pt, "
      "ST_GeomFromText('BOX(85020 444020, 85180 444180)')) LIMIT 200",
      "SELECT COUNT(*) FROM ahn2 WHERE classification BETWEEN 2 AND 5",
      "SELECT COUNT(*), AVG(z), MIN(z), MAX(z) FROM ahn2",  // cache hit path
  };
  for (const auto& q : workload) {
    ASSERT_TRUE(session_->Execute(q).ok()) << q;
  }
  FlightRecorder::Global().Close();

  auto events = ReadFlightLog(path);
  ASSERT_TRUE(events.ok());
  ASSERT_EQ(events->size(), workload.size());

  // Replay with a non-recording session (the `geocol replay` setup) and
  // compare canonical result digests bit-for-bit.
  sql::SessionOptions replay_opts;
  replay_opts.record_flight = false;
  sql::Session replayer(&catalog_, replay_opts);
  for (const QueryEvent& ev : *events) {
    ASSERT_TRUE(ev.digest_valid);
    auto rs = replayer.Execute(ev.query);
    ASSERT_TRUE(rs.ok()) << ev.query;
    EXPECT_EQ(sql::ResultSetDigest(*rs), ev.result_digest) << ev.query;
    EXPECT_EQ(rs->rows.size(), ev.rows_out) << ev.query;
  }
}

TEST_F(SessionRecordingTest, ExplainIsDigestValidButAnalyzeIsNot) {
  const std::string path = dir_.File("flight.gfr");
  ASSERT_TRUE(FlightRecorder::Global().Open(path).ok());
  ASSERT_TRUE(session_->Execute("EXPLAIN SELECT COUNT(*) FROM ahn2").ok());
  ASSERT_TRUE(
      session_->Execute("EXPLAIN ANALYZE SELECT COUNT(*) FROM ahn2").ok());
  FlightRecorder::Global().Close();
  auto events = ReadFlightLog(path);
  ASSERT_TRUE(events.ok());
  ASSERT_EQ(events->size(), 2u);
  EXPECT_TRUE((*events)[0].digest_valid);   // plan text is deterministic
  EXPECT_FALSE((*events)[1].digest_valid);  // embeds timings
}

TEST_F(SessionRecordingTest, RecordFlightOffSkipsRecorder) {
  const std::string path = dir_.File("flight.gfr");
  ASSERT_TRUE(FlightRecorder::Global().Open(path).ok());
  sql::SessionOptions opts;
  opts.record_flight = false;
  sql::Session quiet(&catalog_, opts);
  ASSERT_TRUE(quiet.Execute("SELECT COUNT(*) FROM ahn2").ok());
  FlightRecorder::Global().Close();
  auto events = ReadFlightLog(path);
  ASSERT_TRUE(events.ok());
  EXPECT_TRUE(events->empty());
}

}  // namespace
}  // namespace geocol
