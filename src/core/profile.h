// Per-operator execution profile — the demo's scenario 2 lets users "see
// the plans of the queries and the execution time spent in each operator"
// (§4.2). Every engine query fills one of these.
//
// Since PR 4 a profile is a tree of timed spans, not a flat list: each
// operator records its start offset (relative to the profile's epoch), an
// optional parent span, the small per-process id of the thread that ran
// it, and free-form key=value attributes. The tree renders as EXPLAIN
// ANALYZE output and exports as a Chrome trace_event JSON file
// (telemetry/trace.h).
#ifndef GEOCOL_CORE_PROFILE_H_
#define GEOCOL_CORE_PROFILE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace geocol {

/// One executed operator / span. Parallel operators additionally record
/// how many workers participated; their `nanos` is the operator's wall
/// time, so summing over concurrently executed operators can exceed the
/// query's wall time — use QueryProfile::CriticalPathNanos() for honest
/// wall-time claims.
struct OperatorProfile {
  std::string name;
  int64_t nanos = 0;
  uint64_t rows_in = 0;
  uint64_t rows_out = 0;
  uint32_t workers = 1;  ///< threads that executed morsels of this operator
  std::string detail;  ///< free-form annotation ("mask=0x3f", "grid=64x48")

  /// Start offset in nanoseconds relative to the profile's epoch (the
  /// construction or Clear() time of the QueryProfile it belongs to).
  int64_t start_nanos = 0;
  /// Index of the enclosing span in operators(), or -1 for a root span.
  int32_t parent = -1;
  /// Small per-process id of the executing thread (0 = first thread seen).
  uint32_t thread_id = 0;
  /// Structured attributes (cachelines_probed=..., false_positive_rate=...).
  std::vector<std::pair<std::string, std::string>> attrs;
};

/// Tree of operator spans for one query execution, stored as a flat
/// vector in creation order with parent links. Not thread-safe: parallel
/// branches fill branch-local profiles that are merged via Append().
class QueryProfile {
 public:
  QueryProfile() { Clear(); }

  /// Drops all spans and re-bases the epoch at "now".
  void Clear();

  /// Records a completed leaf operator that ended "now" and took `nanos`.
  /// Returns its span index.
  int32_t Add(std::string name, int64_t nanos, uint64_t rows_in,
              uint64_t rows_out, std::string detail = "");

  /// As Add, for operators executed by `workers` threads.
  int32_t AddParallel(std::string name, int64_t nanos, uint64_t rows_in,
                      uint64_t rows_out, uint32_t workers,
                      std::string detail = "");

  /// Records a span with an explicit start offset (relative to this
  /// profile's epoch) instead of deriving it from the clock. Used by
  /// tests and importers; parent is the currently open span.
  int32_t AddSpanAt(std::string name, int64_t start_nanos, int64_t nanos,
                    uint64_t rows_in, uint64_t rows_out,
                    std::string detail = "");

  /// Opens a span that becomes the parent of every span recorded until
  /// the matching CloseSpan. Returns its index. Spans may nest.
  int32_t OpenSpan(std::string name);

  /// Closes the innermost open span, stamping its duration and
  /// cardinalities.
  void CloseSpan(uint64_t rows_in = 0, uint64_t rows_out = 0,
                 std::string detail = "");

  /// Attaches a key=value attribute to span `index` (no-op if out of
  /// range).
  void AddAttr(int32_t index, std::string key, std::string value);
  /// Formats helpers for numeric attributes.
  void AddAttr(int32_t index, std::string key, uint64_t value);
  void AddAttr(int32_t index, std::string key, double value);

  /// Appends every span of `other`, preserving order. Root spans of
  /// `other` become children of this profile's innermost open span (if
  /// any); start offsets are re-based onto this profile's epoch. Used to
  /// merge the branch-local profiles of concurrently executed filter
  /// steps back into the query profile in a deterministic order.
  void Append(const QueryProfile& other);

  const std::vector<OperatorProfile>& operators() const { return ops_; }
  bool empty() const { return ops_.empty(); }

  /// Nanoseconds since this profile's epoch (for callers computing
  /// explicit start offsets).
  int64_t NowNanos() const;
  int64_t epoch_nanos() const { return epoch_nanos_; }

  /// Sum of **leaf** operator times. Wrapper spans (OpenSpan/CloseSpan)
  /// re-cover their children's time, so counting only leaves keeps this
  /// equal to the flat per-operator sum the engine always reported.
  /// Overlapping parallel branches still double-count here by design;
  /// see CriticalPathNanos().
  int64_t TotalNanos() const;

  /// Wall time actually covered by spans: the measure of the union of
  /// the root spans' [start, start+nanos) intervals. Concurrent filter
  /// branches overlap and are counted once, so this is the honest
  /// wall-time figure for the query.
  int64_t CriticalPathNanos() const;

  /// Multi-line plan rendering as an indented tree:
  ///   filter.imprints.x      1.23 ms   12500 -> 830 lines  [mask=...]
  /// with trailing "TOTAL (sum)" and "WALL (critical path)" lines.
  std::string ToString() const;

 private:
  int32_t PushSpan(OperatorProfile op);

  std::vector<OperatorProfile> ops_;
  std::vector<int32_t> open_;  ///< stack of open span indexes
  int64_t epoch_nanos_ = 0;  ///< steady-clock origin for start offsets
};

/// Small per-process id for the calling thread (0, 1, 2, ... in order of
/// first use). Stable for the thread's lifetime; used to lane spans in
/// trace exports.
uint32_t CurrentProfileThreadId();

/// RAII helper: opens a span on construction, closes it on destruction.
/// Only safe when the profile outlives the scope (do not use across
/// moves/returns of the profile).
class ScopedSpan {
 public:
  ScopedSpan(QueryProfile* profile, std::string name)
      : profile_(profile), index_(profile->OpenSpan(std::move(name))) {}
  ~ScopedSpan() { profile_->CloseSpan(rows_in_, rows_out_); }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  int32_t index() const { return index_; }
  void SetRows(uint64_t rows_in, uint64_t rows_out) {
    rows_in_ = rows_in;
    rows_out_ = rows_out;
  }

 private:
  QueryProfile* profile_;
  int32_t index_;
  uint64_t rows_in_ = 0;
  uint64_t rows_out_ = 0;
};

}  // namespace geocol

#endif  // GEOCOL_CORE_PROFILE_H_
