// The paper's binary bulk loader (§3.2): "The loader takes as input a
// LAS/LAZ file and for each property it generates a new file that is the
// binary dump of a C-array containing the values of the property for all
// points. Then, the generated files are appended to each column of the
// flat table using the bulk loading operator COPY BINARY."
#ifndef GEOCOL_LOADER_BINARY_LOADER_H_
#define GEOCOL_LOADER_BINARY_LOADER_H_

#include <memory>
#include <string>
#include <vector>

#include "columns/flat_table.h"
#include "las/las_format.h"
#include "util/status.h"

namespace geocol {

/// Accounting of one load run (drives E1).
struct LoadStats {
  uint64_t files = 0;
  uint64_t points = 0;
  double read_seconds = 0.0;     ///< tile read + LAZ decompression
  double convert_seconds = 0.0;  ///< record -> per-attribute arrays / CSV
  double append_seconds = 0.0;   ///< COPY BINARY / CSV parse into columns
  uint64_t bytes_read = 0;

  double TotalSeconds() const {
    return read_seconds + convert_seconds + append_seconds;
  }
  double PointsPerSecond() const {
    double t = TotalSeconds();
    return t > 0 ? points / t : 0.0;
  }
};

/// Binary bulk loader for LAS/LAZ tile directories.
class BinaryLoader {
 public:
  /// `scratch_dir` receives the intermediate per-attribute binary dumps;
  /// it must exist.
  explicit BinaryLoader(std::string scratch_dir)
      : scratch_dir_(std::move(scratch_dir)) {}

  /// Loads every .las/.laz file under `dir` into a fresh flat table with
  /// the LAS point schema.
  Result<std::shared_ptr<FlatTable>> LoadDirectory(const std::string& dir,
                                                   LoadStats* stats = nullptr);

  /// As LoadDirectory, but converts tiles to binary dumps on `threads`
  /// worker threads; the COPY BINARY appends stay serialised in file order
  /// so the result is byte-identical to the sequential load.
  Result<std::shared_ptr<FlatTable>> LoadDirectoryParallel(
      const std::string& dir, size_t threads, LoadStats* stats = nullptr);

  /// Loads one tile file into `table` (which must have the LAS schema),
  /// via the dump + COPY BINARY path.
  Status LoadFile(const std::string& path, FlatTable* table,
                  LoadStats* stats = nullptr);

  /// Step 1 of the pipeline: converts a tile file into one raw binary dump
  /// per attribute under the scratch dir; returns the 26 dump paths in
  /// schema order.
  Result<std::vector<std::string>> ConvertToDumps(const std::string& las_path,
                                                  const std::string& prefix,
                                                  LoadStats* stats = nullptr);

  /// Step 2: COPY BINARY — appends each dump to its column.
  Status CopyBinary(const std::vector<std::string>& dump_paths,
                    FlatTable* table, LoadStats* stats = nullptr);

 private:
  std::string scratch_dir_;
};

}  // namespace geocol

#endif  // GEOCOL_LOADER_BINARY_LOADER_H_
