#include "util/tempdir.h"

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace geocol {

namespace {
std::atomic<uint64_t> g_tempdir_counter{0};
}  // namespace

TempDir::TempDir(const std::string& prefix) {
  const char* root = std::getenv("TMPDIR");
  std::string base = root != nullptr ? root : "/tmp";
  uint64_t n = g_tempdir_counter.fetch_add(1);
  path_ = base + "/" + prefix + "-" + std::to_string(::getpid()) + "-" +
          std::to_string(n);
  ::mkdir(path_.c_str(), 0755);
}

TempDir::~TempDir() { RemoveDirRecursive(path_); }

Status MakeDir(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::IOError("mkdir failed: " + path);
  }
  return Status::OK();
}

Status RemoveDirRecursive(const std::string& path) {
  DIR* dir = ::opendir(path.c_str());
  if (dir == nullptr) return Status::OK();
  struct dirent* entry;
  while ((entry = ::readdir(dir)) != nullptr) {
    std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    std::string full = path + "/" + name;
    struct stat st;
    if (::stat(full.c_str(), &st) == 0 && S_ISDIR(st.st_mode)) {
      RemoveDirRecursive(full);
    } else {
      ::unlink(full.c_str());
    }
  }
  ::closedir(dir);
  ::rmdir(path.c_str());
  return Status::OK();
}

Status ListFiles(const std::string& dir, const std::string& suffix,
                 std::vector<std::string>* out) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return Status::IOError("opendir failed: " + dir);
  struct dirent* entry;
  while ((entry = ::readdir(d)) != nullptr) {
    std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    if (name.size() >= suffix.size() &&
        name.compare(name.size() - suffix.size(), suffix.size(), suffix) == 0) {
      out->push_back(dir + "/" + name);
    }
  }
  ::closedir(d);
  std::sort(out->begin(), out->end());
  return Status::OK();
}

}  // namespace geocol
