// E12: telemetry overhead on the hot query path.
// E17: flight-recorder overhead on a recorded SQL workload.
//
// The metrics registry promises "always on, never felt": sharded relaxed
// atomic counters plus a single enabled-flag load per update. This harness
// quantifies that promise on the same selection workload as E3 (imprint
// filter + refine), comparing counters enabled vs disabled. The acceptance
// bar from DESIGN.md §10 is <2% overhead for counters-only telemetry.
//
// E17 makes the same promise for the workload flight recorder (DESIGN.md
// §15): one serialized event + CRC32C + buffered append per statement.
// Interleaved recorder-on vs recorder-off repetitions of a mixed SQL
// workload (pan/zoom viewport selections + aggregates + range filters)
// must stay within the same <2% bar.
#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/spatial_engine.h"
#include "gis/catalog.h"
#include "sql/session.h"
#include "telemetry/metrics.h"
#include "telemetry/recorder.h"
#include "util/tempdir.h"

using namespace geocol;
using namespace geocol::bench;

namespace {

/// The recorded workload: a deterministic mix of viewport selections
/// (three zoom levels panned across the extent), aggregates over them,
/// and attribute-range scans — the navigation session shape of E3/E13.
std::vector<std::string> MixedWorkload(const Box& extent, int queries) {
  std::vector<std::string> sql;
  const double fractions[3] = {0.001, 0.01, 0.05};
  for (int i = 0; i < queries; ++i) {
    const double frac = fractions[i % 3];
    const double side = std::sqrt(extent.area() * frac);
    const double fx = 0.15 + 0.6 * ((i * 37) % 97) / 96.0;
    const double fy = 0.15 + 0.6 * ((i * 61) % 89) / 88.0;
    const double cx = extent.min_x + extent.width() * fx;
    const double cy = extent.min_y + extent.height() * fy;
    char box[160];
    std::snprintf(box, sizeof(box), "BOX(%.2f %.2f, %.2f %.2f)",
                  cx - side / 2, cy - side / 2, cx + side / 2, cy + side / 2);
    char q[512];
    switch (i % 4) {
      case 0:
        std::snprintf(q, sizeof(q),
                      "SELECT COUNT(*), AVG(z) FROM ahn2 WHERE "
                      "ST_Within(pt, ST_GeomFromText('%s'))",
                      box);
        break;
      case 1:
        std::snprintf(q, sizeof(q),
                      "SELECT x, y, z FROM ahn2 WHERE ST_Within(pt, "
                      "ST_GeomFromText('%s')) LIMIT 100",
                      box);
        break;
      case 2:
        std::snprintf(q, sizeof(q),
                      "SELECT COUNT(*) FROM ahn2 WHERE classification "
                      "BETWEEN 2 AND %d",
                      3 + (i % 4));
        break;
      default:
        std::snprintf(q, sizeof(q),
                      "SELECT MIN(z), MAX(z) FROM ahn2 WHERE ST_Within(pt, "
                      "ST_GeomFromText('%s')) AND intensity >= %d",
                      box, 50 + (i % 50));
        break;
    }
    sql.emplace_back(q);
  }
  return sql;
}

void RunE17(const std::shared_ptr<FlatTable>& table, const Box& extent) {
  Banner("E17: flight recorder overhead (recording on vs off)",
         "mixed SQL workload wall time with the flight recorder on vs off");

  Catalog catalog;
  if (Status st = catalog.AddPointCloud("ahn2", table); !st.ok()) {
    std::fprintf(stderr, "catalog: %s\n", st.ToString().c_str());
    return;
  }
  sql::SessionOptions opts;  // flight on; trace ring on — production shape
  sql::Session session(&catalog);

  TempDir dir("bench-e17");
  const std::string log_path = dir.File("flight.gfr");
  const int queries = 48;
  const std::vector<std::string> workload = MixedWorkload(extent, queries);

  auto run_batch = [&session, &workload]() {
    for (const auto& q : workload) {
      auto rs = session.Execute(q);
      if (!rs.ok()) {
        std::fprintf(stderr, "query failed: %s\n",
                     rs.status().ToString().c_str());
        std::exit(1);
      }
    }
  };

  // A single on-vs-off batch pair cannot resolve a 2% bar: frequency
  // scaling and scheduler noise move whole-batch times by several percent
  // between adjacent runs. So: many ADJACENT on/off batch pairs (order
  // alternating per pair so neither side systematically inherits warm
  // state), then the MEDIAN of the per-pair overhead ratios — paired
  // differences cancel the slow drift a min-of-batches cannot.
  run_batch();  // warm-up: neither side pays first-touch faults
  const int pairs = std::max(9, BenchReps() * 3);
  std::vector<double> on_ms, off_ms, ratio;
  auto timed_on = [&] {
    if (Status st = telemetry::FlightRecorder::Global().Open(log_path);
        !st.ok()) {
      std::fprintf(stderr, "recorder: %s\n", st.ToString().c_str());
      std::exit(1);
    }
    Timer t;
    run_batch();
    on_ms.push_back(t.ElapsedMillis());
    telemetry::FlightRecorder::Global().Close();
  };
  auto timed_off = [&] {
    Timer t;
    run_batch();
    off_ms.push_back(t.ElapsedMillis());
  };
  // The recorder stamps its own cost into this counter (time spent in
  // counter snapshots, span aggregation, heat drain, result digest,
  // serialize + append). That direct measurement resolves the <2% bar
  // precisely; the paired wall-clock A/B corroborates it at whatever
  // resolution scheduler noise allows.
  auto& tax_counter = telemetry::MetricsRegistry::Global().GetCounter(
      "geocol_flight_overhead_nanos_total");
  const uint64_t tax_before = tax_counter.Value();
  for (int pair = 0; pair < pairs; ++pair) {
    if (pair % 2 == 0) {
      timed_on();
      timed_off();
    } else {
      timed_off();
      timed_on();
    }
    ratio.push_back(on_ms.back() / off_ms.back() - 1.0);
  }
  auto median = [](std::vector<double> v) {
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
  };
  const double t_on = median(on_ms);
  const double t_off = median(off_ms);
  const double overhead = median(ratio);

  auto events = telemetry::ReadFlightLog(log_path);
  const size_t recorded = events.ok() ? events->size() : 0;
  const uint64_t statements =
      static_cast<uint64_t>(pairs) * static_cast<uint64_t>(queries);
  const double tax_us =
      (tax_counter.Value() - tax_before) / 1e3 / statements;
  const double off_us = t_off * 1000.0 / queries;
  const double tax_pct = off_us > 0 ? tax_us / off_us : 0.0;

  TablePrinter out({"mode", "queries", "events", "batch ms", "per-query us",
                    "overhead"},
                   13);
  out.Row({"recording", TablePrinter::Int(queries),
           TablePrinter::Int(recorded), TablePrinter::Num(t_on, 3),
           TablePrinter::Num(t_on * 1000.0 / queries, 1),
           TablePrinter::Pct(overhead)});
  out.Row({"off", TablePrinter::Int(queries), "0",
           TablePrinter::Num(t_off, 3),
           TablePrinter::Num(t_off * 1000.0 / queries, 1), "-"});
  out.Row({"tax/stmt", TablePrinter::Int(queries),
           TablePrinter::Int(recorded), "-", TablePrinter::Num(tax_us, 2),
           TablePrinter::Pct(tax_pct)});

  std::printf(
      "\nexpected shape: recording adds one event fill + digest + serialize "
      "+ CRC32C +\nbuffered append per statement — a few microseconds, under "
      "the 2%% bar next to\nparse/plan/execute. 'tax/stmt' is the recorder's "
      "self-measured cost\n(geocol_flight_overhead_nanos_total / statements "
      "recorded) against the off-side\nmedian; 'overhead' is the median of "
      "%d paired on/off batch ratios, an A/B\ncorroboration whose resolution "
      "is bounded by scheduler noise.\n",
      pairs);
}

}  // namespace

int main(int argc, char** argv) {
  geocol::bench::InitBench(argc, argv);
  const uint64_t n = BenchPoints(1000000);
  Banner("E12: telemetry overhead (counters on vs off)",
         "selection latency per region size, metrics enabled vs disabled");

  auto table = GenerateSurvey(n);
  const Box extent = SurveyOptions(n).extent;
  std::printf("survey: %llu points\n",
              static_cast<unsigned long long>(table->num_rows()));

  // Single-threaded, like E3: the overhead of a per-scan counter bump is
  // easiest to see without thread-pool noise on top.
  EngineOptions engine_opts;
  engine_opts.num_threads = 1;
  SpatialQueryEngine engine(table, engine_opts);

  const double fractions[5] = {0.0001, 0.001, 0.01, 0.05, 0.15};
  TablePrinter out({"query", "results", "on ms", "off ms", "overhead"}, 12);

  double sum_on = 0.0;
  double sum_off = 0.0;
  for (int qi = 0; qi < 5; ++qi) {
    double side = std::sqrt(extent.area() * fractions[qi]);
    Point c{extent.min_x + extent.width() * 0.43,
            extent.min_y + extent.height() * 0.57};
    Box q(c.x - side / 2, c.y - side / 2, c.x + side / 2, c.y + side / 2);

    // Interleave on/off repetitions (min of each) so frequency scaling,
    // cache warm-up and background noise hit both sides equally.
    uint64_t results = 0;
    double t_on = 1e300, t_off = 1e300;
    const int reps = BenchReps();
    for (int rep = 0; rep < reps; ++rep) {
      telemetry::SetMetricsEnabled(true);
      {
        Timer t;
        auto r = engine.SelectInBox(q);
        t_on = std::min(t_on, t.ElapsedMillis());
        results = r.ok() ? r->count() : 0;
      }
      telemetry::SetMetricsEnabled(false);
      {
        Timer t;
        (void)engine.SelectInBox(q);
        t_off = std::min(t_off, t.ElapsedMillis());
      }
    }
    telemetry::SetMetricsEnabled(true);
    sum_on += t_on;
    sum_off += t_off;

    char label[16];
    std::snprintf(label, sizeof(label), "S%d %.3g%%", qi + 1,
                  fractions[qi] * 100);
    out.Row({label, TablePrinter::Int(results), TablePrinter::Num(t_on, 3),
             TablePrinter::Num(t_off, 3),
             TablePrinter::Pct(t_off > 0 ? t_on / t_off - 1.0 : 0.0)});
  }

  double overall = sum_off > 0 ? sum_on / sum_off - 1.0 : 0.0;
  out.Row({"ALL", "", TablePrinter::Num(sum_on, 3),
           TablePrinter::Num(sum_off, 3), TablePrinter::Pct(overall)});

  std::printf(
      "\nexpected shape: overhead within noise (<2%%) — each scan touches "
      "thousands of\ncachelines but bumps only a handful of thread-sharded "
      "relaxed counters.\n");

  RunE17(table, extent);
  return 0;
}
