// Columns substrate tests: typed columns, flat tables, persistence, CSV.
#include <gtest/gtest.h>

#include "columns/column.h"
#include "columns/column_file.h"
#include "columns/csv.h"
#include "columns/flat_table.h"
#include "util/binary_io.h"
#include "util/tempdir.h"

namespace geocol {
namespace {

TEST(DataTypeTest, SizesAndNames) {
  EXPECT_EQ(DataTypeSize(DataType::kUInt8), 1u);
  EXPECT_EQ(DataTypeSize(DataType::kInt16), 2u);
  EXPECT_EQ(DataTypeSize(DataType::kFloat32), 4u);
  EXPECT_EQ(DataTypeSize(DataType::kFloat64), 8u);
  EXPECT_STREQ(DataTypeName(DataType::kInt64), "int64");
  EXPECT_TRUE(IsFloatingPoint(DataType::kFloat32));
  EXPECT_FALSE(IsFloatingPoint(DataType::kUInt32));
  EXPECT_TRUE(IsSigned(DataType::kInt8));
  EXPECT_FALSE(IsSigned(DataType::kUInt64));
}

TEST(DataTypeTest, TraitsMapping) {
  EXPECT_EQ(DataTypeOf<int8_t>(), DataType::kInt8);
  EXPECT_EQ(DataTypeOf<double>(), DataType::kFloat64);
  EXPECT_EQ(DataTypeOf<uint16_t>(), DataType::kUInt16);
}

TEST(DataTypeTest, DispatchSelectsRightType) {
  size_t size = DispatchDataType(DataType::kInt16, []<typename T>() {
    return sizeof(T);
  });
  EXPECT_EQ(size, 2u);
}

TEST(ColumnTest, AppendAndRead) {
  Column col("z", DataType::kFloat64);
  col.Append<double>(1.5);
  col.Append<double>(-2.5);
  EXPECT_EQ(col.size(), 2u);
  auto vals = col.Values<double>();
  EXPECT_EQ(vals[0], 1.5);
  EXPECT_EQ(vals[1], -2.5);
  EXPECT_EQ(col.GetDouble(1), -2.5);
  EXPECT_EQ(col.GetInt64(0), 1);  // truncation
}

TEST(ColumnTest, EpochAdvancesOnMutation) {
  Column col("c", DataType::kInt32);
  uint64_t e0 = col.epoch();
  col.Append<int32_t>(1);
  EXPECT_GT(col.epoch(), e0);
  uint64_t e1 = col.epoch();
  (void)col.BeginRawUpdate();
  EXPECT_GT(col.epoch(), e1);
}

TEST(ColumnTest, StatsCachedAndInvalidated) {
  Column col("c", DataType::kInt32);
  col.Append<int32_t>(5);
  col.Append<int32_t>(-3);
  EXPECT_EQ(col.Stats().min, -3);
  EXPECT_EQ(col.Stats().max, 5);
  col.Append<int32_t>(100);
  EXPECT_EQ(col.Stats().max, 100);
}

TEST(ColumnTest, AppendRawMatchesTyped) {
  Column a("a", DataType::kUInt16), b("b", DataType::kUInt16);
  std::vector<uint16_t> vals = {1, 2, 65535};
  a.AppendSpan<uint16_t>(vals);
  b.AppendRaw(vals.data(), vals.size());
  EXPECT_EQ(a.size(), b.size());
  for (size_t i = 0; i < vals.size(); ++i) {
    EXPECT_EQ(a.GetInt64(i), b.GetInt64(i));
  }
}

TEST(ColumnTest, FromVector) {
  auto col = Column::FromVector<float>("f", {1.0f, 2.0f});
  EXPECT_EQ(col->type(), DataType::kFloat32);
  EXPECT_EQ(col->size(), 2u);
}

TEST(ColumnTest, GetDoubleAcrossAllTypes) {
  for (int t = 0; t < kNumDataTypes; ++t) {
    Column col("c", static_cast<DataType>(t));
    DispatchDataType(col.type(), [&]<typename T>() {
      col.Append<T>(static_cast<T>(7));
    });
    EXPECT_EQ(col.GetDouble(0), 7.0) << DataTypeName(col.type());
    EXPECT_EQ(col.GetInt64(0), 7) << DataTypeName(col.type());
  }
}

// ---------------- Schema / FlatTable ----------------

TEST(SchemaTest, FieldLookup) {
  Schema s({{"x", DataType::kFloat64}, {"y", DataType::kFloat64}});
  EXPECT_EQ(s.num_fields(), 2u);
  EXPECT_EQ(s.FieldIndex("y"), 1);
  EXPECT_EQ(s.FieldIndex("nope"), -1);
  EXPECT_TRUE(s.HasField("x"));
  Schema t({{"x", DataType::kFloat64}, {"y", DataType::kFloat64}});
  EXPECT_TRUE(s == t);
  Schema u({{"x", DataType::kFloat32}, {"y", DataType::kFloat64}});
  EXPECT_FALSE(s == u);
}

TEST(FlatTableTest, SchemaConstruction) {
  FlatTable t("pc", Schema({{"x", DataType::kFloat64},
                            {"i", DataType::kUInt16}}));
  EXPECT_EQ(t.num_columns(), 2u);
  EXPECT_EQ(t.num_rows(), 0u);
  EXPECT_NE(t.column("x"), nullptr);
  EXPECT_EQ(t.column("nope"), nullptr);
}

TEST(FlatTableTest, AddColumnRejectsDuplicatesAndRaggedness) {
  FlatTable t("t");
  ASSERT_TRUE(t.AddColumn(Column::FromVector<double>("a", {1, 2})).ok());
  EXPECT_EQ(t.AddColumn(Column::FromVector<double>("a", {1, 2})).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(t.AddColumn(Column::FromVector<double>("b", {1})).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(t.AddColumn(nullptr).code(), StatusCode::kInvalidArgument);
}

TEST(FlatTableTest, ValidateDetectsRaggedTable) {
  FlatTable t("t");
  ASSERT_TRUE(t.AddColumn(Column::FromVector<double>("a", {1, 2})).ok());
  ASSERT_TRUE(t.AddColumn(Column::FromVector<double>("b", {3, 4})).ok());
  EXPECT_TRUE(t.Validate().ok());
  t.column("b")->Append<double>(5);
  EXPECT_EQ(t.Validate().code(), StatusCode::kCorruption);
}

TEST(FlatTableTest, GetColumnErrors) {
  FlatTable t("t");
  EXPECT_EQ(t.GetColumn("missing").status().code(), StatusCode::kNotFound);
}

TEST(FlatTableTest, DataBytes) {
  FlatTable t("t");
  ASSERT_TRUE(t.AddColumn(Column::FromVector<double>("a", {1, 2})).ok());
  ASSERT_TRUE(t.AddColumn(Column::FromVector<uint8_t>("b", {1, 2})).ok());
  EXPECT_EQ(t.DataBytes(), 2 * 8u + 2 * 1u);
}

// ---------------- column files ----------------

TEST(ColumnFileTest, RoundTrip) {
  TempDir tmp;
  auto col = Column::FromVector<int32_t>("c", {1, -2, 3});
  ASSERT_TRUE(WriteColumnFile(*col, tmp.File("c.gcl")).ok());
  auto back = ReadColumnFile(tmp.File("c.gcl"), "c");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ((*back)->type(), DataType::kInt32);
  ASSERT_EQ((*back)->size(), 3u);
  EXPECT_EQ((*back)->GetInt64(1), -2);
}

TEST(ColumnFileTest, AppendAccumulates) {
  TempDir tmp;
  auto col = Column::FromVector<double>("c", {1.0, 2.0});
  ASSERT_TRUE(WriteColumnFile(*col, tmp.File("c.gcl")).ok());
  Column dst("c", DataType::kFloat64);
  ASSERT_TRUE(AppendColumnFile(tmp.File("c.gcl"), &dst).ok());
  ASSERT_TRUE(AppendColumnFile(tmp.File("c.gcl"), &dst).ok());
  EXPECT_EQ(dst.size(), 4u);
  EXPECT_EQ(dst.GetDouble(3), 2.0);
}

TEST(ColumnFileTest, AppendTypeMismatchRejected) {
  TempDir tmp;
  auto col = Column::FromVector<double>("c", {1.0});
  ASSERT_TRUE(WriteColumnFile(*col, tmp.File("c.gcl")).ok());
  Column dst("c", DataType::kInt32);
  EXPECT_EQ(AppendColumnFile(tmp.File("c.gcl"), &dst).code(),
            StatusCode::kInvalidArgument);
}

TEST(ColumnFileTest, CorruptMagicRejected) {
  TempDir tmp;
  ASSERT_TRUE(WriteFileBytes(tmp.File("bad.gcl"), "XXXXYYYY", 8).ok());
  EXPECT_EQ(ReadColumnFile(tmp.File("bad.gcl"), "c").status().code(),
            StatusCode::kCorruption);
}

TEST(ColumnFileTest, TruncatedFileRejected) {
  TempDir tmp;
  auto col = Column::FromVector<double>("c", {1.0, 2.0, 3.0});
  ASSERT_TRUE(WriteColumnFile(*col, tmp.File("c.gcl")).ok());
  // Truncate the value payload.
  std::vector<uint8_t> bytes;
  ASSERT_TRUE(ReadFileBytes(tmp.File("c.gcl"), &bytes).ok());
  bytes.resize(bytes.size() - 5);
  ASSERT_TRUE(WriteFileBytes(tmp.File("c.gcl"), bytes.data(), bytes.size()).ok());
  EXPECT_EQ(ReadColumnFile(tmp.File("c.gcl"), "c").status().code(),
            StatusCode::kCorruption);
}

TEST(ColumnFileTest, RawDumpRoundTrip) {
  TempDir tmp;
  auto col = Column::FromVector<uint16_t>("i", {7, 8, 9});
  ASSERT_TRUE(WriteRawDump(*col, tmp.File("i.bin")).ok());
  auto size = FileSizeBytes(tmp.File("i.bin"));
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 6u);  // raw C-array: no header at all
  Column dst("i", DataType::kUInt16);
  ASSERT_TRUE(AppendRawDump(tmp.File("i.bin"), &dst).ok());
  EXPECT_EQ(dst.size(), 3u);
  EXPECT_EQ(dst.GetInt64(2), 9);
}

TEST(ColumnFileTest, RawDumpMisalignedSizeRejected) {
  TempDir tmp;
  ASSERT_TRUE(WriteFileBytes(tmp.File("odd.bin"), "abc", 3).ok());
  Column dst("i", DataType::kUInt16);
  EXPECT_EQ(AppendRawDump(tmp.File("odd.bin"), &dst).code(),
            StatusCode::kCorruption);
}

TEST(TableDirTest, RoundTrip) {
  TempDir tmp;
  FlatTable t("survey");
  ASSERT_TRUE(t.AddColumn(Column::FromVector<double>("x", {1, 2, 3})).ok());
  ASSERT_TRUE(t.AddColumn(Column::FromVector<uint8_t>("c", {4, 5, 6})).ok());
  ASSERT_TRUE(WriteTableDir(t, tmp.File("tbl")).ok());
  auto back = ReadTableDir(tmp.File("tbl"));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->name(), "survey");
  EXPECT_EQ(back->num_columns(), 2u);
  EXPECT_EQ(back->num_rows(), 3u);
  EXPECT_EQ(back->column("c")->GetInt64(2), 6);
  EXPECT_TRUE(back->schema() == t.schema());
}

TEST(TableDirTest, MissingDirFails) {
  EXPECT_FALSE(ReadTableDir("/nonexistent/table").ok());
}

// ---------------- CSV ----------------

TEST(CsvTest, RoundTrip) {
  TempDir tmp;
  FlatTable t("t");
  ASSERT_TRUE(t.AddColumn(Column::FromVector<double>("x", {1.25, -2.5})).ok());
  ASSERT_TRUE(t.AddColumn(Column::FromVector<int32_t>("n", {7, -8})).ok());
  ASSERT_TRUE(WriteCsv(t, tmp.File("t.csv")).ok());
  auto back = ReadCsv(tmp.File("t.csv"), t.schema());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->num_rows(), 2u);
  EXPECT_EQ(back->column("x")->GetDouble(0), 1.25);
  EXPECT_EQ(back->column("n")->GetInt64(1), -8);
}

TEST(CsvTest, HeaderMismatchRejected) {
  TempDir tmp;
  ASSERT_TRUE(WriteFileBytes(tmp.File("bad.csv"), "a,b\n1,2\n", 8).ok());
  FlatTable t("t", Schema({{"x", DataType::kFloat64},
                           {"y", DataType::kFloat64}}));
  EXPECT_EQ(AppendCsv(tmp.File("bad.csv"), &t).code(),
            StatusCode::kCorruption);
}

TEST(CsvTest, ArityMismatchRejected) {
  TempDir tmp;
  ASSERT_TRUE(
      WriteFileBytes(tmp.File("bad.csv"), "x,y\n1,2\n3\n", 10).ok());
  FlatTable t("t", Schema({{"x", DataType::kFloat64},
                           {"y", DataType::kFloat64}}));
  EXPECT_EQ(AppendCsv(tmp.File("bad.csv"), &t).code(),
            StatusCode::kCorruption);
}

TEST(CsvTest, GarbageValueRejected) {
  TempDir tmp;
  ASSERT_TRUE(
      WriteFileBytes(tmp.File("bad.csv"), "x\nfoo\n", 6).ok());
  FlatTable t("t", Schema({{"x", DataType::kFloat64}}));
  EXPECT_EQ(AppendCsv(tmp.File("bad.csv"), &t).code(),
            StatusCode::kCorruption);
}

TEST(CsvTest, AllIntegerTypesSurviveRoundTrip) {
  TempDir tmp;
  FlatTable t("t");
  ASSERT_TRUE(t.AddColumn(Column::FromVector<int8_t>("i8", {-128, 127})).ok());
  ASSERT_TRUE(t.AddColumn(Column::FromVector<uint8_t>("u8", {0, 255})).ok());
  ASSERT_TRUE(
      t.AddColumn(Column::FromVector<int16_t>("i16", {-32768, 32767})).ok());
  ASSERT_TRUE(
      t.AddColumn(Column::FromVector<uint16_t>("u16", {0, 65535})).ok());
  ASSERT_TRUE(t.AddColumn(Column::FromVector<int64_t>(
                             "i64", {-123456789012345LL, 5})).ok());
  ASSERT_TRUE(t.AddColumn(Column::FromVector<uint64_t>(
                             "u64", {0, 987654321098765ULL})).ok());
  ASSERT_TRUE(WriteCsv(t, tmp.File("t.csv")).ok());
  auto back = ReadCsv(tmp.File("t.csv"), t.schema());
  ASSERT_TRUE(back.ok());
  for (size_t c = 0; c < t.num_columns(); ++c) {
    for (uint64_t r = 0; r < t.num_rows(); ++r) {
      EXPECT_EQ(back->column(c)->GetInt64(r), t.column(c)->GetInt64(r))
          << t.column(c)->name() << " row " << r;
    }
  }
}

}  // namespace
}  // namespace geocol
