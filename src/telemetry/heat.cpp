#include "telemetry/heat.h"

#include <algorithm>
#include <map>
#include <mutex>
#include <utility>

#include "telemetry/metrics.h"

namespace geocol {
namespace telemetry {

namespace {

struct ShardHeat {
  uint64_t scans = 0;
  uint64_t covered = 0;
  uint64_t rows = 0;
};

struct ChunkHeat {
  uint64_t touches = 0;
  uint64_t faults = 0;
};

// std::map keeps drains deterministically ordered, which in turn keeps
// recorded events (and their digests in tests) byte-stable.
struct HeatState {
  std::mutex mu;
  std::map<std::pair<std::string, uint32_t>, ShardHeat> shards;
  std::map<std::pair<std::string, uint32_t>, ChunkHeat> chunks;
};

HeatState& State() {
  static HeatState* state = new HeatState();  // never destroyed
  return *state;
}

}  // namespace

void TouchShardHeat(const std::string& table, uint32_t shard, bool covered,
                    uint64_t rows) {
  if (!MetricsEnabled()) return;
  HeatState& s = State();
  std::lock_guard<std::mutex> lock(s.mu);
  ShardHeat& h = s.shards[{table, shard}];
  h.scans += 1;
  h.covered += covered ? 1 : 0;
  h.rows += rows;
}

void TouchChunkHeat(const std::string& file, uint32_t chunk, bool fault) {
  if (!MetricsEnabled()) return;
  HeatState& s = State();
  std::lock_guard<std::mutex> lock(s.mu);
  ChunkHeat& h = s.chunks[{file, chunk}];
  h.touches += 1;
  h.faults += fault ? 1 : 0;
}

std::vector<ShardHeatDelta> DrainShardHeat() {
  HeatState& s = State();
  std::lock_guard<std::mutex> lock(s.mu);
  std::vector<ShardHeatDelta> out;
  out.reserve(s.shards.size());
  for (const auto& kv : s.shards) {
    ShardHeatDelta d;
    d.table = kv.first.first;
    d.shard = kv.first.second;
    d.scans = kv.second.scans;
    d.covered = kv.second.covered;
    d.rows = kv.second.rows;
    out.push_back(std::move(d));
  }
  s.shards.clear();
  return out;
}

std::vector<ChunkHeatDelta> DrainChunkHeat() {
  HeatState& s = State();
  std::lock_guard<std::mutex> lock(s.mu);
  std::vector<ChunkHeatDelta> out;
  out.reserve(s.chunks.size());
  for (const auto& kv : s.chunks) {
    ChunkHeatDelta d;
    d.file = kv.first.first;
    d.chunk = kv.first.second;
    d.touches = kv.second.touches;
    d.faults = kv.second.faults;
    out.push_back(std::move(d));
  }
  s.chunks.clear();
  return out;
}

void ResetHeat() {
  HeatState& s = State();
  std::lock_guard<std::mutex> lock(s.mu);
  s.shards.clear();
  s.chunks.clear();
}

}  // namespace telemetry
}  // namespace geocol
