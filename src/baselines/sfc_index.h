// The space-filling-curve access path of §2.3: "Sorting the point cloud
// data using space filling curves is a common technique used by spatial
// DBMS and file-based solutions ... useful to exploit the spatial coherence
// of the data through spatial location codes."
//
// The table is sorted by the Morton code of (x, y) and the codes are kept
// as a sorted key column. A box query is decomposed into a bounded number
// of Morton code intervals (quadtree descent + greedy gap coalescing);
// each interval maps to one contiguous row range found by binary search,
// whose rows get exact coordinate checks.
#ifndef GEOCOL_BASELINES_SFC_INDEX_H_
#define GEOCOL_BASELINES_SFC_INDEX_H_

#include <cstdint>
#include <vector>

#include "columns/flat_table.h"
#include "geom/geometry.h"
#include "util/status.h"

namespace geocol {

/// A half-open interval of Morton codes.
struct MortonInterval {
  uint64_t lo = 0;
  uint64_t hi = 0;  ///< inclusive
};

/// Decomposes `query` (clipped to `extent`) into at most `max_intervals`
/// Morton-code intervals at `bits` bits per axis. The union of the
/// intervals covers every code whose cell intersects the query; coalescing
/// may add slack codes (supersets are fine — callers re-check exactly).
std::vector<MortonInterval> DecomposeBoxToMortonIntervals(
    const Box& query, const Box& extent, uint32_t bits = 16,
    size_t max_intervals = 64);

/// Morton SFC index configuration.
struct MortonSfcOptions {
  uint32_t bits = 16;          ///< Morton resolution per axis
  size_t max_intervals = 64;   ///< query decomposition budget
};

/// Morton-sorted-table access path.
class MortonSfcIndex {
 public:
  using Options = MortonSfcOptions;

  struct QueryStats {
    uint64_t intervals = 0;      ///< Morton ranges probed
    uint64_t rows_scanned = 0;   ///< rows inside the probed ranges
    uint64_t results = 0;
  };

  /// Sorts `table` in place by Morton code (all columns permuted — this is
  /// the DBMS-side lassort) and builds the key column. The table must have
  /// float64 "x"/"y" columns.
  static Result<MortonSfcIndex> Build(FlatTable* table,
                                      Options options = MortonSfcOptions());

  /// Rows (of the now-sorted table) whose point lies in `box`, ascending.
  Result<std::vector<uint64_t>> QueryBox(const Box& box,
                                         QueryStats* stats = nullptr) const;

  uint64_t StorageBytes() const { return keys_.size() * sizeof(uint64_t); }
  const Box& extent() const { return extent_; }
  const std::vector<uint64_t>& keys() const { return keys_; }

 private:
  const FlatTable* table_ = nullptr;
  Options options_;
  Box extent_;
  std::vector<uint64_t> keys_;  ///< sorted Morton codes, one per row
};

}  // namespace geocol

#endif  // GEOCOL_BASELINES_SFC_INDEX_H_
