// LAZ-like lossless compression for point records: per-attribute delta
// coding with zigzag + per-chunk bit packing. This stands in for
// Rapidlasso's LAZ in the benchmarks — it exercises the same costs
// (decompression on every read, compression during acquisition/export) and
// achieves comparable ratios on acquisition-ordered data, where consecutive
// points are spatially close and deltas are small.
#ifndef GEOCOL_LAS_LAZ_H_
#define GEOCOL_LAS_LAZ_H_

#include <cstdint>
#include <vector>

#include "las/las_format.h"
#include "util/status.h"

namespace geocol {

/// Points per compression chunk (bit widths adapt per chunk).
constexpr size_t kLazChunkSize = 4096;

/// Compresses `points` into `out` (cleared first).
Status LazCompress(const std::vector<LasPointRecord>& points,
                   std::vector<uint8_t>* out);

/// Decompresses a LazCompress payload; `count` is the expected number of
/// points (from the file header).
Status LazDecompress(const std::vector<uint8_t>& data, uint64_t count,
                     std::vector<LasPointRecord>* out);

}  // namespace geocol

#endif  // GEOCOL_LAS_LAZ_H_
