// The refinement step of the paper's two-step query model (§3.3): a regular
// grid is laid over the points that survived the imprint filter; the query
// geometry is evaluated once per non-empty grid cell; cells fully inside
// accept all their points, cells fully outside reject them, and only
// boundary cells fall back to exact per-point predicate evaluation.
#ifndef GEOCOL_CORE_REFINEMENT_H_
#define GEOCOL_CORE_REFINEMENT_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "columns/column.h"
#include "geom/geometry.h"
#include "geom/grid.h"
#include "util/bitvector.h"
#include "util/status.h"

namespace geocol {

class ThreadPool;

/// Refinement tuning knobs.
struct RefineOptions {
  /// Target candidate points per grid cell; controls grid resolution.
  uint64_t target_points_per_cell = 256;
  uint32_t max_cells_per_axis = 2048;
  /// Disable the grid and test every candidate exactly (the strawman the
  /// grid is compared against in E4).
  bool use_grid = true;
};

/// Work accounting of one refinement pass.
struct RefinementStats {
  uint64_t candidates = 0;      ///< points entering refinement
  uint64_t accepted = 0;        ///< points in the final answer
  uint64_t cells_total = 0;     ///< grid size
  uint64_t cells_nonempty = 0;  ///< cells holding >= 1 candidate
  uint64_t cells_inside = 0;    ///< decided wholesale: accept
  uint64_t cells_outside = 0;   ///< decided wholesale: reject
  uint64_t cells_boundary = 0;  ///< per-point fallback
  uint64_t exact_tests = 0;     ///< point-in-geometry evaluations
  uint32_t grid_cols = 0;
  uint32_t grid_rows = 0;
  uint32_t workers = 1;         ///< threads that executed refine morsels
};

/// Sentinel for a grid cell whose classification has not been computed
/// (the BoxRelation values occupy 0..2).
constexpr uint8_t kCellUnclassified = 0xFF;

/// Lets a caller seed a refinement with grid cell classifications computed
/// by earlier queries over the same (geometry, buffer) and capture the
/// table this refinement extends — the hook the query result cache plugs
/// in. Classification is deterministic, so a seeded run produces row ids
/// and stats byte-identical to an unseeded one: seeded cells still count
/// toward RefinementStats on their first touch by the query.
class GridCellHook {
 public:
  virtual ~GridCellHook() = default;

  /// Prior classifications for this exact grid: num_cells entries of
  /// BoxRelation values with kCellUnclassified holes, or nullptr for none.
  /// Only a table of exactly cols*rows entries may be returned.
  virtual std::shared_ptr<const std::vector<uint8_t>> Seed(
      const Box& extent, uint32_t cols, uint32_t rows) = 0;

  /// The final cell table after refinement. Called only when this
  /// refinement classified at least one cell the seed did not cover.
  virtual void Publish(const Box& extent, uint32_t cols, uint32_t rows,
                       std::vector<uint8_t> cells) = 0;
};

/// Refines candidate rows against `geometry` (buffered by `buffer` for
/// "near"/ST_DWithin semantics; 0 for exact containment). Candidate rows
/// are given as set bits of `candidates`; accepted row ids are appended to
/// `out_rows` in ascending order. `x`/`y` must be FlatTable columns of
/// equal length covering the same rows.
///
/// A non-null `pool` splits the candidate vector into word-aligned row
/// ranges refined by parallel workers, each appending to a local row list;
/// the lists are concatenated in range order, so the result is identical
/// to the serial pass. Cell classifications are shared through an atomic
/// per-cell table (classification is deterministic, so racing workers
/// agree); per-cell stats are counted by the unique worker that published
/// the classification, making the merged stats equal the serial ones.
Status GridRefine(const Column& x, const Column& y, const BitVector& candidates,
                  const Geometry& geometry, double buffer,
                  const RefineOptions& options, std::vector<uint64_t>* out_rows,
                  RefinementStats* stats = nullptr, ThreadPool* pool = nullptr,
                  GridCellHook* cell_hook = nullptr);

/// Exhaustive refinement: exact test per candidate, no grid. The oracle in
/// tests and the baseline of E4.
Status ExhaustiveRefine(const Column& x, const Column& y,
                        const BitVector& candidates, const Geometry& geometry,
                        double buffer, std::vector<uint64_t>* out_rows,
                        RefinementStats* stats = nullptr);

}  // namespace geocol

#endif  // GEOCOL_CORE_REFINEMENT_H_
