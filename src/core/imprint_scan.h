// Imprint-accelerated range selection over a column: the "filtering" step
// of the paper's query model (§3.3), turned into a row-level selection.
// Cache lines whose imprint misses the query mask are never touched; lines
// fully inside the range are accepted wholesale; only boundary lines incur
// per-value comparisons. With a thread pool the candidate cacheline runs
// are partitioned into morsels aligned to 64-row boundaries, so workers
// write disjoint BitVector words without synchronisation.
#ifndef GEOCOL_CORE_IMPRINT_SCAN_H_
#define GEOCOL_CORE_IMPRINT_SCAN_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "columns/column.h"
#include "core/imprints.h"
#include "util/bitvector.h"
#include "util/status.h"

namespace geocol {

class ThreadPool;

/// Work accounting of one imprint-filtered scan (drives E3/E5 reporting).
/// Parallel scans merge per-morsel counters; because morsels cover whole
/// cache lines, the merged stats equal the serial scan's exactly.
struct ImprintScanStats {
  uint64_t lines_total = 0;
  uint64_t lines_candidate = 0;  ///< imprint hit: line was visited
  uint64_t lines_full = 0;       ///< accepted without per-value checks
  uint64_t values_checked = 0;   ///< per-value comparisons performed
  uint64_t rows_selected = 0;
  uint64_t rows_full = 0;        ///< rows accepted via full lines (no check)
  uint32_t workers = 1;          ///< threads that executed scan morsels

  /// Fraction of the column actually touched by the scan.
  double TouchedFraction() const {
    return lines_total > 0
               ? static_cast<double>(lines_candidate) / lines_total
               : 0.0;
  }

  /// Fraction of per-value comparisons that rejected the row: how often
  /// the imprint flagged a boundary line whose values then failed the
  /// predicate. 0 when no per-value checks ran.
  double FalsePositiveRate() const {
    if (values_checked == 0) return 0.0;
    uint64_t boundary_selected = rows_selected - rows_full;
    return static_cast<double>(values_checked - boundary_selected) /
           static_cast<double>(values_checked);
  }
};

/// Selects rows with value in [lo, hi] using the imprints index.
/// `out_rows` is resized to the column length. The index must have been
/// built on the current column state (epoch match) — Internal error
/// otherwise. Values are compared in the column's native type (the bounds
/// are clamped into it once per scan). A non-null `pool` scans candidate
/// runs in parallel morsels; the selection and stats are identical to the
/// serial scan.
Status ImprintRangeSelect(const Column& column, const ImprintsIndex& index,
                          double lo, double hi, BitVector* out_rows,
                          ImprintScanStats* stats = nullptr,
                          ThreadPool* pool = nullptr);

/// Plain full-scan range selection (no index). Used as the correctness
/// oracle in tests and the baseline in benchmarks. Same native-type
/// comparison semantics as ImprintRangeSelect. The only Status source is a
/// paged-column chunk fault; resident scans cannot fail.
Status FullScanRangeSelect(const Column& column, double lo, double hi,
                           BitVector* out_rows);

/// Lazily builds and caches imprints per column, mirroring MonetDB's
/// "creation is triggered when it encounters a range query for the first
/// time" (§3.2). Rebuilds when the column's epoch moves (appends).
///
/// Thread-safety: all members may be called concurrently. Concurrent first
/// queries of one column build once and share: a builder marks the entry
/// in-flight under the manager mutex, releases it for the whole disk/build
/// phase, and publishes under the mutex again — waiters park on a condition
/// variable, so a slow sidecar load or rebuild never stalls readers of
/// *other* columns (nor lookups that hit the cache). Returned indexes are
/// shared_ptr so a rebuild triggered by an epoch change never invalidates
/// an index another thread is scanning. Callers must still not mutate a
/// column while queries on it are in flight — the COW append path
/// (Column::CloneAppend) never does; the epoch check is advisory for the
/// legacy in-place mutation path, not a memory fence.
///
/// Incremental maintenance: when a looked-up column carries CloneAppend
/// lineage and the base column's index is cached and fresh, the manager
/// extends it over the appended tail (ImprintsIndex::ExtendAppend) instead
/// of rebuilding, probe-verifies the stitch against freshly binarised
/// sample lines, and on verification failure quarantines the sidecar and
/// falls back to a from-scratch build.
class ImprintManager {
 public:
  explicit ImprintManager(ImprintsOptions options = {})
      : options_(options) {}

  /// Returns the (possibly freshly built) index for `column`.
  Result<std::shared_ptr<const ImprintsIndex>> GetOrBuild(
      const ColumnPtr& column);

  /// Testing hook: the next incremental stitch fails probe verification,
  /// exercising the quarantine + rebuild fallback (consumed once).
  void InjectStitchFault() { stitch_fault_.store(true); }

  /// Pool used to parallelise index builds (nullptr = serial builds). Set
  /// once at engine construction, before any queries run.
  void set_thread_pool(ThreadPool* pool) { pool_ = pool; }

  /// Directory for persisted imprint sidecars ("" = in-memory only). When
  /// set, a build first tries `<dir>/<column>.gim`; a corrupt or stale
  /// sidecar is quarantined/rebuilt transparently (see
  /// core/imprints_io.h), so a damaged cache file never fails a query.
  /// Set once at engine construction, before any queries run.
  void set_sidecar_dir(std::string dir) { sidecar_dir_ = std::move(dir); }
  const std::string& sidecar_dir() const { return sidecar_dir_; }

  /// Total storage consumed by all cached indexes.
  uint64_t TotalStorageBytes() const;

  /// Number of indexes currently cached.
  size_t num_indexes() const;

  /// Drops all cached indexes.
  void Clear();

  const ImprintsOptions& options() const { return options_; }

 private:
  struct Entry {
    std::shared_ptr<const ImprintsIndex> index;  ///< published under mu_
    bool building = false;  ///< a thread is building off-lock
    std::weak_ptr<const Column> column;  ///< liveness, for pruning
  };

  /// Builds (or loads) the index for `column` without holding mu_.
  /// `base_index` is the cached fresh index of the column's lineage base
  /// (null when unavailable) — triggers the incremental path.
  Result<ImprintsIndex> BuildIndex(
      const ColumnPtr& column,
      const std::shared_ptr<const ImprintsIndex>& base_index);

  /// Drops entries whose column died (COW retirement); caller holds mu_.
  void PruneLocked();

  ImprintsOptions options_;
  ThreadPool* pool_ = nullptr;
  std::string sidecar_dir_;  ///< "" = do not persist indexes
  std::atomic<bool> stitch_fault_{false};
  mutable std::mutex mu_;            ///< guards cache_ and entry fields
  std::condition_variable build_cv_;  ///< signalled when a build publishes
  std::unordered_map<const Column*, Entry> cache_;
  size_t prune_watermark_ = 8;
};

}  // namespace geocol

#endif  // GEOCOL_CORE_IMPRINT_SCAN_H_
