// Interactive SQL shell over a demo catalog — the library-form equivalent
// of the demo's front end, where "users will have the option to create and
// execute queries of their own" (§4.2).
//
// Usage: sql_shell [num_points]
// Meta-commands: \d (datasets), \plan (last plan), \profile (last
// operator times), \q (quit).
#include <cstdio>
#include <cstring>
#include <string>

#include "gis/catalog.h"
#include "pointcloud/generator.h"
#include "pointcloud/vector_gen.h"
#include "sql/session.h"

using namespace geocol;

int main(int argc, char** argv) {
  uint64_t num_points = 200000;
  if (argc > 1) num_points = std::strtoull(argv[1], nullptr, 10);

  std::printf("GeoColumn SQL shell — generating demo catalog (%llu points)"
              "...\n", static_cast<unsigned long long>(num_points));
  AhnGeneratorOptions options;
  options.extent = Box(85000, 444000, 85500, 444500);
  AhnGenerator generator(options);
  auto table = generator.GenerateTable(num_points);
  if (!table.ok()) return 1;

  Catalog catalog;
  if (!catalog.AddPointCloud("ahn2", *table).ok()) return 1;
  TerrainModel terrain(options.seed);
  OsmGenerator osm(21, options.extent, terrain);
  auto roads = osm.GenerateRoads(50);
  if (!catalog.AddLayer(VectorLayer::FromFeatures("osm", roads)).ok()) return 1;
  UrbanAtlasGenerator ua(22, options.extent, terrain);
  auto land = ua.GenerateLandUse(10);
  for (auto& c : ua.GenerateTransitCorridors(roads, 20.0)) land.push_back(c);
  if (!catalog.AddLayer(VectorLayer::FromFeatures("urban_atlas", land)).ok()) {
    return 1;
  }

  sql::Session session(&catalog);
  std::printf(
      "datasets: ahn2 (point cloud), osm, urban_atlas (vector layers)\n"
      "try:  SELECT COUNT(*) FROM ahn2 WHERE ST_Within(pt, 'BOX(85100 "
      "444100, 85200 444200)');\n"
      "      SELECT AVG(z) FROM ahn2 WHERE NEAR(urban_atlas, 12210, 25);\n"
      "meta: \\d  \\plan  \\profile  \\q\n\n");

  char line[4096];
  while (true) {
    std::printf("geocol> ");
    std::fflush(stdout);
    if (std::fgets(line, sizeof(line), stdin) == nullptr) break;
    std::string input(line);
    while (!input.empty() && (input.back() == '\n' || input.back() == '\r')) {
      input.pop_back();
    }
    if (input.empty()) continue;
    if (input == "\\q" || input == "quit" || input == "exit") break;
    if (input == "\\d") {
      for (const auto& name : catalog.PointCloudNames()) {
        auto t = catalog.GetTable(name);
        std::printf("  %s  point cloud, %llu rows, %zu columns\n",
                    name.c_str(),
                    static_cast<unsigned long long>((*t)->num_rows()),
                    (*t)->num_columns());
      }
      for (const auto& name : catalog.LayerNames()) {
        auto l = catalog.GetLayer(name);
        std::printf("  %s  vector layer, %zu features\n", name.c_str(),
                    (*l)->size());
      }
      continue;
    }
    if (input == "\\plan") {
      std::printf("%s\n", session.last_plan().c_str());
      continue;
    }
    if (input == "\\profile") {
      std::printf("%s\n", session.last_profile().ToString().c_str());
      continue;
    }
    auto rs = session.Execute(input);
    if (!rs.ok()) {
      std::printf("error: %s\n", rs.status().ToString().c_str());
      continue;
    }
    std::printf("%s\n", rs->ToString(40).c_str());
  }
  std::printf("bye\n");
  return 0;
}
