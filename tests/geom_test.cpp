// Tests for geometry types and exact predicates.
#include <gtest/gtest.h>

#include <cmath>

#include "geom/geometry.h"
#include "geom/predicates.h"

namespace geocol {
namespace {

Polygon UnitSquare() { return Polygon::FromBox(Box(0, 0, 1, 1)); }

Polygon SquareWithHole() {
  Polygon p = Polygon::FromBox(Box(0, 0, 10, 10));
  Ring hole;
  hole.points = {{4, 4}, {6, 4}, {6, 6}, {4, 6}};
  p.holes.push_back(hole);
  return p;
}

// ---------------- Box ----------------

TEST(BoxTest, EmptyByDefault) {
  Box b;
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.area(), 0.0);
}

TEST(BoxTest, ExtendAndContains) {
  Box b;
  b.Extend(1, 2);
  b.Extend(3, -1);
  EXPECT_FALSE(b.empty());
  EXPECT_EQ(b.min_x, 1);
  EXPECT_EQ(b.max_x, 3);
  EXPECT_EQ(b.min_y, -1);
  EXPECT_EQ(b.max_y, 2);
  EXPECT_TRUE(b.Contains(Point{2, 0}));
  EXPECT_TRUE(b.Contains(Point{1, -1}));  // border inclusive
  EXPECT_FALSE(b.Contains(Point{0.5, 0}));
}

TEST(BoxTest, IntersectsIncludingTouch) {
  Box a(0, 0, 1, 1);
  EXPECT_TRUE(a.Intersects(Box(1, 1, 2, 2)));  // corner touch
  EXPECT_TRUE(a.Intersects(Box(0.5, 0.5, 2, 2)));
  EXPECT_FALSE(a.Intersects(Box(1.01, 0, 2, 1)));
  EXPECT_FALSE(a.Intersects(Box()));  // empty never intersects
}

TEST(BoxTest, ContainsBoxAndExpand) {
  Box a(0, 0, 10, 10);
  EXPECT_TRUE(a.Contains(Box(1, 1, 9, 9)));
  EXPECT_FALSE(a.Contains(Box(1, 1, 11, 9)));
  Box e = a.Expanded(2);
  EXPECT_EQ(e.min_x, -2);
  EXPECT_EQ(e.max_y, 12);
}

// ---------------- rings / polygons ----------------

TEST(RingTest, SignedAreaOrientation) {
  Ring ccw;
  ccw.points = {{0, 0}, {1, 0}, {1, 1}, {0, 1}};
  EXPECT_DOUBLE_EQ(ccw.SignedArea(), 1.0);
  Ring cw;
  cw.points = {{0, 0}, {0, 1}, {1, 1}, {1, 0}};
  EXPECT_DOUBLE_EQ(cw.SignedArea(), -1.0);
  EXPECT_DOUBLE_EQ(cw.Area(), 1.0);
}

TEST(PolygonTest, AreaSubtractsHoles) {
  Polygon p = SquareWithHole();
  EXPECT_DOUBLE_EQ(p.Area(), 100.0 - 4.0);
}

TEST(PolygonTest, CircleApproximation) {
  Polygon c = Polygon::Circle({0, 0}, 10, 128);
  // Area of a regular 128-gon is slightly below pi*r^2.
  EXPECT_NEAR(c.Area(), M_PI * 100, 0.5);
  Box env = c.Envelope();
  EXPECT_NEAR(env.min_x, -10, 1e-9);
  EXPECT_NEAR(env.max_y, 10, 1e-2);
}

TEST(LineStringTest, LengthAndEnvelope) {
  LineString l;
  l.points = {{0, 0}, {3, 4}, {3, 8}};
  EXPECT_DOUBLE_EQ(l.Length(), 5.0 + 4.0);
  Box env = l.Envelope();
  EXPECT_EQ(env.max_x, 3);
  EXPECT_EQ(env.max_y, 8);
}

// ---------------- Geometry wrapper ----------------

TEST(GeometryTest, TypeDispatchAndEnvelope) {
  Geometry gp(Point{1, 2});
  EXPECT_TRUE(gp.is_point());
  EXPECT_EQ(gp.Envelope().min_x, 1);

  Geometry gb(Box(0, 0, 2, 3));
  EXPECT_TRUE(gb.is_box());
  EXPECT_EQ(gb.Envelope().max_y, 3);

  Geometry gpoly(UnitSquare());
  EXPECT_TRUE(gpoly.is_polygon());
  EXPECT_EQ(gpoly.Envelope().max_x, 1);

  MultiPolygon mp;
  mp.polygons.push_back(UnitSquare());
  mp.polygons.push_back(Polygon::FromBox(Box(5, 5, 6, 6)));
  Geometry gmp(mp);
  EXPECT_TRUE(gmp.is_multipolygon());
  EXPECT_EQ(gmp.Envelope().max_x, 6);
  EXPECT_DOUBLE_EQ(gmp.multipolygon().Area(), 2.0);
}

// ---------------- segment primitives ----------------

TEST(PredicatesTest, Orient2D) {
  EXPECT_GT(Orient2D({0, 0}, {1, 0}, {0, 1}), 0);  // left turn
  EXPECT_LT(Orient2D({0, 0}, {1, 0}, {0, -1}), 0);
  EXPECT_EQ(Orient2D({0, 0}, {1, 1}, {2, 2}), 0);  // collinear
}

TEST(PredicatesTest, PointOnSegment) {
  EXPECT_TRUE(PointOnSegment({1, 1}, {0, 0}, {2, 2}));
  EXPECT_TRUE(PointOnSegment({0, 0}, {0, 0}, {2, 2}));  // endpoint
  EXPECT_FALSE(PointOnSegment({3, 3}, {0, 0}, {2, 2}));  // collinear, outside
  EXPECT_FALSE(PointOnSegment({1, 1.01}, {0, 0}, {2, 2}));
}

TEST(PredicatesTest, SegmentsIntersectProper) {
  EXPECT_TRUE(SegmentsIntersect({0, 0}, {2, 2}, {0, 2}, {2, 0}));
  EXPECT_FALSE(SegmentsIntersect({0, 0}, {1, 1}, {2, 2}, {3, 3}));
}

TEST(PredicatesTest, SegmentsIntersectTouching) {
  EXPECT_TRUE(SegmentsIntersect({0, 0}, {1, 1}, {1, 1}, {2, 0}));   // endpoint
  EXPECT_TRUE(SegmentsIntersect({0, 0}, {2, 0}, {1, 0}, {1, 5}));   // T
  EXPECT_TRUE(SegmentsIntersect({0, 0}, {2, 2}, {1, 1}, {3, 3}));   // overlap
}

TEST(PredicatesTest, DistancePrimitives) {
  EXPECT_DOUBLE_EQ(DistanceSquared({0, 0}, {3, 4}), 25.0);
  EXPECT_DOUBLE_EQ(PointSegmentDistanceSquared({0, 5}, {-1, 0}, {1, 0}), 25.0);
  // Beyond the endpoint the distance is to the endpoint.
  EXPECT_DOUBLE_EQ(PointSegmentDistanceSquared({5, 0}, {-1, 0}, {1, 0}), 16.0);
  // Degenerate segment.
  EXPECT_DOUBLE_EQ(PointSegmentDistanceSquared({3, 4}, {0, 0}, {0, 0}), 25.0);
}

// ---------------- point in polygon ----------------

TEST(PointInPolygonTest, InteriorExteriorBoundary) {
  Polygon p = UnitSquare();
  EXPECT_TRUE(PointInPolygon({0.5, 0.5}, p));
  EXPECT_FALSE(PointInPolygon({1.5, 0.5}, p));
  EXPECT_TRUE(PointInPolygon({0, 0.5}, p));   // edge
  EXPECT_TRUE(PointInPolygon({0, 0}, p));     // vertex
}

TEST(PointInPolygonTest, HolesExcluded) {
  Polygon p = SquareWithHole();
  EXPECT_TRUE(PointInPolygon({1, 1}, p));
  EXPECT_FALSE(PointInPolygon({5, 5}, p));      // inside hole
  EXPECT_TRUE(PointInPolygon({4, 5}, p));       // on hole boundary: kept
  EXPECT_TRUE(PointInPolygon({3.99, 5}, p));    // just outside hole
}

TEST(PointInPolygonTest, ConcavePolygon) {
  // A "C" shape.
  Polygon c;
  c.shell.points = {{0, 0}, {4, 0}, {4, 1}, {1, 1},
                    {1, 3}, {4, 3}, {4, 4}, {0, 4}};
  EXPECT_TRUE(PointInPolygon({0.5, 2}, c));
  EXPECT_FALSE(PointInPolygon({2.5, 2}, c));  // inside the notch
  EXPECT_TRUE(PointInPolygon({2.5, 0.5}, c));
}

TEST(PointInPolygonTest, MultiPolygon) {
  MultiPolygon mp;
  mp.polygons.push_back(UnitSquare());
  mp.polygons.push_back(Polygon::FromBox(Box(10, 10, 11, 11)));
  EXPECT_TRUE(PointInMultiPolygon({0.5, 0.5}, mp));
  EXPECT_TRUE(PointInMultiPolygon({10.5, 10.5}, mp));
  EXPECT_FALSE(PointInMultiPolygon({5, 5}, mp));
}

TEST(PredicatesTest, GeometryContainsPointDispatch) {
  EXPECT_TRUE(GeometryContainsPoint(Geometry(Point{1, 1}), {1, 1}));
  EXPECT_FALSE(GeometryContainsPoint(Geometry(Point{1, 1}), {1, 2}));
  EXPECT_TRUE(GeometryContainsPoint(Geometry(Box(0, 0, 2, 2)), {1, 1}));
  LineString l;
  l.points = {{0, 0}, {2, 2}};
  EXPECT_TRUE(GeometryContainsPoint(Geometry(l), {1, 1}));
  EXPECT_FALSE(GeometryContainsPoint(Geometry(l), {1, 1.1}));
}

// ---------------- distances ----------------

TEST(DistanceTest, PointLineDistance) {
  LineString l;
  l.points = {{0, 0}, {10, 0}};
  EXPECT_DOUBLE_EQ(PointLineDistance({5, 3}, l), 3.0);
  EXPECT_DOUBLE_EQ(PointLineDistance({-4, 3}, l), 5.0);
  EXPECT_DOUBLE_EQ(PointLineDistance({5, 0}, l), 0.0);
}

TEST(DistanceTest, PointPolygonDistanceZeroInside) {
  Polygon p = UnitSquare();
  EXPECT_DOUBLE_EQ(PointPolygonDistance({0.5, 0.5}, p), 0.0);
  EXPECT_DOUBLE_EQ(PointPolygonDistance({2, 0.5}, p), 1.0);
  EXPECT_NEAR(PointPolygonDistance({2, 2}, p), std::sqrt(2.0), 1e-12);
}

TEST(DistanceTest, PointPolygonDistanceInsideHole) {
  Polygon p = SquareWithHole();
  // Centre of the hole: 1 unit from the hole boundary.
  EXPECT_DOUBLE_EQ(PointPolygonDistance({5, 5}, p), 1.0);
}

TEST(DistanceTest, GeometryPointDistanceBox) {
  Geometry g(Box(0, 0, 1, 1));
  EXPECT_DOUBLE_EQ(GeometryPointDistance(g, {3, 1}), 2.0);
  EXPECT_DOUBLE_EQ(GeometryPointDistance(g, {0.5, 0.5}), 0.0);
  EXPECT_NEAR(GeometryPointDistance(g, {2, 2}), std::sqrt(2.0), 1e-12);
}

TEST(DistanceTest, DWithin) {
  LineString l;
  l.points = {{0, 0}, {10, 0}};
  Geometry g(l);
  EXPECT_TRUE(GeometryDWithin(g, {5, 2}, 2.0));
  EXPECT_FALSE(GeometryDWithin(g, {5, 2.1}, 2.0));
  EXPECT_TRUE(GeometryDWithin(g, {5, 0}, 0.0));
}

// ---------------- box classification ----------------

TEST(ClassifyTest, BoxPolygonInsideOutsideBoundary) {
  Polygon p = Polygon::FromBox(Box(0, 0, 10, 10));
  EXPECT_EQ(ClassifyBoxPolygon(Box(1, 1, 2, 2), p), BoxRelation::kInside);
  EXPECT_EQ(ClassifyBoxPolygon(Box(20, 20, 21, 21), p), BoxRelation::kOutside);
  EXPECT_EQ(ClassifyBoxPolygon(Box(9, 9, 11, 11), p), BoxRelation::kBoundary);
}

TEST(ClassifyTest, BoxAroundHoleIsBoundary) {
  Polygon p = SquareWithHole();
  EXPECT_EQ(ClassifyBoxPolygon(Box(3.5, 3.5, 6.5, 6.5), p),
            BoxRelation::kBoundary);
  EXPECT_EQ(ClassifyBoxPolygon(Box(1, 1, 2, 2), p), BoxRelation::kInside);
}

TEST(ClassifyTest, BoxContainingWholePolygonIsBoundary) {
  Polygon p = UnitSquare();
  EXPECT_EQ(ClassifyBoxPolygon(Box(-1, -1, 2, 2), p), BoxRelation::kBoundary);
}

TEST(ClassifyTest, ClassifyBoxGeometryBoxTarget) {
  Geometry g(Box(0, 0, 10, 10));
  EXPECT_EQ(ClassifyBoxGeometry(Box(1, 1, 2, 2), g), BoxRelation::kInside);
  EXPECT_EQ(ClassifyBoxGeometry(Box(9, 9, 12, 12), g), BoxRelation::kBoundary);
  EXPECT_EQ(ClassifyBoxGeometry(Box(11, 11, 12, 12), g), BoxRelation::kOutside);
}

TEST(ClassifyTest, BufferedLineClassification) {
  LineString l;
  l.points = {{0, 0}, {100, 0}};
  Geometry g(l);
  // A tiny box right on the line, well within the buffer: inside.
  EXPECT_EQ(ClassifyBoxGeometry(Box(50, -0.5, 51, 0.5), g, 10.0),
            BoxRelation::kInside);
  // Far away: outside.
  EXPECT_EQ(ClassifyBoxGeometry(Box(50, 100, 60, 110), g, 10.0),
            BoxRelation::kOutside);
  // Straddling the buffer edge: boundary.
  EXPECT_EQ(ClassifyBoxGeometry(Box(50, 8, 60, 12), g, 10.0),
            BoxRelation::kBoundary);
}

// Soundness sweep: classification must agree with per-point truth on a
// sample grid inside each cell.
TEST(ClassifyTest, ClassificationIsSoundOnSamples) {
  Polygon p;
  p.shell.points = {{0, 0}, {20, 5}, {15, 18}, {4, 15}};
  Geometry g(p);
  for (int cx = -2; cx < 24; cx += 2) {
    for (int cy = -2; cy < 20; cy += 2) {
      Box cell(cx, cy, cx + 2, cy + 2);
      BoxRelation rel = ClassifyBoxGeometry(cell, g);
      for (double fx = 0.25; fx < 1.0; fx += 0.25) {
        for (double fy = 0.25; fy < 1.0; fy += 0.25) {
          Point pt{cell.min_x + fx * cell.width(),
                   cell.min_y + fy * cell.height()};
          bool in = GeometryContainsPoint(g, pt);
          if (rel == BoxRelation::kInside) EXPECT_TRUE(in);
          if (rel == BoxRelation::kOutside) EXPECT_FALSE(in);
        }
      }
    }
  }
}

// ---------------- segment/box and line/box ----------------

TEST(SegmentBoxTest, Cases) {
  Box b(0, 0, 10, 10);
  EXPECT_TRUE(SegmentIntersectsBox({-5, 5}, {15, 5}, b));  // crosses
  EXPECT_TRUE(SegmentIntersectsBox({5, 5}, {6, 6}, b));    // inside
  EXPECT_TRUE(SegmentIntersectsBox({-1, -1}, {0, 0}, b));  // touches corner
  EXPECT_FALSE(SegmentIntersectsBox({-5, -5}, {-1, -1}, b));
  EXPECT_FALSE(SegmentIntersectsBox({11, 0}, {12, 10}, b));
}

TEST(LineBoxTest, PolylineIntersection) {
  Box b(0, 0, 10, 10);
  LineString l;
  l.points = {{-5, -5}, {-5, 5}, {5, 5}};
  EXPECT_TRUE(LineIntersectsBox(l, b));
  LineString l2;
  l2.points = {{-5, -5}, {-5, 20}, {-2, 20}};
  EXPECT_FALSE(LineIntersectsBox(l2, b));
}

TEST(PolygonBoxTest, PolygonInsideBoxCounts) {
  Polygon p = UnitSquare();
  EXPECT_TRUE(PolygonIntersectsBox(p, Box(-5, -5, 5, 5)));
  EXPECT_TRUE(PolygonIntersectsBox(p, Box(0.4, 0.4, 0.6, 0.6)));  // box in poly
  EXPECT_FALSE(PolygonIntersectsBox(p, Box(2, 2, 3, 3)));
}

// ---------------- geometry-geometry ----------------

TEST(GeomGeomTest, LinePolygon) {
  Polygon p = Polygon::FromBox(Box(0, 0, 10, 10));
  LineString cross;
  cross.points = {{-5, 5}, {15, 5}};
  EXPECT_TRUE(GeometriesIntersect(Geometry(cross), Geometry(p)));
  LineString inside;
  inside.points = {{1, 1}, {2, 2}};
  EXPECT_TRUE(GeometriesIntersect(Geometry(inside), Geometry(p)));
  LineString outside;
  outside.points = {{20, 20}, {30, 30}};
  EXPECT_FALSE(GeometriesIntersect(Geometry(outside), Geometry(p)));
}

TEST(GeomGeomTest, PolygonPolygon) {
  Geometry a(Polygon::FromBox(Box(0, 0, 10, 10)));
  Geometry b(Polygon::FromBox(Box(5, 5, 15, 15)));
  Geometry c(Polygon::FromBox(Box(11, 11, 15, 15)));
  Geometry inner(Polygon::FromBox(Box(2, 2, 3, 3)));
  EXPECT_TRUE(GeometriesIntersect(a, b));
  EXPECT_FALSE(GeometriesIntersect(a, c));
  EXPECT_TRUE(GeometriesIntersect(a, inner));  // containment counts
  EXPECT_TRUE(GeometriesIntersect(inner, a));
}

TEST(GeomGeomTest, PointAndBoxCombos) {
  Geometry pt(Point{1, 1});
  Geometry bx(Box(0, 0, 2, 2));
  EXPECT_TRUE(GeometriesIntersect(pt, bx));
  EXPECT_TRUE(GeometriesIntersect(bx, pt));
  EXPECT_FALSE(GeometriesIntersect(Geometry(Point{5, 5}), bx));
}

TEST(GeomGeomTest, Distance) {
  Geometry a(Polygon::FromBox(Box(0, 0, 1, 1)));
  Geometry b(Polygon::FromBox(Box(3, 0, 4, 1)));
  EXPECT_DOUBLE_EQ(GeometryDistance(a, b), 2.0);
  EXPECT_DOUBLE_EQ(GeometryDistance(a, a), 0.0);
  LineString l;
  l.points = {{0, 5}, {1, 5}};
  EXPECT_DOUBLE_EQ(GeometryDistance(a, Geometry(l)), 4.0);
}

}  // namespace
}  // namespace geocol
