#!/usr/bin/env python3
"""Merge per-binary bench JSON outputs into BENCH_E*.json artifacts.

Every bench binary accepts `--json <path>` and writes its table rows as a
JSON array of {bench, config, metrics} objects (bench_imprints, which runs
on google-benchmark, writes that library's native report instead; it is
converted here). This script groups all rows by experiment id and writes
one BENCH_<id>.json per experiment:

    build/bench/bench_selection --json /tmp/sel.json
    build/bench/bench_simd      --json /tmp/simd.json
    build/bench/bench_cache     --json /tmp/cache.json
    tools/bench_report.py --out-dir . /tmp/sel.json /tmp/simd.json \
        /tmp/cache.json
    # -> ./BENCH_E3.json ./BENCH_E11.json ./BENCH_E13.json ...

Telemetry registry dumps (from `--metrics <path>` on a bench binary, or
`geocol_tool metrics --format json`) can ride along via `--metrics`; their
counters/gauges/histogram summaries are merged into BENCH_METRICS.json:

    build/bench/bench_selection --metrics /tmp/sel-metrics.json
    tools/bench_report.py --out-dir . --metrics /tmp/sel-metrics.json ...
"""

import argparse
import json
import os
import sys
from collections import defaultdict

# google-benchmark reports carry no experiment id; map the binary name
# (recorded in the report context) to its id from EXPERIMENTS.md.
GBENCH_EXPERIMENTS = {"bench_imprints": "E7"}


def rows_from_file(path):
    with open(path) as f:
        doc = json.load(f)
    if isinstance(doc, list):
        return doc  # native {bench, config, metrics} rows
    if isinstance(doc, dict) and "benchmarks" in doc:
        # google-benchmark format: one row per benchmark entry.
        exe = os.path.basename(
            doc.get("context", {}).get("executable", "")) or "gbench"
        bench = GBENCH_EXPERIMENTS.get(exe, exe)
        rows = []
        for b in doc["benchmarks"]:
            metrics = {
                k: v
                for k, v in b.items()
                if isinstance(v, (int, float)) or k == "name"
            }
            rows.append({
                "bench": bench,
                "config": {"source": exe},
                "metrics": metrics,
            })
        return rows
    raise ValueError(f"{path}: unrecognised bench JSON shape")


def metrics_row(path):
    """One {bench: METRICS, ...} row from a telemetry registry JSON dump."""
    with open(path) as f:
        doc = json.load(f)
    if not isinstance(doc, dict) or "counters" not in doc:
        raise ValueError(f"{path}: not a telemetry metrics dump "
                         "(expected an object with a 'counters' key)")
    metrics = dict(doc.get("counters", {}))
    metrics.update(doc.get("gauges", {}))
    # Histograms contribute their scalar summaries; bucket vectors stay in
    # the source dump.
    for name, h in doc.get("histograms", {}).items():
        if isinstance(h, dict):
            metrics[f"{name}_count"] = h.get("count", 0)
            metrics[f"{name}_sum"] = h.get("sum", 0)
    return {
        "bench": "METRICS",
        "config": {"source": os.path.basename(path)},
        "metrics": metrics,
    }


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("inputs", nargs="*", help="per-binary --json outputs")
    ap.add_argument("--metrics", action="append", default=[],
                    metavar="PATH",
                    help="telemetry registry JSON dump(s) to merge into "
                         "BENCH_METRICS.json")
    ap.add_argument("--out-dir", default=".",
                    help="directory for BENCH_<id>.json files")
    args = ap.parse_args()
    if not args.inputs and not args.metrics:
        ap.error("no inputs given")

    by_bench = defaultdict(list)
    for path in args.inputs:
        try:
            for row in rows_from_file(path):
                by_bench[str(row.get("bench", "unknown"))].append(row)
        except (OSError, ValueError, json.JSONDecodeError) as e:
            print(f"bench_report: skipping {path}: {e}", file=sys.stderr)
    for path in args.metrics:
        try:
            by_bench["METRICS"].append(metrics_row(path))
        except (OSError, ValueError, json.JSONDecodeError) as e:
            print(f"bench_report: skipping {path}: {e}", file=sys.stderr)

    os.makedirs(args.out_dir, exist_ok=True)
    for bench, rows in sorted(by_bench.items()):
        out = os.path.join(args.out_dir, f"BENCH_{bench}.json")
        with open(out, "w") as f:
            json.dump(rows, f, indent=2)
            f.write("\n")
        print(f"wrote {out} ({len(rows)} rows)")
    if not by_bench:
        print("bench_report: no rows found", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
