// Space-filling curve properties: bijectivity, locality, ordering.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "sfc/hilbert.h"
#include "sfc/morton.h"
#include "util/rng.h"

namespace geocol {
namespace {

TEST(MortonTest, KnownValues) {
  EXPECT_EQ(MortonEncode(0, 0), 0u);
  EXPECT_EQ(MortonEncode(1, 0), 1u);
  EXPECT_EQ(MortonEncode(0, 1), 2u);
  EXPECT_EQ(MortonEncode(1, 1), 3u);
  EXPECT_EQ(MortonEncode(2, 0), 4u);
  EXPECT_EQ(MortonEncode(7, 7), 63u);
}

TEST(MortonTest, RoundTripRandom) {
  Rng rng(123);
  for (int i = 0; i < 10000; ++i) {
    uint32_t x = static_cast<uint32_t>(rng.Next());
    uint32_t y = static_cast<uint32_t>(rng.Next());
    auto [dx, dy] = MortonDecode(MortonEncode(x, y));
    EXPECT_EQ(dx, x);
    EXPECT_EQ(dy, y);
  }
}

TEST(MortonTest, MonotoneInQuadrants) {
  // All codes in the lower-left quadrant of a power-of-two square precede
  // all codes in the upper-right quadrant.
  uint64_t max_ll = 0, min_ur = ~uint64_t{0};
  for (uint32_t x = 0; x < 8; ++x) {
    for (uint32_t y = 0; y < 8; ++y) {
      max_ll = std::max(max_ll, MortonEncode(x, y));
    }
  }
  for (uint32_t x = 8; x < 16; ++x) {
    for (uint32_t y = 8; y < 16; ++y) {
      min_ur = std::min(min_ur, MortonEncode(x, y));
    }
  }
  EXPECT_LT(max_ll, min_ur);
}

TEST(MortonTest, ScaledEncodeClampsToExtent) {
  Box e(0, 0, 100, 100);
  EXPECT_EQ(MortonEncodeScaled(-50, -50, e), MortonEncodeScaled(0, 0, e));
  EXPECT_EQ(MortonEncodeScaled(500, 500, e), MortonEncodeScaled(100, 100, e));
  EXPECT_LT(MortonEncodeScaled(1, 1, e), MortonEncodeScaled(99, 99, e));
}

TEST(HilbertTest, RoundTripExhaustiveSmall) {
  const uint32_t order = 4;  // 16x16 grid
  std::vector<bool> seen(256, false);
  for (uint32_t x = 0; x < 16; ++x) {
    for (uint32_t y = 0; y < 16; ++y) {
      uint64_t d = HilbertEncode(x, y, order);
      ASSERT_LT(d, 256u);
      EXPECT_FALSE(seen[d]) << "duplicate curve position " << d;
      seen[d] = true;
      auto [dx, dy] = HilbertDecode(d, order);
      EXPECT_EQ(dx, x);
      EXPECT_EQ(dy, y);
    }
  }
}

TEST(HilbertTest, RoundTripRandomLargeOrder) {
  Rng rng(77);
  const uint32_t order = 16;
  for (int i = 0; i < 10000; ++i) {
    uint32_t x = static_cast<uint32_t>(rng.Uniform(1u << order));
    uint32_t y = static_cast<uint32_t>(rng.Uniform(1u << order));
    auto [dx, dy] = HilbertDecode(HilbertEncode(x, y, order), order);
    EXPECT_EQ(dx, x);
    EXPECT_EQ(dy, y);
  }
}

TEST(HilbertTest, ConsecutiveCurvePositionsAreNeighbors) {
  // The defining property of the Hilbert curve: successive curve positions
  // are at Manhattan distance exactly 1.
  const uint32_t order = 5;
  const uint64_t n = 1ull << (2 * order);
  auto [px, py] = HilbertDecode(0, order);
  for (uint64_t d = 1; d < n; ++d) {
    auto [x, y] = HilbertDecode(d, order);
    int dist = std::abs(static_cast<int>(x) - static_cast<int>(px)) +
               std::abs(static_cast<int>(y) - static_cast<int>(py));
    ASSERT_EQ(dist, 1) << "at position " << d;
    px = x;
    py = y;
  }
}

TEST(HilbertTest, BetterLocalityThanMortonAlongTheCurve) {
  // The property block stores exploit: walking the curve, Hilbert always
  // moves to a spatial neighbour (distance 1) while Morton takes long
  // jumps at quadrant boundaries — so Hilbert's average spatial step is
  // strictly smaller.
  const uint32_t order = 6, side = 1u << order;
  const uint64_t n = static_cast<uint64_t>(side) * side;
  auto dist = [](std::pair<uint32_t, uint32_t> a,
                 std::pair<uint32_t, uint32_t> b) {
    double dx = static_cast<double>(a.first) - b.first;
    double dy = static_cast<double>(a.second) - b.second;
    return std::sqrt(dx * dx + dy * dy);
  };
  double morton_sum = 0, hilbert_sum = 0;
  for (uint64_t d = 1; d < n; ++d) {
    morton_sum += dist(MortonDecode(d - 1), MortonDecode(d));
    hilbert_sum += dist(HilbertDecode(d - 1, order), HilbertDecode(d, order));
  }
  EXPECT_DOUBLE_EQ(hilbert_sum / (n - 1), 1.0);
  EXPECT_LT(hilbert_sum / (n - 1), morton_sum / (n - 1));
}

TEST(HilbertTest, RectanglesClusterIntoFewerRunsThanMorton) {
  // The inverse-direction locality property the sharding step relies on
  // (Moon et al., "Analysis of the clustering properties of the Hilbert
  // space-filling curve"): the cells of a rectangular query region occupy
  // fewer contiguous key runs under Hilbert than under Morton — so a bbox
  // query touches fewer contiguous shards of the key-sorted row space.
  const uint32_t order = 6, side = 1u << order;
  Rng rng(2024);
  auto runs_in_rect = [&](uint32_t x0, uint32_t y0, uint32_t w, uint32_t h,
                          auto encode) {
    std::vector<uint64_t> keys;
    keys.reserve(static_cast<size_t>(w) * h);
    for (uint32_t x = x0; x < x0 + w; ++x) {
      for (uint32_t y = y0; y < y0 + h; ++y) keys.push_back(encode(x, y));
    }
    std::sort(keys.begin(), keys.end());
    size_t runs = 1;
    for (size_t i = 1; i < keys.size(); ++i) {
      if (keys[i] != keys[i - 1] + 1) ++runs;
    }
    return runs;
  };
  size_t morton_runs = 0, hilbert_runs = 0;
  for (int i = 0; i < 200; ++i) {
    uint32_t w = 2 + static_cast<uint32_t>(rng.Uniform(11));
    uint32_t h = 2 + static_cast<uint32_t>(rng.Uniform(11));
    uint32_t x0 = static_cast<uint32_t>(rng.Uniform(side - w));
    uint32_t y0 = static_cast<uint32_t>(rng.Uniform(side - h));
    morton_runs += runs_in_rect(x0, y0, w, h,
                                [](uint32_t x, uint32_t y) {
                                  return MortonEncode(x, y);
                                });
    hilbert_runs += runs_in_rect(x0, y0, w, h,
                                 [order](uint32_t x, uint32_t y) {
                                   return HilbertEncode(x, y, order);
                                 });
  }
  EXPECT_LT(hilbert_runs, morton_runs)
      << "hilbert runs " << hilbert_runs << " vs morton " << morton_runs;
}

TEST(HilbertTest, ScaledEncodeZeroExtentDegenerates) {
  // A zero-extent bbox (all points identical, or a degenerate axis) must
  // not divide by zero: every point maps to one deterministic key, and a
  // zero-width (but tall) extent still orders points along the live axis.
  Box point_extent(42, 17, 42, 17);
  uint64_t k = HilbertEncodeScaled(42, 17, point_extent);
  EXPECT_EQ(k, HilbertEncodeScaled(42, 17, point_extent));
  EXPECT_EQ(k, HilbertEncode(0, 0));  // the single point sits at the origin
  // Out-of-extent coordinates clamp to the grid instead of overflowing.
  const uint64_t max_key = (uint64_t{1} << 32) - 1;
  EXPECT_LE(HilbertEncodeScaled(1e30, -1e30, point_extent), max_key);

  Box line_extent(5, 0, 5, 100);
  uint64_t lo = HilbertEncodeScaled(5, 10, line_extent);
  uint64_t hi = HilbertEncodeScaled(5, 90, line_extent);
  EXPECT_NE(lo, hi);
  EXPECT_EQ(lo, HilbertEncodeScaled(5, 10, line_extent));
}

TEST(HilbertTest, ScaledEncodeRespectsExtent) {
  Box e(85000, 444000, 86000, 446000);
  uint64_t a = HilbertEncodeScaled(85010, 444010, e);
  uint64_t b = HilbertEncodeScaled(85011, 444010, e);
  // Nearby points map to nearby curve positions far more often than not;
  // at minimum the encoding must be deterministic and in range.
  EXPECT_EQ(a, HilbertEncodeScaled(85010, 444010, e));
  (void)b;
}

}  // namespace
}  // namespace geocol
