// Differential cache-equivalence suite: a seeded randomized workload runs
// twice through one engine — cold (every query computed) then warm (every
// query served or seeded by the cache) — and every observable of every
// query must be byte-identical between the two passes AND equal to a
// cache-off engine: row ids, filter/refine statistics, and aggregate
// values (compared bit-for-bit, NaN included). The matrix covers
// {serial, parallel} x {scalar, best SIMD level}.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "core/spatial_engine.h"
#include "geom/geometry.h"
#include "simd/dispatch.h"
#include "util/rng.h"

namespace geocol {
namespace {

std::shared_ptr<FlatTable> MakeTable(size_t n, uint64_t seed,
                                     const Box& extent) {
  Rng rng(seed);
  std::vector<double> xs(n), ys(n), zs(n);
  std::vector<uint8_t> cls(n);
  std::vector<uint16_t> intensity(n);
  for (size_t i = 0; i < n; ++i) {
    xs[i] = rng.UniformDouble(extent.min_x, extent.max_x);
    ys[i] = rng.UniformDouble(extent.min_y, extent.max_y);
    zs[i] = rng.UniformDouble(-5, 40);
    cls[i] = static_cast<uint8_t>(rng.Uniform(10));
    intensity[i] = static_cast<uint16_t>(rng.Uniform(256));
  }
  auto t = std::make_shared<FlatTable>("pc");
  EXPECT_TRUE(t->AddColumn(Column::FromVector("x", xs)).ok());
  EXPECT_TRUE(t->AddColumn(Column::FromVector("y", ys)).ok());
  EXPECT_TRUE(t->AddColumn(Column::FromVector("z", zs)).ok());
  EXPECT_TRUE(t->AddColumn(Column::FromVector("classification", cls)).ok());
  EXPECT_TRUE(t->AddColumn(Column::FromVector("intensity", intensity)).ok());
  return t;
}

// One randomized query: spatial predicate + optional buffer + 0-2 thematic
// ranges + optionally an aggregate. Geometries are drawn from a small pool
// so repeats (tier a) and same-geometry-different-ranges (tier b) both
// occur naturally.
struct WorkloadQuery {
  Geometry geometry{Box(0, 0, 1, 1)};
  double buffer = 0.0;
  std::vector<AttributeRange> thematic;
  bool aggregate = false;
  AggKind kind = AggKind::kAvg;
  std::string agg_column;
};

Geometry RandomQueryGeometry(Rng* rng, double world) {
  switch (rng->Uniform(3)) {
    case 0: {
      double x = rng->UniformDouble(0, world * 0.8);
      double y = rng->UniformDouble(0, world * 0.8);
      return Geometry(Box(x, y, x + rng->UniformDouble(1, world * 0.3),
                          y + rng->UniformDouble(1, world * 0.3)));
    }
    case 1: {
      Point c{rng->UniformDouble(world * 0.2, world * 0.8),
              rng->UniformDouble(world * 0.2, world * 0.8)};
      int n = 3 + static_cast<int>(rng->Uniform(8));
      Polygon p;
      for (int i = 0; i < n; ++i) {
        double a = 2 * M_PI * i / n;
        double r = rng->UniformDouble(world * 0.05, world * 0.25);
        p.shell.points.push_back({c.x + r * std::cos(a), c.y + r * std::sin(a)});
      }
      return Geometry(std::move(p));
    }
    default: {
      LineString l;
      int n = 2 + static_cast<int>(rng->Uniform(4));
      for (int i = 0; i < n; ++i) {
        l.points.push_back(
            {rng->UniformDouble(0, world), rng->UniformDouble(0, world)});
      }
      return Geometry(std::move(l));
    }
  }
}

std::vector<WorkloadQuery> MakeWorkload(uint64_t seed, size_t count,
                                        double world) {
  Rng rng(seed);
  std::vector<Geometry> pool;
  std::vector<WorkloadQuery> queries;
  for (size_t i = 0; i < count; ++i) {
    WorkloadQuery q;
    // 40% of queries reuse a pooled geometry: exact repeats exercise tier
    // (a)/(c), reuse with different thematic ranges exercises tier (b).
    if (!pool.empty() && rng.NextBool(0.4)) {
      q.geometry = pool[rng.Uniform(pool.size())];
    } else {
      q.geometry = RandomQueryGeometry(&rng, world);
      pool.push_back(q.geometry);
    }
    if (q.geometry.type() == GeometryType::kLineString || rng.NextBool(0.2)) {
      q.buffer = rng.UniformDouble(0.5, world * 0.05);
    }
    int ranges = static_cast<int>(rng.Uniform(3));
    if (ranges >= 1) {
      q.thematic.push_back({"classification",
                            static_cast<double>(rng.Uniform(6)),
                            static_cast<double>(4 + rng.Uniform(6))});
    }
    if (ranges >= 2) {
      double lo = rng.UniformDouble(0, 200);
      q.thematic.push_back({"intensity", lo, lo + rng.UniformDouble(10, 80)});
    }
    if (rng.NextBool(0.3)) {
      q.aggregate = true;
      q.kind = static_cast<AggKind>(rng.Uniform(5));
      q.agg_column = rng.NextBool() ? "z" : "intensity";
    }
    queries.push_back(std::move(q));
  }
  return queries;
}

void ExpectFilterStatsEq(const ImprintScanStats& a, const ImprintScanStats& b,
                         const char* what) {
  EXPECT_EQ(a.lines_total, b.lines_total) << what;
  EXPECT_EQ(a.lines_candidate, b.lines_candidate) << what;
  EXPECT_EQ(a.lines_full, b.lines_full) << what;
  EXPECT_EQ(a.values_checked, b.values_checked) << what;
  EXPECT_EQ(a.rows_selected, b.rows_selected) << what;
  EXPECT_EQ(a.rows_full, b.rows_full) << what;
  EXPECT_EQ(a.workers, b.workers) << what;
}

void ExpectRefineStatsEq(const RefinementStats& a, const RefinementStats& b,
                         const char* what) {
  EXPECT_EQ(a.candidates, b.candidates) << what;
  EXPECT_EQ(a.accepted, b.accepted) << what;
  EXPECT_EQ(a.cells_total, b.cells_total) << what;
  EXPECT_EQ(a.cells_nonempty, b.cells_nonempty) << what;
  EXPECT_EQ(a.cells_inside, b.cells_inside) << what;
  EXPECT_EQ(a.cells_outside, b.cells_outside) << what;
  EXPECT_EQ(a.cells_boundary, b.cells_boundary) << what;
  EXPECT_EQ(a.exact_tests, b.exact_tests) << what;
  EXPECT_EQ(a.grid_cols, b.grid_cols) << what;
  EXPECT_EQ(a.grid_rows, b.grid_rows) << what;
  EXPECT_EQ(a.workers, b.workers) << what;
}

void ExpectSelectionEq(const SelectionResult& a, const SelectionResult& b,
                       const char* what) {
  EXPECT_EQ(a.row_ids, b.row_ids) << what;
  ExpectFilterStatsEq(a.filter_x, b.filter_x, what);
  ExpectFilterStatsEq(a.filter_y, b.filter_y, what);
  ExpectRefineStatsEq(a.refine, b.refine, what);
}

// Bitwise double equality: distinguishes -0.0 from 0.0 and treats equal
// NaN payloads as equal — the cache must replay the exact stored bits.
bool SameBits(double a, double b) {
  uint64_t ba, bb;
  std::memcpy(&ba, &a, sizeof(ba));
  std::memcpy(&bb, &b, sizeof(bb));
  return ba == bb;
}

struct EngineConfig {
  uint32_t threads;
  simd::SimdLevel level;
};

std::vector<EngineConfig> Configs() {
  std::vector<EngineConfig> configs = {{1, simd::SimdLevel::kScalar},
                                       {3, simd::SimdLevel::kScalar}};
  if (simd::MaxSupportedSimdLevel() != simd::SimdLevel::kScalar) {
    configs.push_back({1, simd::MaxSupportedSimdLevel()});
    configs.push_back({3, simd::MaxSupportedSimdLevel()});
  }
  return configs;
}

// Restores the default kernel dispatch when a test scope exits.
struct SimdLevelGuard {
  ~SimdLevelGuard() { simd::SetSimdLevel(simd::MaxSupportedSimdLevel()); }
};

TEST(CacheEquivalenceTest, ColdAndWarmPassesMatchCacheOffEngine) {
  SimdLevelGuard guard;
  auto workload = MakeWorkload(1234, 36, 1000.0);
  for (const EngineConfig& cfg : Configs()) {
    SCOPED_TRACE(testing::Message() << "threads=" << cfg.threads << " simd="
                                    << simd::SimdLevelName(cfg.level));
    simd::SetSimdLevel(cfg.level);
    auto table = MakeTable(20000, 7, Box(0, 0, 1000, 1000));

    EngineOptions off;
    off.num_threads = cfg.threads;
    SpatialQueryEngine oracle(table, off);

    EngineOptions on = off;
    on.cache.budget_bytes = 64ull << 20;
    on.cache.instance = std::make_shared<cache::QueryResultCache>();
    SpatialQueryEngine cached(table, on);

    // Pass 1 (cold) and pass 2 (warm) results, compared against the
    // cache-off oracle query by query.
    for (int pass = 0; pass < 2; ++pass) {
      for (size_t i = 0; i < workload.size(); ++i) {
        const WorkloadQuery& q = workload[i];
        SCOPED_TRACE(testing::Message() << "pass=" << pass << " query=" << i);
        if (q.aggregate) {
          auto got = cached.Aggregate(q.geometry, q.buffer, q.thematic,
                                      q.agg_column, q.kind);
          auto want = oracle.Aggregate(q.geometry, q.buffer, q.thematic,
                                       q.agg_column, q.kind);
          ASSERT_TRUE(got.ok()) << got.status().ToString();
          ASSERT_TRUE(want.ok()) << want.status().ToString();
          EXPECT_TRUE(SameBits(*got, *want))
              << "aggregate " << *got << " != " << *want;
        } else {
          auto got = cached.Select(q.geometry, q.buffer, q.thematic);
          auto want = oracle.Select(q.geometry, q.buffer, q.thematic);
          ASSERT_TRUE(got.ok()) << got.status().ToString();
          ASSERT_TRUE(want.ok()) << want.status().ToString();
          ExpectSelectionEq(*got, *want, "cached vs oracle");
        }
      }
    }
    // The warm pass must actually have been served by the cache.
    cache::CacheStats stats = on.cache.instance->Stats();
    EXPECT_GT(stats.TotalHits(), 0u);
    EXPECT_GT(stats.tier[static_cast<size_t>(cache::Tier::kSelection)].hits,
              0u);
  }
}

// Tier (b) reuse: the cell-table key is (geometry, buffer, exact grid
// frame) with no table identity or engine knobs, so engines whose
// selection keys differ — thread count, imprints on/off — share grid
// classifications whenever their candidate sets (and hence grids)
// coincide. A serial scalar engine warms the tier; every other engine
// config then refines seeded and must reproduce the row ids AND stats of
// its own cache-off oracle. The table is large enough that the threaded
// configs take the parallel (atomic cell table) seeded path.
TEST(CacheEquivalenceTest, GridSeedingPreservesResultsAndStats) {
  SimdLevelGuard guard;
  auto table = MakeTable(150000, 8, Box(0, 0, 1000, 1000));
  auto shared = std::make_shared<cache::QueryResultCache>(64ull << 20);
  Polygon poly;
  poly.shell.points = {{100, 100}, {900, 200}, {700, 800}, {200, 600}};
  Geometry g(poly);
  std::vector<AttributeRange> thematic = {{"classification", 2, 7}};

  simd::SetSimdLevel(simd::SimdLevel::kScalar);
  {
    EngineOptions warm;
    warm.num_threads = 1;
    warm.cache.budget_bytes = 64ull << 20;
    warm.cache.instance = shared;
    SpatialQueryEngine warmer(table, warm);
    ASSERT_TRUE(warmer.Select(g, 0.0, thematic).ok());
  }
  const size_t kGrid = static_cast<size_t>(cache::Tier::kGridCells);
  const uint64_t grid_hits_before = shared->Stats().tier[kGrid].hits;

  for (const EngineConfig& cfg : Configs()) {
    if (cfg.threads == 1 && cfg.level == simd::SimdLevel::kScalar) {
      continue;  // same selection key as the warmer: a tier (a) hit
    }
    SCOPED_TRACE(testing::Message() << "threads=" << cfg.threads << " simd="
                                    << simd::SimdLevelName(cfg.level));
    simd::SetSimdLevel(cfg.level);
    EngineOptions off;
    off.num_threads = cfg.threads;
    SpatialQueryEngine oracle(table, off);
    EngineOptions on = off;
    on.cache.budget_bytes = 64ull << 20;
    on.cache.instance = shared;
    SpatialQueryEngine seeded(table, on);
    auto got = seeded.Select(g, 0.0, thematic);
    auto want = oracle.Select(g, 0.0, thematic);
    ASSERT_TRUE(got.ok());
    ASSERT_TRUE(want.ok());
    ExpectSelectionEq(*got, *want, "seeded vs oracle");
  }

  // An imprint-free engine produces the same candidates through a full
  // scan — same grid, so it seeds from the shared tier too.
  simd::SetSimdLevel(simd::SimdLevel::kScalar);
  {
    EngineOptions off;
    off.num_threads = 1;
    off.use_imprints = false;
    SpatialQueryEngine oracle(table, off);
    EngineOptions on = off;
    on.cache.budget_bytes = 64ull << 20;
    on.cache.instance = shared;
    SpatialQueryEngine seeded(table, on);
    auto got = seeded.Select(g, 0.0, thematic);
    auto want = oracle.Select(g, 0.0, thematic);
    ASSERT_TRUE(got.ok());
    ASSERT_TRUE(want.ok());
    ExpectSelectionEq(*got, *want, "full-scan seeded vs oracle");
  }
  EXPECT_GT(shared->Stats().tier[kGrid].hits, grid_hits_before);
}

// An exact repeat must collapse to a single cache.hit span carrying the
// cache_hit=selection attribute EXPLAIN ANALYZE renders.
TEST(CacheEquivalenceTest, HitProfileRecordsCacheHitSpan) {
  auto table = MakeTable(5000, 9, Box(0, 0, 100, 100));
  EngineOptions on;
  on.num_threads = 1;
  on.cache.budget_bytes = 16ull << 20;
  on.cache.instance = std::make_shared<cache::QueryResultCache>();
  SpatialQueryEngine eng(table, on);
  Polygon poly;
  poly.shell.points = {{10, 10}, {90, 20}, {70, 80}, {20, 60}};
  Geometry g(poly);

  auto cold = eng.SelectInGeometry(g);
  ASSERT_TRUE(cold.ok());
  for (const auto& op : cold->profile.operators()) {
    EXPECT_NE(op.name, "cache.hit");
  }

  auto warm = eng.SelectInGeometry(g);
  ASSERT_TRUE(warm.ok());
  ASSERT_EQ(warm->profile.operators().size(), 1u);
  const auto& op = warm->profile.operators()[0];
  EXPECT_EQ(op.name, "cache.hit");
  ASSERT_EQ(op.attrs.size(), 1u);
  EXPECT_EQ(op.attrs[0].first, "cache_hit");
  EXPECT_EQ(op.attrs[0].second, "selection");
  EXPECT_EQ(warm->row_ids, cold->row_ids);
}

// Budget 0 must leave the engine entirely detached from the cache: no
// lookups, no inserts, no stats movement in a bound instance.
TEST(CacheEquivalenceTest, ZeroBudgetNeverTouchesCache) {
  auto table = MakeTable(5000, 10, Box(0, 0, 100, 100));
  EngineOptions opts;
  opts.num_threads = 1;
  opts.cache.budget_bytes = 0;
  opts.cache.instance = std::make_shared<cache::QueryResultCache>();
  SpatialQueryEngine eng(table, opts);
  Polygon poly;
  poly.shell.points = {{10, 10}, {90, 20}, {70, 80}, {20, 60}};
  Geometry g(poly);
  ASSERT_TRUE(eng.SelectInGeometry(g).ok());
  ASSERT_TRUE(eng.SelectInGeometry(g).ok());
  cache::CacheStats stats = opts.cache.instance->Stats();
  EXPECT_EQ(stats.TotalHits() + stats.TotalMisses(), 0u);
  EXPECT_EQ(stats.bytes_used, 0u);
  EXPECT_EQ(eng.result_cache(), nullptr);
}

}  // namespace
}  // namespace geocol
