#include "baselines/zonemap.h"

#include <algorithm>

namespace geocol {

Result<ZoneMapIndex> ZoneMapIndex::Build(const Column& column,
                                         uint32_t rows_per_zone) {
  if (column.empty()) {
    return Status::InvalidArgument("cannot build zonemap on empty column");
  }
  if (rows_per_zone == 0) {
    return Status::InvalidArgument("rows_per_zone must be positive");
  }
  ZoneMapIndex ix;
  ix.rows_per_zone_ = rows_per_zone;
  ix.num_rows_ = column.size();
  ix.built_epoch_ = column.epoch();
  uint64_t zones = (ix.num_rows_ + rows_per_zone - 1) / rows_per_zone;
  ix.mins_.resize(zones);
  ix.maxs_.resize(zones);
  Status build_status;
  DispatchDataType(column.type(), [&]<typename T>() {
    // One streaming pass via ForEachValueRun: resident columns see the
    // whole span in one run; paged columns one faulted chunk at a time. A
    // zone straddling a run seam merges its segment extremes — the double
    // cast is monotonic, so the merged min/max equal the single-pass ones.
    build_status = ForEachValueRun<T>(
        column, 0, ix.num_rows_, [&](const T* vals, uint64_t first,
                                     size_t count) {
          const uint64_t end = first + count;
          for (uint64_t pos = first; pos < end;) {
            const uint64_t z = pos / rows_per_zone;
            const uint64_t zend =
                std::min<uint64_t>((z + 1) * uint64_t{rows_per_zone}, end);
            T mn = vals[pos - first], mx = mn;
            for (uint64_t i = pos + 1; i < zend; ++i) {
              mn = std::min(mn, vals[i - first]);
              mx = std::max(mx, vals[i - first]);
            }
            if (pos == z * uint64_t{rows_per_zone}) {
              ix.mins_[z] = static_cast<double>(mn);
              ix.maxs_[z] = static_cast<double>(mx);
            } else {
              ix.mins_[z] = std::min(ix.mins_[z], static_cast<double>(mn));
              ix.maxs_[z] = std::max(ix.maxs_[z], static_cast<double>(mx));
            }
            pos = zend;
          }
        });
  });
  GEOCOL_RETURN_NOT_OK(build_status);
  return ix;
}

void ZoneMapIndex::FilterRange(double lo, double hi, BitVector* candidates,
                               BitVector* full_zones) const {
  uint64_t zones = mins_.size();
  candidates->Resize(zones);
  if (full_zones != nullptr) full_zones->Resize(zones);
  for (uint64_t z = 0; z < zones; ++z) {
    if (mins_[z] <= hi && maxs_[z] >= lo) {
      candidates->Set(z);
      if (full_zones != nullptr && mins_[z] >= lo && maxs_[z] <= hi) {
        full_zones->Set(z);
      }
    }
  }
}

Status ZoneMapIndex::RangeSelect(const Column& column, double lo, double hi,
                                 BitVector* out_rows,
                                 ZoneMapScanStats* stats) const {
  if (column.epoch() != built_epoch_) {
    return Status::Internal("stale zonemap (column was modified)");
  }
  out_rows->Resize(column.size());
  ZoneMapScanStats local;
  local.zones_total = mins_.size();
  Status scan_status;
  DispatchDataType(column.type(), [&]<typename T>() {
    for (uint64_t z = 0; z < mins_.size(); ++z) {
      if (!(mins_[z] <= hi && maxs_[z] >= lo)) continue;
      ++local.zones_candidate;
      uint64_t first = z * rows_per_zone_;
      uint64_t last =
          std::min<uint64_t>(first + rows_per_zone_, column.size());
      if (mins_[z] >= lo && maxs_[z] <= hi) {
        ++local.zones_full;
        out_rows->SetRange(first, last);
        local.rows_selected += last - first;
        continue;
      }
      // Boundary zone: only these fault chunks on the paged tier — zone
      // pruning translates directly into chunks never read.
      scan_status = ForEachValueRun<T>(
          column, first, last, [&](const T* vals, uint64_t run_first,
                                   size_t count) {
            for (size_t k = 0; k < count; ++k) {
              double v = static_cast<double>(vals[k]);
              ++local.values_checked;
              if (v >= lo && v <= hi) {
                out_rows->Set(run_first + k);
                ++local.rows_selected;
              }
            }
          });
      if (!scan_status.ok()) return;
    }
  });
  GEOCOL_RETURN_NOT_OK(scan_status);
  if (stats != nullptr) *stats = local;
  return Status::OK();
}

}  // namespace geocol
