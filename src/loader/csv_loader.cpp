#include "loader/csv_loader.h"

#include <cstdio>

#include "columns/csv.h"
#include "las/las_reader.h"
#include "util/binary_io.h"
#include "util/tempdir.h"
#include "util/timer.h"

namespace geocol {

Status CsvLoader::LoadFile(const std::string& path, FlatTable* table,
                           LoadStats* stats) {
  Timer t;
  GEOCOL_ASSIGN_OR_RETURN(LasTile tile, ReadLasFile(path));
  if (stats != nullptr) {
    stats->read_seconds += t.ElapsedSeconds();
    GEOCOL_ASSIGN_OR_RETURN(uint64_t sz, FileSizeBytes(path));
    stats->bytes_read += sz;
    stats->points += tile.points.size();
    ++stats->files;
  }

  // Convert the tile to CSV text.
  t.Restart();
  size_t slash = path.find_last_of('/');
  std::string prefix = slash == std::string::npos ? path : path.substr(slash + 1);
  std::string csv_path = scratch_dir_ + "/" + prefix + ".csv";
  FlatTable staging("staging", LasPointSchema());
  GEOCOL_RETURN_NOT_OK(AppendTileToTable(tile, &staging));
  GEOCOL_RETURN_NOT_OK(WriteCsv(staging, csv_path));
  if (stats != nullptr) stats->convert_seconds += t.ElapsedSeconds();

  // Parse the CSV into the destination table.
  t.Restart();
  Status st = AppendCsv(csv_path, table);
  std::remove(csv_path.c_str());
  GEOCOL_RETURN_NOT_OK(st);
  if (stats != nullptr) stats->append_seconds += t.ElapsedSeconds();
  return Status::OK();
}

Result<std::shared_ptr<FlatTable>> CsvLoader::LoadDirectory(
    const std::string& dir, LoadStats* stats) {
  std::vector<std::string> files;
  GEOCOL_RETURN_NOT_OK(ListFiles(dir, ".las", &files));
  GEOCOL_RETURN_NOT_OK(ListFiles(dir, ".laz", &files));
  if (files.empty()) {
    return Status::NotFound("no .las/.laz files under " + dir);
  }
  auto table = std::make_shared<FlatTable>("ahn2_csv", LasPointSchema());
  for (const std::string& f : files) {
    GEOCOL_RETURN_NOT_OK(LoadFile(f, table.get(), stats));
  }
  return table;
}

}  // namespace geocol
