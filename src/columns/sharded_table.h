// Hilbert-ordered spatial sharding of a flat table (DESIGN.md §12): a
// one-time ShardedTable::Create step sorts the rows by the Hilbert key of
// (x, y) and splits them into K contiguous shards, each holding its own
// columns and a tight bounding box. Shards are the pruning and scatter
// unit of the shard router — a viewport query skips every shard whose
// bbox misses its envelope before any imprint work happens — and the
// layout is what a future multi-process deployment would distribute.
//
// Global row ids: shard i covers global rows [base, base + rows) in
// Hilbert-sorted order, so concatenating per-shard results in shard order
// reproduces exactly the row ids a single engine over the sorted flat
// table would return.
#ifndef GEOCOL_COLUMNS_SHARDED_TABLE_H_
#define GEOCOL_COLUMNS_SHARDED_TABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "columns/flat_table.h"
#include "geom/geometry.h"
#include "util/status.h"

namespace geocol {

/// Knobs of the one-time sharding step.
struct ShardingOptions {
  /// Requested shard count; clamped to [1, max(1, num_rows)].
  uint32_t num_shards = 16;
  /// Hilbert curve order for the sort key (2^order cells per axis).
  uint32_t hilbert_order = 16;
  std::string x_column = "x";
  std::string y_column = "y";
};

/// One contiguous run of Hilbert-sorted rows with its own columns.
struct ShardSlice {
  std::shared_ptr<FlatTable> table;
  /// Tight bounds of the shard's points (empty for a rowless shard).
  Box bbox;
  /// Global row id of the shard's first row.
  uint64_t base = 0;
  /// Directory holding the shard's persisted columns; "" when in-memory
  /// only. Imprint sidecars of a sharded engine live here too.
  std::string dir;
};

/// An immutable Hilbert-sharded layout of one logical table. Built once by
/// Create (or loaded by ReadShardedTableDir); queries go through the shard
/// router. Mutating a shard's columns afterwards bumps their epochs, which
/// the router's cache keys observe.
class ShardedTable {
 public:
  /// Sorts `source` rows by Hilbert key of (x, y) scaled to the source
  /// extent — ties keep their original order, so the layout is fully
  /// deterministic — and gathers them into K contiguous shards of
  /// near-equal size (the first rows % K shards hold one extra row).
  /// Degenerate inputs are clamped: a zero-extent table (all points
  /// equal) keeps its original order, K > rows builds one shard per row,
  /// and an empty table builds a single empty shard.
  static Result<std::shared_ptr<ShardedTable>> Create(
      const FlatTable& source, const ShardingOptions& options = {});

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  const ShardingOptions& options() const { return options_; }
  const std::string& x_column() const { return options_.x_column; }
  const std::string& y_column() const { return options_.y_column; }

  size_t num_shards() const { return shards_.size(); }
  const ShardSlice& shard(size_t i) const { return shards_[i]; }
  std::vector<ShardSlice>& shards() { return shards_; }

  uint64_t num_rows() const { return num_rows_; }
  /// The shared schema of every shard.
  Schema schema() const;
  /// Extent the Hilbert keys were scaled to (the source table's bounds).
  const Box& extent() const { return extent_; }

  /// Process-unique id assigned at construction; cache keys use it (plus
  /// the generation and per-shard column epochs) so two layouts can never
  /// alias each other's entries.
  uint64_t layout_id() const { return layout_id_; }

  /// Incremented by every successful WriteShardedTableDir; 0 for a layout
  /// that has never been persisted.
  uint64_t generation() const { return generation_; }
  void set_generation(uint64_t g) { generation_ = g; }

  /// Live-append hook: restamps the total row count after ShardRouter::
  /// Append replaces shard slices in place (slice tables, bboxes and base
  /// offsets are updated by the same caller, under its view lock).
  void set_num_rows(uint64_t n) { num_rows_ = n; }

  /// Index of the shard containing `global_row` (rows are contiguous in
  /// shard order). Precondition: global_row < num_rows().
  size_t ShardIndexOf(uint64_t global_row) const;

  /// Loader hook: stamps the fields Create would have computed. Only
  /// ReadShardedTableDir calls this.
  void FinishLoad(const ShardingOptions& options, const Box& extent,
                  uint64_t num_rows);

 private:
  static uint64_t NextLayoutId();

  std::string name_;
  ShardingOptions options_;
  std::vector<ShardSlice> shards_;
  uint64_t num_rows_ = 0;
  Box extent_;
  uint64_t layout_id_ = NextLayoutId();
  uint64_t generation_ = 0;
};

/// True when `dir` holds a sharded table (a `shards.gsm` manifest).
bool IsShardedTableDir(const std::string& dir);

/// Name of shard `i`'s subdirectory in a generation-`gen` persisted layout
/// ("shard_NNNN.g<gen>"). Live appends write replacement shard tables into
/// next-generation names before swapping the manifest, mirroring what a
/// full WriteShardedTableDir would do.
std::string ShardDirName(size_t i, uint64_t gen);

/// Persists the layout crash-safely: each shard goes to
/// `<dir>/shard_NNNN.g<gen>` (generation-suffixed, so a re-shard — even
/// with a different K — never touches the directories the live manifest
/// references) through the generation-stamped WriteTableDir protocol, and
/// the `<dir>/shards.gsm` manifest ("GSM1" magic, CRC32C footer) is
/// swapped in atomically LAST as the commit point — a crash at any
/// injected failure point leaves the previous manifest (or none) and its
/// generation fully readable, never mixed shards.
Status WriteShardedTableDir(const ShardedTable& table, const std::string& dir);

/// Loads a layout persisted by WriteShardedTableDir. With `paged` every
/// shard opens through ReadTableDirPaged — chunk directories only, rows
/// fault on demand — so a sharded table bigger than RAM still routes and
/// scans; bbox pruning then translates into whole shards never faulted.
Result<std::shared_ptr<ShardedTable>> ReadShardedTableDir(
    const std::string& dir, bool verify_checksums = true, bool paged = false);

/// The parsed `<dir>/shards.gsm` manifest, exposed for `geocol verify`.
struct ShardedTableManifest {
  std::string table_name;
  std::string x_column;
  std::string y_column;
  uint64_t generation = 0;
  uint32_t hilbert_order = 16;
  Box extent;
  struct ManifestShard {
    std::string dirname;  ///< subdirectory within the sharded table dir
    uint64_t rows = 0;
    Box bbox;
  };
  std::vector<ManifestShard> shards;
};

Status WriteShardedTableManifest(const std::string& dir,
                                 const ShardedTableManifest& m);
Result<ShardedTableManifest> ReadShardedTableManifest(const std::string& dir);

}  // namespace geocol

#endif  // GEOCOL_COLUMNS_SHARDED_TABLE_H_
