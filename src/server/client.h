// Client side of the geocol wire protocol: a blocking single-connection
// client used by `geocol client`, the differential tests and bench_serve.
// One request is outstanding per connection at a time (the protocol has
// no stream ids; scripting fan-out opens one Client per logical client).
#ifndef GEOCOL_SERVER_CLIENT_H_
#define GEOCOL_SERVER_CLIENT_H_

#include <string>
#include <utility>

#include "server/protocol.h"
#include "sql/executor.h"
#include "util/status.h"

namespace geocol {
namespace server {

class Client {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    int port = 0;
    /// Sent as HELLO after connect when non-empty; the server tags rate
    /// limiting, counters and flight events with it.
    std::string client_id;
    /// Keep retrying the TCP connect for up to this long (the CI smoke
    /// starts the server concurrently). 0 = single attempt.
    int connect_retry_ms = 0;
    uint32_t max_response_bytes = kMaxResponseFrameBytes;
  };

  /// A server's answer to one query. `ok` distinguishes a result set from
  /// a typed refusal/failure; transport-level problems (connection died,
  /// undecodable frame) are the outer Result's error instead.
  struct QueryOutcome {
    bool ok = false;
    sql::ResultSet result;  ///< valid when ok
    ErrorReply error;       ///< valid when !ok

    /// The Status a local sql::Session would have returned (oracle
    /// comparison for error queries).
    Status ToStatus() const { return ok ? Status::OK() : error.ToStatus(); }
  };

  static Result<Client> Connect(const Options& options);

  Client(Client&& o) noexcept : fd_(o.fd_), options_(std::move(o.options_)) {
    o.fd_ = -1;
  }
  Client& operator=(Client&& o) noexcept {
    if (this != &o) {
      Close();
      fd_ = o.fd_;
      options_ = std::move(o.options_);
      o.fd_ = -1;
    }
    return *this;
  }
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client() { Close(); }

  Status Ping();
  Result<QueryOutcome> Query(const std::string& sql);
  void Close();
  bool connected() const { return fd_ >= 0; }

 private:
  Client(int fd, Options options) : fd_(fd), options_(std::move(options)) {}

  int fd_ = -1;
  Options options_;
};

}  // namespace server
}  // namespace geocol

#endif  // GEOCOL_SERVER_CLIENT_H_
