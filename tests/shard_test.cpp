// ShardedTable / ShardRouter unit suite: builder properties (Hilbert
// ordering, contiguity, bbox tightness), degenerate inputs, crash-safe
// persistence (fault-injection sweep over WriteShardedTableDir), the
// shard-layout ingredient of the query result cache key (re-shard and
// single-shard mutation invalidate by construction), the pruning
// telemetry counters, and the EXPLAIN ANALYZE shard footer.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "cache/query_cache.h"
#include "columns/column_file.h"
#include "columns/sharded_table.h"
#include "core/shard_router.h"
#include "gis/catalog.h"
#include "sfc/hilbert.h"
#include "sql/session.h"
#include "telemetry/metrics.h"
#include "util/fault_injection.h"
#include "util/rng.h"
#include "util/tempdir.h"

namespace geocol {
namespace {

std::shared_ptr<FlatTable> MakeTable(size_t n, uint64_t seed,
                                     const Box& extent) {
  Rng rng(seed);
  std::vector<double> xs(n), ys(n), zs(n);
  std::vector<uint8_t> cls(n);
  for (size_t i = 0; i < n; ++i) {
    xs[i] = rng.UniformDouble(extent.min_x, extent.max_x);
    ys[i] = rng.UniformDouble(extent.min_y, extent.max_y);
    zs[i] = rng.UniformDouble(-5, 40);
    cls[i] = static_cast<uint8_t>(rng.Uniform(10));
  }
  auto t = std::make_shared<FlatTable>("pc");
  EXPECT_TRUE(t->AddColumn(Column::FromVector("x", xs)).ok());
  EXPECT_TRUE(t->AddColumn(Column::FromVector("y", ys)).ok());
  EXPECT_TRUE(t->AddColumn(Column::FromVector("z", zs)).ok());
  EXPECT_TRUE(t->AddColumn(Column::FromVector("classification", cls)).ok());
  return t;
}

TEST(ShardedTableTest, BuilderSplitsHilbertOrderedContiguously) {
  auto source = MakeTable(5000, 3, Box(0, 0, 100, 100));
  ShardingOptions so;
  so.num_shards = 8;
  auto sharded = ShardedTable::Create(*source, so);
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();

  EXPECT_EQ((*sharded)->num_shards(), 8u);
  EXPECT_EQ((*sharded)->num_rows(), 5000u);

  // Bases are contiguous and shard sizes near-equal.
  uint64_t base = 0;
  for (size_t i = 0; i < (*sharded)->num_shards(); ++i) {
    const ShardSlice& s = (*sharded)->shard(i);
    EXPECT_EQ(s.base, base);
    EXPECT_GE(s.table->num_rows(), 5000u / 8);
    EXPECT_LE(s.table->num_rows(), 5000u / 8 + 1);
    base += s.table->num_rows();
    EXPECT_EQ((*sharded)->ShardIndexOf(s.base), i);
    EXPECT_EQ((*sharded)->ShardIndexOf(base - 1), i);
  }
  EXPECT_EQ(base, 5000u);

  // Concatenated shard rows are Hilbert-nondecreasing, every point lies
  // inside its shard's bbox, and consecutive shards do not interleave on
  // the curve.
  const Box extent = (*sharded)->extent();
  uint64_t prev_key = 0;
  for (size_t i = 0; i < (*sharded)->num_shards(); ++i) {
    const ShardSlice& s = (*sharded)->shard(i);
    auto x = s.table->GetColumn("x");
    auto y = s.table->GetColumn("y");
    ASSERT_TRUE(x.ok() && y.ok());
    for (uint64_t r = 0; r < s.table->num_rows(); ++r) {
      double px = (*x)->GetDouble(r), py = (*y)->GetDouble(r);
      EXPECT_TRUE(s.bbox.Contains(Point{px, py}))
          << "shard " << i << " row " << r;
      uint64_t key = HilbertEncodeScaled(px, py, extent, so.hilbert_order);
      EXPECT_GE(key, prev_key) << "shard " << i << " row " << r;
      prev_key = key;
    }
  }
}

TEST(ShardedTableTest, DegenerateInputs) {
  // K > rows: clamps to one shard per row.
  auto tiny = MakeTable(3, 5, Box(0, 0, 10, 10));
  ShardingOptions many;
  many.num_shards = 64;
  auto s = ShardedTable::Create(*tiny, many);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ((*s)->num_shards(), 3u);
  EXPECT_EQ((*s)->num_rows(), 3u);

  // Single-point table.
  auto single = MakeTable(1, 6, Box(5, 5, 5, 5));
  auto s1 = ShardedTable::Create(*single, many);
  ASSERT_TRUE(s1.ok());
  EXPECT_EQ((*s1)->num_shards(), 1u);
  ShardRouter r1(*s1);
  auto sel = r1.SelectInBox(Box(0, 0, 10, 10));
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel->row_ids.size(), 1u);

  // Zero-extent table (all points identical): keys all equal, stable sort
  // keeps source order, queries still work.
  const size_t n = 100;
  std::vector<double> xs(n, 42.0), ys(n, 17.0), zs(n);
  for (size_t i = 0; i < n; ++i) zs[i] = static_cast<double>(i);
  auto flat = std::make_shared<FlatTable>("flat");
  ASSERT_TRUE(flat->AddColumn(Column::FromVector("x", xs)).ok());
  ASSERT_TRUE(flat->AddColumn(Column::FromVector("y", ys)).ok());
  ASSERT_TRUE(flat->AddColumn(Column::FromVector("z", zs)).ok());
  ShardingOptions so;
  so.num_shards = 4;
  auto sz = ShardedTable::Create(*flat, so);
  ASSERT_TRUE(sz.ok()) << sz.status().ToString();
  EXPECT_EQ((*sz)->num_shards(), 4u);
  EXPECT_TRUE((*sz)->extent().empty() ||
              ((*sz)->extent().width() == 0 && (*sz)->extent().height() == 0));
  // Source order preserved: global row g holds z == g.
  uint64_t g = 0;
  for (size_t i = 0; i < (*sz)->num_shards(); ++i) {
    auto z = (*sz)->shard(i).table->GetColumn("z");
    ASSERT_TRUE(z.ok());
    for (uint64_t r = 0; r < (*sz)->shard(i).table->num_rows(); ++r, ++g) {
      EXPECT_EQ((*z)->GetDouble(r), static_cast<double>(g));
    }
  }
  ShardRouter rz(*sz);
  auto all = rz.SelectInBox(Box(40, 15, 45, 20));
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->row_ids.size(), n);

  // Empty table: single empty shard, empty selections.
  auto empty = std::make_shared<FlatTable>("empty");
  ASSERT_TRUE(
      empty->AddColumn(Column::FromVector("x", std::vector<double>{})).ok());
  ASSERT_TRUE(
      empty->AddColumn(Column::FromVector("y", std::vector<double>{})).ok());
  auto se = ShardedTable::Create(*empty, so);
  ASSERT_TRUE(se.ok()) << se.status().ToString();
  EXPECT_EQ((*se)->num_shards(), 1u);
  EXPECT_EQ((*se)->num_rows(), 0u);
  ShardRouter re(*se);
  auto none = re.SelectInBox(Box(0, 0, 1, 1));
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->row_ids.empty());
}

TEST(ShardedTableTest, PersistRoundTripPreservesLayoutAndAnswers) {
  TempDir tmp("sharded-roundtrip");
  auto source = MakeTable(4000, 9, Box(0, 0, 500, 500));
  ShardingOptions so;
  so.num_shards = 6;
  auto built = ShardedTable::Create(*source, so);
  ASSERT_TRUE(built.ok());

  const std::string dir = tmp.path() + "/t";
  ASSERT_TRUE(WriteShardedTableDir(**built, dir).ok());
  EXPECT_TRUE(IsShardedTableDir(dir));

  auto loaded = ReadShardedTableDir(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->generation(), 1u);
  EXPECT_EQ((*loaded)->num_shards(), (*built)->num_shards());
  EXPECT_EQ((*loaded)->num_rows(), (*built)->num_rows());
  EXPECT_EQ((*loaded)->x_column(), "x");
  for (size_t i = 0; i < (*built)->num_shards(); ++i) {
    EXPECT_EQ((*loaded)->shard(i).base, (*built)->shard(i).base);
    EXPECT_EQ((*loaded)->shard(i).table->num_rows(),
              (*built)->shard(i).table->num_rows());
    EXPECT_EQ((*loaded)->shard(i).bbox.min_x, (*built)->shard(i).bbox.min_x);
    EXPECT_EQ((*loaded)->shard(i).bbox.max_y, (*built)->shard(i).bbox.max_y);
    EXPECT_FALSE((*loaded)->shard(i).dir.empty());
  }

  // Same answers through the loaded layout.
  ShardRouter mem(*built), disk(*loaded);
  Box q(100, 100, 260, 240);
  auto a = mem.SelectInBox(q);
  auto b = disk.SelectInBox(q);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->row_ids, b->row_ids);

  // Rewrite bumps the generation; the layouts referenced by successive
  // manifests never share shard directories.
  auto m1 = ReadShardedTableManifest(dir);
  ASSERT_TRUE(m1.ok());
  ASSERT_TRUE(WriteShardedTableDir(**built, dir).ok());
  auto m2 = ReadShardedTableManifest(dir);
  ASSERT_TRUE(m2.ok());
  EXPECT_EQ(m2->generation, m1->generation + 1);
  for (const auto& s1 : m1->shards) {
    for (const auto& s2 : m2->shards) EXPECT_NE(s1.dirname, s2.dirname);
  }
}

// Crash sweep over the whole persistence step: at every injectable crash
// point the directory must read back as either the previous committed
// layout or (only when the crash hits after the manifest swap) the new
// one — never a mix, never a torn manifest.
TEST(ShardedTableTest, CrashSweepLeavesOldOrNewLayout) {
  auto source = MakeTable(600, 13, Box(0, 0, 100, 100));
  ShardingOptions a;
  a.num_shards = 3;
  auto first = ShardedTable::Create(*source, a);
  ASSERT_TRUE(first.ok());
  ShardingOptions b;
  b.num_shards = 5;
  auto second = ShardedTable::Create(*source, b);
  ASSERT_TRUE(second.ok());

  auto& fi = FaultInjector::Global();

  // Count the fallible ops of the initial write and of the re-shard.
  TempDir clean("sharded-clean");
  ASSERT_TRUE(WriteShardedTableDir(**first, clean.path() + "/t").ok());
  fi.StartCounting();
  ASSERT_TRUE(WriteShardedTableDir(**second, clean.path() + "/t").ok());
  const uint64_t reshard_ops = fi.StopCounting();
  ASSERT_GT(reshard_ops, 0u);

  TempDir fresh("sharded-fresh");
  fi.StartCounting();
  ASSERT_TRUE(WriteShardedTableDir(**first, fresh.path() + "/i").ok());
  const uint64_t initial_ops = fi.StopCounting();

  // Initial write: after any crash the dir is either not a sharded table
  // yet, or holds the complete new layout.
  const uint64_t initial_step = std::max<uint64_t>(1, initial_ops / 23);
  for (uint64_t k = 1; k <= initial_ops; k += initial_step) {
    TempDir tmp("sharded-crash-i");
    const std::string dir = tmp.path() + "/t";
    fi.ArmCrashAtOp(k);
    Status st = WriteShardedTableDir(**first, dir);
    fi.Disarm();
    if (st.ok()) continue;  // crash landed after the commit point
    if (!IsShardedTableDir(dir)) continue;  // never published: old state
    auto loaded = ReadShardedTableDir(dir);
    ASSERT_TRUE(loaded.ok()) << "op " << k << ": " << loaded.status().ToString();
    EXPECT_EQ((*loaded)->num_shards(), 3u) << "op " << k;
    EXPECT_EQ((*loaded)->num_rows(), 600u) << "op " << k;
  }

  // Re-shard (K=3 -> K=5) over a committed layout: old or new, never
  // mixed, at every crash point.
  const uint64_t reshard_step = std::max<uint64_t>(1, reshard_ops / 23);
  for (uint64_t k = 1; k <= reshard_ops; k += reshard_step) {
    TempDir tmp("sharded-crash-r");
    const std::string dir = tmp.path() + "/t";
    ASSERT_TRUE(WriteShardedTableDir(**first, dir).ok());
    fi.ArmCrashAtOp(k);
    Status st = WriteShardedTableDir(**second, dir);
    fi.Disarm();
    auto loaded = ReadShardedTableDir(dir);
    ASSERT_TRUE(loaded.ok()) << "op " << k << ": " << loaded.status().ToString();
    const size_t shards = (*loaded)->num_shards();
    EXPECT_TRUE(shards == 3u || shards == 5u) << "op " << k;
    if (st.ok()) {
      EXPECT_EQ(shards, 5u) << "op " << k;
    }
    EXPECT_EQ((*loaded)->num_rows(), 600u) << "op " << k;
    // The surviving layout answers queries.
    ShardRouter router(*loaded);
    auto sel = router.SelectInBox(Box(10, 10, 60, 60));
    ASSERT_TRUE(sel.ok()) << "op " << k;
  }
}

// The router's cache key embeds the shard layout (layout id, generation,
// per-shard column epochs): an exact repeat hits, while re-sharding or
// mutating any single shard invalidates by construction.
TEST(ShardRouterTest, CacheKeyTracksShardLayoutAndEpochs) {
  auto source = MakeTable(3000, 21, Box(0, 0, 200, 200));
  auto cache = std::make_shared<cache::QueryResultCache>();

  EngineOptions opts;
  opts.num_threads = 1;
  opts.cache.budget_bytes = 4ull << 20;
  opts.cache.instance = cache;

  ShardingOptions so;
  so.num_shards = 4;
  auto sharded = ShardedTable::Create(*source, so);
  ASSERT_TRUE(sharded.ok());
  ShardRouter router(*sharded, opts);

  const Box q(20, 20, 150, 140);
  auto cold = router.SelectInBox(q);
  ASSERT_TRUE(cold.ok());
  const uint64_t h0 = cache->Stats().tier[0].hits;
  auto warm = router.SelectInBox(q);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(cache->Stats().tier[0].hits, h0 + 1);
  EXPECT_EQ(warm->row_ids, cold->row_ids);
  // The replay is visible in the profile as a cache.hit span.
  ASSERT_FALSE(warm->profile.operators().empty());
  EXPECT_EQ(warm->profile.operators()[0].name, "cache.hit");

  // Re-shard: a different layout (even over identical data) must miss.
  ShardingOptions so2;
  so2.num_shards = 8;
  auto resharded = ShardedTable::Create(*source, so2);
  ASSERT_TRUE(resharded.ok());
  ShardRouter router2(*resharded, opts);
  const uint64_t h1 = cache->Stats().tier[0].hits;
  auto miss = router2.SelectInBox(q);
  ASSERT_TRUE(miss.ok());
  EXPECT_EQ(cache->Stats().tier[0].hits, h1);
  EXPECT_EQ(miss->row_ids, cold->row_ids);

  // Mutating one shard's x column (epoch bump, identical bytes) must
  // invalidate every cached selection of the first router.
  (void)(*sharded)->shard(2).table->GetColumn("x").value()->BeginRawUpdate();
  const uint64_t h2 = cache->Stats().tier[0].hits;
  auto after = router.SelectInBox(q);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(cache->Stats().tier[0].hits, h2);
  EXPECT_EQ(after->row_ids, cold->row_ids);

  // Aggregates: tier (c) hit on repeat, invalidated by an epoch bump of
  // the aggregated column in any one shard.
  auto v1 = router.Aggregate(Geometry(q), 0, {}, "z", AggKind::kSum);
  ASSERT_TRUE(v1.ok());
  const uint64_t a0 = cache->Stats().tier[2].hits;
  auto v2 = router.Aggregate(Geometry(q), 0, {}, "z", AggKind::kSum);
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(cache->Stats().tier[2].hits, a0 + 1);
  EXPECT_EQ(*v1, *v2);
  (void)(*sharded)->shard(0).table->GetColumn("z").value()->BeginRawUpdate();
  const uint64_t a1 = cache->Stats().tier[2].hits;
  auto v3 = router.Aggregate(Geometry(q), 0, {}, "z", AggKind::kSum);
  ASSERT_TRUE(v3.ok());
  EXPECT_EQ(cache->Stats().tier[2].hits, a1);
  EXPECT_EQ(*v1, *v3);
}

// Appending rows to the LAST shard (bases stay valid) is the supported
// in-place growth path: the appended point is immediately visible and
// previously cached selections are not replayed.
TEST(ShardRouterTest, AppendToLastShardInvalidatesAndIsVisible) {
  auto source = MakeTable(2000, 33, Box(0, 0, 100, 100));
  auto cache = std::make_shared<cache::QueryResultCache>();
  EngineOptions opts;
  opts.num_threads = 1;
  opts.cache.budget_bytes = 4ull << 20;
  opts.cache.instance = cache;

  ShardingOptions so;
  so.num_shards = 3;
  auto sharded = ShardedTable::Create(*source, so);
  ASSERT_TRUE(sharded.ok());
  ShardRouter router(*sharded, opts);

  ShardSlice& last = (*sharded)->shards().back();
  // A point inside the last shard's bbox, so its (fixed) pruning bounds
  // still admit it.
  const double px = (last.bbox.min_x + last.bbox.max_x) / 2;
  const double py = (last.bbox.min_y + last.bbox.max_y) / 2;
  const Box q(px - 1, py - 1, px + 1, py + 1);

  auto before = router.SelectInBox(q);
  ASSERT_TRUE(before.ok());
  auto cached = router.SelectInBox(q);  // populate + prove tier (a)
  ASSERT_TRUE(cached.ok());
  EXPECT_EQ(cache->Stats().tier[0].hits, 1u);

  for (const ColumnPtr& col : last.table->columns()) {
    if (col->name() == "x") {
      double v = px;
      col->AppendRaw(&v, 1);
    } else if (col->name() == "y") {
      double v = py;
      col->AppendRaw(&v, 1);
    } else if (col->name() == "z") {
      double v = 1.0;
      col->AppendRaw(&v, 1);
    } else {
      uint8_t v = 2;
      col->AppendRaw(&v, 1);
    }
  }

  auto after = router.SelectInBox(q);
  ASSERT_TRUE(after.ok());
  // No stale replay, and exactly the appended row joined the result.
  EXPECT_EQ(cache->Stats().tier[0].hits, 1u);
  EXPECT_EQ(after->row_ids.size(), before->row_ids.size() + 1);
  const uint64_t appended_global =
      last.base + last.table->num_rows() - 1;
  EXPECT_TRUE(std::find(after->row_ids.begin(), after->row_ids.end(),
                        appended_global) != after->row_ids.end());
}

TEST(ShardRouterTest, PruningCountersAndSpans) {
  auto source = MakeTable(4000, 17, Box(0, 0, 400, 400));
  ShardingOptions so;
  so.num_shards = 8;
  auto sharded = ShardedTable::Create(*source, so);
  ASSERT_TRUE(sharded.ok());
  ShardRouter router(*sharded);

  auto& reg = telemetry::MetricsRegistry::Global();
  const uint64_t scanned0 = reg.GetCounter("geocol_shards_scanned_total").Value();
  const uint64_t pruned0 = reg.GetCounter("geocol_shards_pruned_total").Value();

  // A small viewport in one corner cannot touch all 8 Hilbert shards.
  auto sel = router.SelectInBox(Box(0, 0, 30, 30));
  ASSERT_TRUE(sel.ok());
  const uint64_t scanned =
      reg.GetCounter("geocol_shards_scanned_total").Value() - scanned0;
  const uint64_t pruned =
      reg.GetCounter("geocol_shards_pruned_total").Value() - pruned0;
  EXPECT_EQ(scanned + pruned, 8u);
  EXPECT_GE(pruned, 1u) << "corner viewport should prune some shards";

  // Span tree: one shard.route root carrying the counts, one shard.scan
  // child per scanned shard.
  int route_spans = 0;
  uint64_t scan_spans = 0;
  for (const auto& op : sel->profile.operators()) {
    if (op.name == "shard.route") {
      ++route_spans;
      bool have_total = false;
      for (const auto& [k, v] : op.attrs) {
        if (k == "shards_total") {
          have_total = true;
          EXPECT_EQ(v, "8");
        }
        if (k == "shards_scanned") {
          EXPECT_EQ(v, std::to_string(scanned));
        }
        if (k == "shards_pruned") {
          EXPECT_EQ(v, std::to_string(pruned));
        }
      }
      EXPECT_TRUE(have_total);
    }
    if (op.name == "shard.scan") ++scan_spans;
  }
  EXPECT_EQ(route_spans, 1);
  EXPECT_EQ(scan_spans, scanned);

  // Full-extent query scans everything.
  auto all = router.SelectInBox(Box(0, 0, 400, 400));
  ASSERT_TRUE(all.ok());
  const uint64_t scanned_all =
      reg.GetCounter("geocol_shards_scanned_total").Value() - scanned0 -
      scanned;
  EXPECT_EQ(scanned_all, 8u);
  EXPECT_EQ(all->row_ids.size(), 4000u);
}

TEST(ShardRouterTest, ExplainAnalyzeShowsShardFooter) {
  auto source = MakeTable(3000, 27, Box(0, 0, 300, 300));
  ShardingOptions so;
  so.num_shards = 6;
  auto sharded = ShardedTable::Create(*source, so);
  ASSERT_TRUE(sharded.ok());
  (*sharded)->set_name("pc");

  Catalog catalog;
  ASSERT_TRUE(catalog.AddShardedPointCloud("pc", *sharded).ok());
  sql::Session session(&catalog);

  auto rs = session.Execute(
      "EXPLAIN ANALYZE SELECT COUNT(*) FROM pc WHERE "
      "ST_Within(pt, 'BOX(10 10, 60 60)')");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  std::string all;
  for (const auto& row : rs->rows) {
    for (const auto& v : row) all += v.ToString() + "\n";
  }
  EXPECT_NE(all.find("sharded point cloud (6 Hilbert shards"),
            std::string::npos)
      << all;
  EXPECT_NE(all.find("shard.route"), std::string::npos) << all;
  EXPECT_NE(all.find("shards: scanned "), std::string::npos) << all;
  EXPECT_NE(all.find(" pruned)"), std::string::npos) << all;

  // Plain EXPLAIN mentions the scatter-gather step without executing.
  auto ex = session.Execute("EXPLAIN SELECT COUNT(*) FROM pc");
  ASSERT_TRUE(ex.ok());
  std::string plan;
  for (const auto& row : ex->rows) {
    for (const auto& v : row) plan += v.ToString() + "\n";
  }
  EXPECT_NE(plan.find("bbox-prune shards"), std::string::npos) << plan;

  // NEAR on a sharded table is rejected as unsupported, not misexecuted.
  Catalog with_layer;
  ASSERT_TRUE(with_layer.AddShardedPointCloud("pc", *sharded).ok());
  auto layer = std::make_shared<VectorLayer>("roads");
  VectorFeature f;
  f.id = 1;
  f.feature_class = 12210;
  f.geometry = Geometry(Box(0, 0, 10, 10));
  layer->Add(std::move(f));
  ASSERT_TRUE(with_layer.AddLayer(layer).ok());
  sql::Session s2(&with_layer);
  auto near = s2.Execute("SELECT COUNT(*) FROM pc WHERE NEAR(roads, 12210, 5)");
  EXPECT_FALSE(near.ok());
  EXPECT_EQ(near.status().code(), StatusCode::kUnsupported);
}

TEST(ShardRouterTest, SqlProjectionAndOrderByOverShards) {
  auto source = MakeTable(2500, 41, Box(0, 0, 250, 250));
  ShardingOptions so;
  so.num_shards = 5;
  auto sharded = ShardedTable::Create(*source, so);
  ASSERT_TRUE(sharded.ok());
  (*sharded)->set_name("pc");

  // Oracle: flat engine over the K = 1 sorted table.
  ShardingOptions one;
  one.num_shards = 1;
  auto sorted = ShardedTable::Create(*source, one);
  ASSERT_TRUE(sorted.ok());

  Catalog sharded_cat, flat_cat;
  ASSERT_TRUE(sharded_cat.AddShardedPointCloud("pc", *sharded).ok());
  ASSERT_TRUE(
      flat_cat.AddPointCloud("pc", (*sorted)->shard(0).table).ok());
  sql::Session a(&sharded_cat), b(&flat_cat);

  const char* queries[] = {
      "SELECT x, y, z FROM pc WHERE ST_Within(pt, 'BOX(30 30, 170 150)') "
      "ORDER BY z DESC LIMIT 40",
      "SELECT AVG(z), MIN(z), MAX(z), COUNT(*) FROM pc WHERE "
      "classification BETWEEN 2 AND 7",
      "SELECT SUM(z) FROM pc",
  };
  for (const char* q : queries) {
    SCOPED_TRACE(q);
    auto ra = a.Execute(q);
    auto rb = b.Execute(q);
    ASSERT_TRUE(ra.ok()) << ra.status().ToString();
    ASSERT_TRUE(rb.ok()) << rb.status().ToString();
    EXPECT_EQ(ra->columns, rb->columns);
    ASSERT_EQ(ra->rows.size(), rb->rows.size());
    for (size_t i = 0; i < ra->rows.size(); ++i) {
      ASSERT_EQ(ra->rows[i].size(), rb->rows[i].size());
      for (size_t c = 0; c < ra->rows[i].size(); ++c) {
        EXPECT_TRUE(ra->rows[i][c] == rb->rows[i][c])
            << "row " << i << " col " << c << ": "
            << ra->rows[i][c].ToString() << " vs "
            << rb->rows[i][c].ToString();
      }
    }
  }
}

}  // namespace
}  // namespace geocol
