#include "columns/compression.h"

#include <cstring>

#include "columns/column_file.h"
#include "columns/paged_column.h"
#include "util/binary_io.h"
#include "util/bitpack.h"
#include "util/crc32c.h"
#include "util/tempdir.h"

namespace geocol {

namespace {

// GCC1 files predate the durability layer and carry no checksum; GCC2
// files end in a whole-file CRC32C footer. Both decode identically.
constexpr char kMagicV1[4] = {'G', 'C', 'C', '1'};
constexpr char kMagicV2[4] = {'G', 'C', 'C', '2'};

// Integer view of a column value (floats go through their bit patterns so
// every codec round-trips exactly).
template <typename T>
int64_t ToBits(T v) {
  if constexpr (std::is_same_v<T, float>) {
    uint32_t bits;
    std::memcpy(&bits, &v, 4);
    return static_cast<int64_t>(bits);
  } else if constexpr (std::is_same_v<T, double>) {
    uint64_t bits;
    std::memcpy(&bits, &v, 8);
    return static_cast<int64_t>(bits);
  } else {
    return static_cast<int64_t>(v);
  }
}

template <typename T>
T FromBits(int64_t v) {
  if constexpr (std::is_same_v<T, float>) {
    uint32_t bits = static_cast<uint32_t>(v);
    float f;
    std::memcpy(&f, &bits, 4);
    return f;
  } else if constexpr (std::is_same_v<T, double>) {
    uint64_t bits = static_cast<uint64_t>(v);
    double d;
    std::memcpy(&d, &bits, 8);
    return d;
  } else {
    return static_cast<T>(v);
  }
}

template <typename T>
void Append64(std::vector<uint8_t>* out, T v) {
  const auto* p = reinterpret_cast<const uint8_t*>(&v);
  out->insert(out->end(), p, p + sizeof(T));
}

template <typename T>
bool Take64(const uint8_t* in, size_t size, size_t* pos, T* v) {
  if (*pos + sizeof(T) > size) return false;
  std::memcpy(v, in + *pos, sizeof(T));
  *pos += sizeof(T);
  return true;
}

template <typename T>
bool Take64(const std::vector<uint8_t>& in, size_t* pos, T* v) {
  return Take64(in.data(), in.size(), pos, v);
}

// ---- size estimators (cheap, no materialisation) -----------------------

template <typename T>
uint64_t RleRuns(std::span<const T> values) {
  if (values.empty()) return 0;
  uint64_t runs = 1;
  for (size_t i = 1; i < values.size(); ++i) {
    runs += values[i] != values[i - 1];
  }
  return runs;
}

template <typename T>
uint32_t ForBits(std::span<const T> values, int64_t* out_min) {
  int64_t mn = ToBits(values[0]), mx = mn;
  for (T v : values) {
    int64_t b = ToBits(v);
    mn = std::min(mn, b);
    mx = std::max(mx, b);
  }
  *out_min = mn;
  return BitsFor(static_cast<uint64_t>(mx - mn));
}

// Bit width of the zigzag deltas, excluding the first value (which is
// stored raw — otherwise the jump from 0 would dominate the width).
template <typename T>
uint32_t DeltaBits(std::span<const T> values) {
  uint64_t max_zz = 0;
  int64_t prev = values.empty() ? 0 : ToBits(values[0]);
  for (size_t i = 1; i < values.size(); ++i) {
    int64_t b = ToBits(values[i]);
    max_zz = std::max(max_zz, ZigZagEncode(b - prev));
    prev = b;
  }
  return BitsFor(max_zz);
}

// ---- encoders -----------------------------------------------------------

template <typename T>
void EncodeRle(std::span<const T> values, std::vector<uint8_t>* out) {
  uint64_t runs = RleRuns(values);
  Append64(out, runs);
  size_t i = 0;
  while (i < values.size()) {
    size_t j = i + 1;
    while (j < values.size() && values[j] == values[i] &&
           j - i < 0xFFFFFFFFull) {
      ++j;
    }
    Append64(out, values[i]);
    Append64(out, static_cast<uint32_t>(j - i));
    i = j;
  }
}

template <typename T>
Status DecodeRle(const uint8_t* in, size_t size, uint64_t count, T* out) {
  size_t pos = 0;
  uint64_t runs = 0;
  if (!Take64(in, size, &pos, &runs)) {
    return Status::Corruption("RLE: truncated");
  }
  uint64_t total = 0;
  for (uint64_t r = 0; r < runs; ++r) {
    T value;
    uint32_t len = 0;
    if (!Take64(in, size, &pos, &value) || !Take64(in, size, &pos, &len)) {
      return Status::Corruption("RLE: truncated run");
    }
    if (len > count - total) return Status::Corruption("RLE: run overflow");
    std::fill(out + total, out + total + len, value);
    total += len;
  }
  if (total != count) return Status::Corruption("RLE: wrong total");
  return Status::OK();
}

template <typename T>
void EncodeFor(std::span<const T> values, std::vector<uint8_t>* out) {
  int64_t mn = 0;
  uint32_t bits = ForBits(values, &mn);
  Append64(out, mn);
  out->push_back(static_cast<uint8_t>(bits));
  BitWriter bw(out);
  for (T v : values) {
    bw.Write(static_cast<uint64_t>(ToBits(v) - mn), bits);
  }
  bw.FlushByte();
}

template <typename T>
Status DecodeFor(const uint8_t* in, size_t size, uint64_t count, T* out) {
  size_t pos = 0;
  int64_t mn = 0;
  if (!Take64(in, size, &pos, &mn)) {
    return Status::Corruption("FOR: truncated header");
  }
  if (pos >= size) return Status::Corruption("FOR: truncated header");
  uint8_t bits = in[pos++];
  BitReader br(in + pos, size - pos);
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t packed = 0;
    if (bits > 0 && !br.Read(&packed, bits)) {
      return Status::Corruption("FOR: truncated payload");
    }
    out[i] = FromBits<T>(mn + static_cast<int64_t>(packed));
  }
  return Status::OK();
}

template <typename T>
void EncodeDelta(std::span<const T> values, std::vector<uint8_t>* out) {
  int64_t first = values.empty() ? 0 : ToBits(values[0]);
  Append64(out, first);
  uint32_t bits = DeltaBits(values);
  out->push_back(static_cast<uint8_t>(bits));
  BitWriter bw(out);
  int64_t prev = first;
  for (size_t i = 1; i < values.size(); ++i) {
    int64_t b = ToBits(values[i]);
    bw.Write(ZigZagEncode(b - prev), bits);
    prev = b;
  }
  bw.FlushByte();
}

template <typename T>
Status DecodeDelta(const uint8_t* in, size_t size, uint64_t count, T* out) {
  size_t pos = 0;
  int64_t first = 0;
  if (!Take64(in, size, &pos, &first)) {
    return Status::Corruption("DELTA: truncated header");
  }
  if (pos >= size && count > 1) {
    return Status::Corruption("DELTA: truncated header");
  }
  uint8_t bits = pos < size ? in[pos++] : 0;
  if (count == 0) return Status::OK();
  out[0] = FromBits<T>(first);
  BitReader br(in + pos, size - pos);
  int64_t prev = first;
  for (uint64_t i = 1; i < count; ++i) {
    uint64_t z = 0;
    if (bits > 0 && !br.Read(&z, bits)) {
      return Status::Corruption("DELTA: truncated payload");
    }
    prev += ZigZagDecode(z);
    out[i] = FromBits<T>(prev);
  }
  return Status::OK();
}

// Estimated encoded bytes per codec; kRaw is the fallback ceiling.
template <typename T>
uint64_t EstimateBytes(std::span<const T> values, ColumnCodec codec) {
  const uint64_t n = values.size();
  switch (codec) {
    case ColumnCodec::kRaw:
      return n * sizeof(T);
    case ColumnCodec::kRle:
      return 8 + RleRuns(values) * (sizeof(T) + 4);
    case ColumnCodec::kFor: {
      int64_t mn;
      uint32_t bits = ForBits(values, &mn);
      return 9 + (n * bits + 7) / 8;
    }
    case ColumnCodec::kDelta:
      return 9 + ((n > 0 ? n - 1 : 0) * DeltaBits(values) + 7) / 8;
    case ColumnCodec::kAuto:
      break;
  }
  return ~uint64_t{0};
}

}  // namespace

const char* ColumnCodecName(ColumnCodec codec) {
  switch (codec) {
    case ColumnCodec::kRaw: return "raw";
    case ColumnCodec::kRle: return "rle";
    case ColumnCodec::kFor: return "for";
    case ColumnCodec::kDelta: return "delta";
    case ColumnCodec::kAuto: return "auto";
  }
  return "?";
}

std::vector<uint8_t> CompressChunkPayload(DataType type, const void* values,
                                          uint64_t count, ColumnCodec codec,
                                          ColumnCodec* chosen) {
  std::vector<uint8_t> out;
  ColumnCodec picked = codec;
  DispatchDataType(type, [&]<typename T>() {
    std::span<const T> vals{static_cast<const T*>(values),
                            static_cast<size_t>(count)};
    if (codec == ColumnCodec::kAuto) {
      picked = ColumnCodec::kRaw;
      uint64_t best = EstimateBytes(vals, ColumnCodec::kRaw);
      if (!vals.empty()) {
        for (ColumnCodec c : {ColumnCodec::kRle, ColumnCodec::kFor,
                              ColumnCodec::kDelta}) {
          uint64_t est = EstimateBytes(vals, c);
          if (est < best) {
            best = est;
            picked = c;
          }
        }
      }
    }
    if (picked == ColumnCodec::kFor && vals.empty()) {
      picked = ColumnCodec::kRaw;
    }
    switch (picked) {
      case ColumnCodec::kRaw: {
        const auto* p = static_cast<const uint8_t*>(values);
        out.insert(out.end(), p, p + count * sizeof(T));
        break;
      }
      case ColumnCodec::kRle: EncodeRle(vals, &out); break;
      case ColumnCodec::kFor: EncodeFor(vals, &out); break;
      case ColumnCodec::kDelta: EncodeDelta(vals, &out); break;
      case ColumnCodec::kAuto: break;  // unreachable
    }
  });
  if (chosen != nullptr) *chosen = picked;
  return out;
}

Status DecompressChunkPayload(DataType type, ColumnCodec codec,
                              const uint8_t* data, size_t size, uint64_t count,
                              void* out) {
  return DispatchDataType(type, [&]<typename T>() -> Status {
    T* typed = static_cast<T*>(out);
    switch (codec) {
      case ColumnCodec::kRaw: {
        uint64_t bytes = count * sizeof(T);
        if (bytes > size) return Status::Corruption("raw payload truncated");
        std::memcpy(typed, data, bytes);
        return Status::OK();
      }
      case ColumnCodec::kRle: return DecodeRle<T>(data, size, count, typed);
      case ColumnCodec::kFor: return DecodeFor<T>(data, size, count, typed);
      case ColumnCodec::kDelta: return DecodeDelta<T>(data, size, count, typed);
      case ColumnCodec::kAuto: break;
    }
    return Status::Corruption("bad codec");
  });
}

Result<std::vector<uint8_t>> CompressColumn(const Column& column,
                                            ColumnCodec codec,
                                            CompressionStats* stats) {
  if (column.paged()) {
    return Status::InvalidArgument(
        "CompressColumn: paged columns are read-only (reopen the table "
        "resident to recompress)");
  }
  std::vector<uint8_t> out;
  out.insert(out.end(), kMagicV2, kMagicV2 + 4);
  out.push_back(static_cast<uint8_t>(column.type()));
  size_t codec_at = out.size();
  out.push_back(0);  // patched below
  uint64_t count = column.size();
  Append64(&out, count);

  ColumnCodec chosen = codec;
  std::vector<uint8_t> payload = CompressChunkPayload(
      column.type(), column.raw_data(), count, codec, &chosen);
  out.insert(out.end(), payload.begin(), payload.end());
  out[codec_at] = static_cast<uint8_t>(chosen);
  if (stats != nullptr) {
    stats->codec = chosen;
    stats->uncompressed_bytes = column.raw_size_bytes();
    stats->compressed_bytes = out.size();
  }
  return out;
}

Result<ColumnPtr> DecompressColumn(const std::vector<uint8_t>& data,
                                   const std::string& name) {
  if (data.size() < 4 + 1 + 1 + 8 ||
      (std::memcmp(data.data(), kMagicV2, 4) != 0 &&
       std::memcmp(data.data(), kMagicV1, 4) != 0)) {
    return Status::Corruption("bad compressed column header");
  }
  size_t pos = 4;
  uint8_t type_byte = data[pos++];
  uint8_t codec_byte = data[pos++];
  if (type_byte >= kNumDataTypes || codec_byte > 3) {
    return Status::Corruption("bad compressed column type/codec");
  }
  uint64_t count = 0;
  if (!Take64(data, &pos, &count)) {
    return Status::Corruption("bad compressed column count");
  }
  if (count > (uint64_t{1} << 40)) {
    return Status::Corruption("implausible compressed column count");
  }
  DataType type = static_cast<DataType>(type_byte);
  ColumnCodec codec = static_cast<ColumnCodec>(codec_byte);
  auto col = std::make_shared<Column>(name, type);
  std::vector<uint8_t> decoded(count * DataTypeSize(type));
  GEOCOL_RETURN_NOT_OK(DecompressChunkPayload(
      type, codec, data.data() + pos, data.size() - pos, count,
      decoded.data()));
  col->AppendRaw(decoded.data(), count);
  return col;
}

Status WriteCompressedColumnFile(const Column& column, const std::string& path,
                                 ColumnCodec codec, CompressionStats* stats) {
  GEOCOL_ASSIGN_OR_RETURN(std::vector<uint8_t> data,
                          CompressColumn(column, codec, stats));
  // Whole-file CRC32C footer over the encoded buffer, then an atomic
  // publish — a torn or bit-rotted .gcz is detected before decoding.
  uint32_t crc = Crc32c(data.data(), data.size());
  const uint8_t* p = reinterpret_cast<const uint8_t*>(&crc);
  data.insert(data.end(), p, p + sizeof(crc));
  if (stats != nullptr) stats->compressed_bytes = data.size();
  return WriteFileAtomic(path, data.data(), data.size());
}

Result<ColumnPtr> ReadCompressedColumnFile(const std::string& path,
                                           const std::string& name) {
  std::vector<uint8_t> data;
  GEOCOL_RETURN_NOT_OK(ReadFileBytes(path, &data));
  if (data.size() < 4) {
    return Status::Corruption("compressed column file too small: " + path);
  }
  // Chunked-compressed (GPC1) files carry per-chunk CRCs instead of a
  // whole-file footer; this is their resident open.
  if (IsChunkedCompressedBuffer(data.data(), data.size())) {
    return DecompressChunkedColumn(data, name);
  }
  // Legacy GCC1 files were written without a footer and decode as-is.
  if (std::memcmp(data.data(), kMagicV1, 4) != 0) {
    if (std::memcmp(data.data(), kMagicV2, 4) != 0) {
      return Status::Corruption("bad compressed column magic: " + path);
    }
    if (data.size() < 8) {
      return Status::Corruption("compressed column file too small: " + path);
    }
    uint32_t stored = 0;
    std::memcpy(&stored, data.data() + data.size() - 4, 4);
    data.resize(data.size() - 4);
    uint32_t computed = Crc32c(data.data(), data.size());
    if (stored != computed) {
      return Status::Corruption("compressed column crc mismatch: " + path);
    }
  }
  return DecompressColumn(data, name);
}

Status WriteCompressedTableDir(const FlatTable& table, const std::string& dir,
                               uint64_t* total_bytes) {
  GEOCOL_RETURN_NOT_OK(table.Validate());
  GEOCOL_RETURN_NOT_OK(MakeDir(dir));
  // Same generation protocol as WriteTableDir: new generation under fresh
  // names, manifest swap as the commit point, old generation untouched.
  uint64_t gen = 1;
  if (PathExists(dir + "/schema.gct")) {
    auto old = ReadTableManifest(dir);
    if (old.ok()) gen = old->generation + 1;
  }
  TableManifest m;
  m.table_name = table.name();
  m.generation = gen;
  uint64_t total = 0;
  for (const auto& col : table.columns()) {
    std::string fname = col->name() + ".g" + std::to_string(gen) + ".gcz";
    CompressionStats stats;
    GEOCOL_RETURN_NOT_OK(WriteCompressedColumnFile(
        *col, dir + "/" + fname, ColumnCodec::kAuto, &stats));
    total += stats.compressed_bytes;
    m.columns.push_back({col->name(), col->type(), fname});
  }
  GEOCOL_RETURN_NOT_OK(WriteTableManifest(dir, m));
  CleanStaleTableFiles(dir, m);
  if (total_bytes != nullptr) *total_bytes = total;
  return Status::OK();
}

Result<FlatTable> ReadCompressedTableDir(const std::string& dir) {
  GEOCOL_ASSIGN_OR_RETURN(TableManifest m, ReadTableManifest(dir));
  FlatTable table(m.table_name);
  for (const auto& mc : m.columns) {
    const std::string fname =
        mc.filename.empty() ? mc.name + ".gcz" : mc.filename;
    GEOCOL_ASSIGN_OR_RETURN(
        ColumnPtr col, ReadCompressedColumnFile(dir + "/" + fname, mc.name));
    if (col->type() != mc.type) {
      return Status::Corruption("manifest/file type mismatch for " + mc.name);
    }
    GEOCOL_RETURN_NOT_OK(table.AddColumn(std::move(col)));
  }
  GEOCOL_RETURN_NOT_OK(table.Validate());
  return table;
}

}  // namespace geocol
