// FdCache: LRU eviction at capacity, pinned handles surviving eviction
// and invalidation, and positioned reads with exact-byte semantics.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "util/binary_io.h"
#include "util/fd_cache.h"
#include "util/tempdir.h"

namespace geocol {
namespace {

std::string MakeFile(const TempDir& dir, const std::string& name,
                     const std::string& content) {
  std::string path = dir.File(name);
  Status st = WriteFileAtomic(path, content.data(), content.size());
  EXPECT_TRUE(st.ok()) << st.ToString();
  return path;
}

TEST(FdCacheTest, HitRefreshesAndCountsOnce) {
  TempDir dir("fdcache");
  std::string path = MakeFile(dir, "a.bin", "hello");
  FdCache cache(4);
  auto h1 = cache.Get(path);
  ASSERT_TRUE(h1.ok()) << h1.status().ToString();
  auto h2 = cache.Get(path);
  ASSERT_TRUE(h2.ok());
  EXPECT_EQ(h1->get(), h2->get());  // same cached handle
  FdCache::Stats s = cache.GetStats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.open_files, 1u);
  EXPECT_EQ((*h1)->size(), 5u);
}

TEST(FdCacheTest, CapacityBoundsOpenDescriptors) {
  TempDir dir("fdcache");
  FdCache cache(2);
  std::vector<std::string> paths;
  for (int i = 0; i < 5; ++i) {
    paths.push_back(
        MakeFile(dir, "f" + std::to_string(i), std::string(8, 'a' + i)));
  }
  for (const auto& p : paths) {
    ASSERT_TRUE(cache.Get(p).ok());
    EXPECT_LE(cache.GetStats().open_files, 2u);
  }
  FdCache::Stats s = cache.GetStats();
  EXPECT_EQ(s.misses, 5u);
  EXPECT_EQ(s.evictions, 3u);
  EXPECT_EQ(s.open_files, 2u);
  EXPECT_EQ(s.capacity, 2u);
}

TEST(FdCacheTest, LruKeepsTheRecentlyTouchedEntry) {
  TempDir dir("fdcache");
  FdCache cache(2);
  std::string a = MakeFile(dir, "a", "aa"), b = MakeFile(dir, "b", "bb"),
              c = MakeFile(dir, "c", "cc");
  ASSERT_TRUE(cache.Get(a).ok());
  ASSERT_TRUE(cache.Get(b).ok());
  ASSERT_TRUE(cache.Get(a).ok());  // refresh a; b is now LRU
  ASSERT_TRUE(cache.Get(c).ok());  // evicts b
  uint64_t hits_before = cache.GetStats().hits;
  ASSERT_TRUE(cache.Get(a).ok());
  EXPECT_EQ(cache.GetStats().hits, hits_before + 1);  // a stayed cached
  ASSERT_TRUE(cache.Get(b).ok());
  EXPECT_EQ(cache.GetStats().misses, 4u);  // b had to reopen
}

TEST(FdCacheTest, EvictedHandleStaysReadableThroughItsPin) {
  TempDir dir("fdcache");
  FdCache cache(1);
  std::string a = MakeFile(dir, "a", "first-file-bytes");
  auto pinned = cache.Get(a);
  ASSERT_TRUE(pinned.ok());
  // Evict `a` by opening another file through the capacity-1 cache.
  std::string b = MakeFile(dir, "b", "second");
  ASSERT_TRUE(cache.Get(b).ok());
  EXPECT_EQ(cache.GetStats().open_files, 1u);
  // The pin still reads: eviction only dropped the cache's reference.
  char buf[5] = {0};
  Status st = (*pinned)->ReadAt(6, buf, 4);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_EQ(std::string(buf, 4), "file");
}

TEST(FdCacheTest, InvalidateObservesTheReplacedFile) {
  TempDir dir("fdcache");
  FdCache cache(4);
  std::string path = MakeFile(dir, "gen.bin", "old-generation");
  auto old_handle = cache.Get(path);
  ASSERT_TRUE(old_handle.ok());
  // Replace the file (atomic rename, new inode), as a new table
  // generation does, then invalidate.
  std::string next = "new-generation";
  ASSERT_TRUE(WriteFileAtomic(path, next.data(), next.size()).ok());
  cache.Invalidate(path);
  auto fresh = cache.Get(path);
  ASSERT_TRUE(fresh.ok());
  char buf[3] = {0};
  ASSERT_TRUE((*fresh)->ReadAt(0, buf, 3).ok());
  EXPECT_EQ(std::string(buf, 3), "new");
  // The pinned pre-invalidation handle still reads the old inode.
  ASSERT_TRUE((*old_handle)->ReadAt(0, buf, 3).ok());
  EXPECT_EQ(std::string(buf, 3), "old");
}

TEST(FdCacheTest, ReadPastEndIsCorruptionNotGarbage) {
  TempDir dir("fdcache");
  FdCache cache(4);
  std::string path = MakeFile(dir, "tiny", "12345678");
  auto h = cache.Get(path);
  ASSERT_TRUE(h.ok());
  char buf[16];
  Status st = (*h)->ReadAt(4, buf, 16);  // only 4 bytes remain
  EXPECT_FALSE(st.ok());
}

TEST(FdCacheTest, MissingFileFailsCleanly) {
  TempDir dir("fdcache");
  FdCache cache(4);
  auto h = cache.Get(dir.File("does-not-exist"));
  EXPECT_FALSE(h.ok());
  EXPECT_EQ(cache.GetStats().open_files, 0u);
}

}  // namespace
}  // namespace geocol
