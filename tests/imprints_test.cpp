// Column imprints tests: construction, dictionary compression invariants,
// query masks, and — as a parameterised property suite — filter soundness
// (no false negatives) across data distributions, orderings, types and bin
// counts.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/imprints.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace geocol {
namespace {

// ---------------- construction & structure ----------------

TEST(ImprintsBuildTest, EmptyColumnRejected) {
  Column col("c", DataType::kFloat64);
  EXPECT_FALSE(ImprintsIndex::Build(col).ok());
}

TEST(ImprintsBuildTest, ValuesPerLineByType) {
  auto dcol = Column::FromVector<double>("d", std::vector<double>(100, 1.0));
  auto ix = ImprintsIndex::Build(*dcol);
  ASSERT_TRUE(ix.ok());
  EXPECT_EQ(ix->values_per_line(), 8u);  // 64B / 8B
  EXPECT_EQ(ix->num_lines(), 13u);       // ceil(100/8)

  auto bcol = Column::FromVector<uint8_t>("b", std::vector<uint8_t>(100, 1));
  auto ix2 = ImprintsIndex::Build(*bcol);
  ASSERT_TRUE(ix2.ok());
  EXPECT_EQ(ix2->values_per_line(), 64u);
  EXPECT_EQ(ix2->num_lines(), 2u);
}

TEST(ImprintsBuildTest, IncompatibleCachelineRejected) {
  auto col = Column::FromVector<double>("d", {1, 2, 3});
  ImprintsOptions opts;
  opts.cacheline_bytes = 4;  // smaller than a double
  EXPECT_FALSE(ImprintsIndex::Build(*col, opts).ok());
}

TEST(ImprintsBuildTest, DictionaryCountsCoverAllLines) {
  Rng rng(3);
  std::vector<double> vals(10000);
  for (auto& v : vals) v = rng.UniformDouble(0, 100);
  auto col = Column::FromVector<double>("c", vals);
  auto ix = ImprintsIndex::Build(*col);
  ASSERT_TRUE(ix.ok());
  uint64_t total = 0, vectors = 0;
  for (const auto& e : ix->dictionary()) {
    total += e.count;
    vectors += e.repeat ? 1 : e.count;
  }
  EXPECT_EQ(total, ix->num_lines());
  EXPECT_EQ(vectors, ix->vectors().size());
}

TEST(ImprintsBuildTest, ConstantColumnCompressesToOneVector) {
  auto col = Column::FromVector<double>("c", std::vector<double>(8192, 7.0));
  auto ix = ImprintsIndex::Build(*col);
  ASSERT_TRUE(ix.ok());
  EXPECT_EQ(ix->vectors().size(), 1u);
  ASSERT_EQ(ix->dictionary().size(), 1u);
  EXPECT_TRUE(ix->dictionary()[0].repeat);
  EXPECT_EQ(ix->dictionary()[0].count, ix->num_lines());
}

TEST(ImprintsBuildTest, SortedDataCompressesWell) {
  std::vector<double> vals(100000);
  for (size_t i = 0; i < vals.size(); ++i) vals[i] = static_cast<double>(i);
  auto col = Column::FromVector<double>("c", vals);
  auto ix = ImprintsIndex::Build(*col);
  ASSERT_TRUE(ix.ok());
  // Sorted data: long runs of cache lines share a bin -> far fewer stored
  // vectors than lines.
  EXPECT_LT(ix->vectors().size(), ix->num_lines() / 4);
}

TEST(ImprintsBuildTest, ShuffledDataStillBuilds) {
  Rng rng(17);
  std::vector<double> vals(100000);
  for (size_t i = 0; i < vals.size(); ++i) vals[i] = static_cast<double>(i);
  for (size_t i = vals.size() - 1; i > 0; --i) {
    std::swap(vals[i], vals[rng.Uniform(i + 1)]);
  }
  auto col = Column::FromVector<double>("c", vals);
  auto ix = ImprintsIndex::Build(*col);
  ASSERT_TRUE(ix.ok());
  EXPECT_LE(ix->vectors().size(), ix->num_lines());
}

TEST(ImprintsBuildTest, StorageOverheadWithinPaperBand) {
  // Acquisition-like data (smooth drift + noise): the paper reports 5-12%
  // overhead; a 64-bit vector per 64-byte cache line is 12.5% worst case,
  // so compression must bring typical data under that.
  Rng rng(23);
  std::vector<double> vals(200000);
  double drift = 0;
  for (auto& v : vals) {
    drift += rng.NextGaussian() * 0.1;
    v = drift + rng.NextGaussian() * 0.01;
  }
  auto col = Column::FromVector<double>("c", vals);
  auto ix = ImprintsIndex::Build(*col);
  ASSERT_TRUE(ix.ok());
  ImprintsStorage s = ix->Storage(col->raw_size_bytes());
  EXPECT_GT(s.overhead_fraction, 0.0);
  EXPECT_LE(s.overhead_fraction, 0.13);
  EXPECT_EQ(s.total_bytes, s.vector_bytes + s.dict_bytes + s.bounds_bytes);
}

TEST(ImprintsBuildTest, EpochRecorded) {
  auto col = Column::FromVector<double>("c", {1, 2, 3});
  auto ix = ImprintsIndex::Build(*col);
  ASSERT_TRUE(ix.ok());
  EXPECT_EQ(ix->built_epoch(), col->epoch());
  col->Append<double>(4);
  EXPECT_NE(ix->built_epoch(), col->epoch());
}

// ---------------- masks ----------------

TEST(ImprintsMaskTest, QueryMaskCoversRange) {
  std::vector<double> vals;
  for (int i = 0; i < 6400; ++i) vals.push_back(i % 64);
  auto col = Column::FromVector<double>("c", vals);
  ImprintsOptions opts;
  opts.sample_size = 6400;
  auto ix = ImprintsIndex::Build(*col, opts);
  ASSERT_TRUE(ix.ok());
  ImprintMask m = ix->MaskForRange(10, 20);
  EXPECT_NE(m.query, 0u);
  // inner is a subset of query.
  EXPECT_EQ(m.inner & ~m.query, 0u);
  // A wider range has a superset query mask.
  ImprintMask wide = ix->MaskForRange(5, 25);
  EXPECT_EQ(m.query & ~wide.query, 0u);
}

TEST(ImprintsMaskTest, EmptyRangeMatchesNothing) {
  auto col = Column::FromVector<double>("c", {1, 2, 3, 4});
  auto ix = ImprintsIndex::Build(*col);
  ASSERT_TRUE(ix.ok());
  ImprintMask m = ix->MaskForRange(10, 5);
  EXPECT_EQ(m.query, 0u);
  BitVector cand;
  ix->FilterRange(10, 5, &cand);
  EXPECT_EQ(cand.Count(), 0u);
}

TEST(ImprintsMaskTest, FullDomainSelectsAllLines) {
  Rng rng(31);
  std::vector<double> vals(10000);
  for (auto& v : vals) v = rng.UniformDouble(-10, 10);
  auto col = Column::FromVector<double>("c", vals);
  auto ix = ImprintsIndex::Build(*col);
  ASSERT_TRUE(ix.ok());
  BitVector cand, full;
  ix->FilterRange(-1e18, 1e18, &cand, &full);
  EXPECT_EQ(cand.Count(), ix->num_lines());
  // Lines touching only interior bins qualify wholesale; the extreme bins
  // are unbounded so the index cannot prove containment for them.
  EXPECT_GT(full.Count(), 0u);
  EXPECT_LE(full.Count(), cand.Count());
}

TEST(ImprintsMaskTest, LineRows) {
  auto col = Column::FromVector<double>("c", std::vector<double>(20, 1.0));
  auto ix = ImprintsIndex::Build(*col);
  ASSERT_TRUE(ix.ok());
  ASSERT_EQ(ix->values_per_line(), 8u);
  EXPECT_EQ(ix->LineRows(0), (std::pair<uint64_t, uint64_t>{0, 8}));
  EXPECT_EQ(ix->LineRows(2), (std::pair<uint64_t, uint64_t>{16, 20}));  // tail
}

// ---------------- filter runs ----------------

TEST(ImprintsRunsTest, RunsAreCoalescedAndOrdered) {
  Rng rng(41);
  std::vector<double> vals(50000);
  for (auto& v : vals) v = rng.UniformDouble(0, 1000);
  auto col = Column::FromVector<double>("c", vals);
  auto ix = ImprintsIndex::Build(*col);
  ASSERT_TRUE(ix.ok());
  uint64_t prev_end = 0;
  bool first = true;
  bool prev_full = false;
  ix->FilterRangeRuns(100, 200, [&](uint64_t start, uint64_t count, bool full) {
    ASSERT_GT(count, 0u);
    if (!first) {
      // Strictly ordered and never adjacent-with-same-status (else they
      // would have been coalesced).
      ASSERT_GE(start, prev_end);
      if (start == prev_end) ASSERT_NE(full, prev_full);
    }
    first = false;
    prev_end = start + count;
    prev_full = full;
  });
  EXPECT_LE(prev_end, ix->num_lines());
}

// ---------------- property suite: soundness ----------------

struct PropertyParam {
  const char* name;
  int distribution;  // 0 uniform, 1 gaussian, 2 clustered walk, 3 few-distinct
  int ordering;      // 0 as-generated, 1 sorted, 2 shuffled
  uint32_t max_bins;
  DataType type;
};

class ImprintsPropertyTest : public ::testing::TestWithParam<PropertyParam> {};

std::vector<double> MakeData(int distribution, size_t n, Rng* rng) {
  std::vector<double> vals(n);
  switch (distribution) {
    case 0:
      for (auto& v : vals) v = rng->UniformDouble(-500, 500);
      break;
    case 1:
      for (auto& v : vals) v = rng->NextGaussian() * 100;
      break;
    case 2: {
      double walk = 0;
      for (auto& v : vals) {
        walk += rng->NextGaussian();
        v = walk;
      }
      break;
    }
    default:
      for (auto& v : vals) v = static_cast<double>(rng->Uniform(7));
      break;
  }
  return vals;
}

TEST_P(ImprintsPropertyTest, FilterIsSoundAndFullLinesExact) {
  const PropertyParam& p = GetParam();
  Rng rng(0xBEEF ^ p.distribution * 31 ^ p.ordering * 7 ^ p.max_bins);
  const size_t n = 20000;
  std::vector<double> vals = MakeData(p.distribution, n, &rng);
  if (p.ordering == 1) std::sort(vals.begin(), vals.end());
  if (p.ordering == 2) {
    for (size_t i = n - 1; i > 0; --i) {
      std::swap(vals[i], vals[rng.Uniform(i + 1)]);
    }
  }
  auto col = std::make_shared<Column>("c", p.type);
  DispatchDataType(p.type, [&]<typename T>() {
    for (double v : vals) col->Append<T>(static_cast<T>(v));
  });

  ImprintsOptions opts;
  opts.max_bins = p.max_bins;
  auto ix = ImprintsIndex::Build(*col, opts);
  ASSERT_TRUE(ix.ok());

  // Exercise 20 random ranges, including degenerate and out-of-domain.
  for (int q = 0; q < 20; ++q) {
    double a = rng.UniformDouble(-600, 600);
    double b = rng.UniformDouble(-600, 600);
    double lo = std::min(a, b), hi = std::max(a, b);
    if (q == 0) lo = hi;                 // point query
    if (q == 1) { lo = 1e7; hi = 2e7; }  // empty: beyond domain

    BitVector cand, full;
    ix->FilterRange(lo, hi, &cand, &full);

    for (uint64_t line = 0; line < ix->num_lines(); ++line) {
      auto [first, last] = ix->LineRows(line);
      bool any = false, all = true;
      for (uint64_t r = first; r < last; ++r) {
        double v = col->GetDouble(r);
        bool in = v >= lo && v <= hi;
        any |= in;
        all &= in;
      }
      // Soundness: a line holding a match must be a candidate.
      if (any) {
        ASSERT_TRUE(cand.Get(line))
            << "false negative at line " << line << " range [" << lo << ","
            << hi << "]";
      }
      // Full-line flags must be exact (every value matches).
      if (full.Get(line)) {
        ASSERT_TRUE(all) << "bogus full line " << line;
        ASSERT_TRUE(cand.Get(line)) << "full implies candidate";
      }
      (void)all;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ImprintsPropertyTest,
    ::testing::Values(
        PropertyParam{"uniform_asgen_64_f64", 0, 0, 64, DataType::kFloat64},
        PropertyParam{"uniform_sorted_64_f64", 0, 1, 64, DataType::kFloat64},
        PropertyParam{"uniform_shuffled_64_f64", 0, 2, 64, DataType::kFloat64},
        PropertyParam{"gauss_asgen_64_f64", 1, 0, 64, DataType::kFloat64},
        PropertyParam{"gauss_shuffled_32_f64", 1, 2, 32, DataType::kFloat64},
        PropertyParam{"walk_asgen_64_f64", 2, 0, 64, DataType::kFloat64},
        PropertyParam{"walk_sorted_16_f64", 2, 1, 16, DataType::kFloat64},
        PropertyParam{"walk_shuffled_64_f64", 2, 2, 64, DataType::kFloat64},
        PropertyParam{"fewdistinct_asgen_64_f64", 3, 0, 64, DataType::kFloat64},
        PropertyParam{"fewdistinct_shuffled_8_f64", 3, 2, 8, DataType::kFloat64},
        PropertyParam{"uniform_asgen_64_i32", 0, 0, 64, DataType::kInt32},
        PropertyParam{"walk_asgen_64_i32", 2, 0, 64, DataType::kInt32},
        PropertyParam{"uniform_shuffled_64_i16", 0, 2, 64, DataType::kInt16},
        PropertyParam{"fewdistinct_asgen_64_u8", 3, 0, 64, DataType::kUInt8},
        PropertyParam{"gauss_asgen_8_f32", 1, 0, 8, DataType::kFloat32},
        PropertyParam{"uniform_asgen_16_u16", 0, 0, 16, DataType::kUInt16}),
    [](const ::testing::TestParamInfo<PropertyParam>& info) {
      return info.param.name;
    });

// ---------------- parallel build ----------------

// The chunked build stitches per-chunk run-length pieces at the seams; its
// promise is a byte-identical index, so compare the raw vectors and the
// dictionary entry by entry across distributions.
TEST(ImprintsParallelBuildTest, ByteIdenticalToSerialBuild) {
  ThreadPool pool(3);
  Rng rng(91);
  const size_t n = 300000;  // above the parallel-build threshold
  std::vector<std::vector<double>> datasets;
  {
    std::vector<double> walk(n);
    double w = 0;
    for (auto& v : walk) {
      w += rng.NextGaussian();
      v = w;
    }
    datasets.push_back(std::move(walk));
  }
  {
    std::vector<double> uniform(n);
    for (auto& v : uniform) v = rng.UniformDouble(0, 1000);
    datasets.push_back(std::move(uniform));
  }
  {
    // Long constant runs: stresses seam stitching of repeat entries.
    std::vector<double> steps(n);
    for (size_t i = 0; i < n; ++i) steps[i] = static_cast<double>(i / 20000);
    datasets.push_back(std::move(steps));
  }
  for (size_t d = 0; d < datasets.size(); ++d) {
    auto col = Column::FromVector<double>("c", datasets[d]);
    auto serial = ImprintsIndex::Build(*col);
    auto parallel = ImprintsIndex::Build(*col, {}, &pool);
    ASSERT_TRUE(serial.ok());
    ASSERT_TRUE(parallel.ok());
    EXPECT_EQ(parallel->vectors(), serial->vectors()) << "dataset " << d;
    ASSERT_EQ(parallel->dictionary().size(), serial->dictionary().size())
        << "dataset " << d;
    for (size_t i = 0; i < serial->dictionary().size(); ++i) {
      EXPECT_EQ(parallel->dictionary()[i].count, serial->dictionary()[i].count)
          << "dataset " << d << " entry " << i;
      EXPECT_EQ(parallel->dictionary()[i].repeat,
                serial->dictionary()[i].repeat)
          << "dataset " << d << " entry " << i;
    }
    EXPECT_EQ(parallel->num_lines(), serial->num_lines());
    EXPECT_EQ(parallel->num_rows(), serial->num_rows());
    EXPECT_EQ(parallel->built_epoch(), serial->built_epoch());
  }
}

TEST(ImprintsParallelBuildTest, SmallColumnFallsBackToSerial) {
  ThreadPool pool(3);
  auto col = Column::FromVector<double>("c", std::vector<double>(500, 1.0));
  auto serial = ImprintsIndex::Build(*col);
  auto parallel = ImprintsIndex::Build(*col, {}, &pool);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(parallel->vectors(), serial->vectors());
  EXPECT_EQ(parallel->dictionary().size(), serial->dictionary().size());
}

// ---------------- compression effectiveness contrast ----------------

TEST(ImprintsCompressionTest, ClusteredBeatsShuffled) {
  Rng rng(51);
  const size_t n = 200000;
  std::vector<double> clustered(n);
  double walk = 0;
  for (auto& v : clustered) {
    walk += rng.NextGaussian();
    v = walk;
  }
  std::vector<double> shuffled = clustered;
  for (size_t i = n - 1; i > 0; --i) {
    std::swap(shuffled[i], shuffled[rng.Uniform(i + 1)]);
  }
  auto c1 = Column::FromVector<double>("c", clustered);
  auto c2 = Column::FromVector<double>("c", shuffled);
  auto ix1 = ImprintsIndex::Build(*c1);
  auto ix2 = ImprintsIndex::Build(*c2);
  ASSERT_TRUE(ix1.ok());
  ASSERT_TRUE(ix2.ok());
  double r1 = ix1->Storage(c1->raw_size_bytes()).vectors_per_line;
  double r2 = ix2->Storage(c2->raw_size_bytes()).vectors_per_line;
  EXPECT_LT(r1, r2) << "clustered data must compress at least as well";
}

}  // namespace
}  // namespace geocol
