// Morton SFC access path tests: interval decomposition properties and
// query agreement with the oracle.
#include <gtest/gtest.h>

#include <algorithm>

#include "baselines/full_scan.h"
#include "baselines/sfc_index.h"
#include "pointcloud/generator.h"
#include "sfc/morton.h"
#include "util/rng.h"

namespace geocol {
namespace {

TEST(MortonDecomposeTest, IntervalsAreSortedDisjointAndBounded) {
  Box extent(0, 0, 1000, 1000);
  Rng rng(401);
  for (int q = 0; q < 50; ++q) {
    double x = rng.UniformDouble(0, 900), y = rng.UniformDouble(0, 900);
    double s = rng.UniformDouble(1, 400);
    Box query(x, y, x + s, y + s);
    auto intervals =
        DecomposeBoxToMortonIntervals(query, extent, 16, 64);
    ASSERT_LE(intervals.size(), 64u);
    ASSERT_FALSE(intervals.empty());
    for (size_t i = 0; i < intervals.size(); ++i) {
      EXPECT_LE(intervals[i].lo, intervals[i].hi);
      if (i > 0) EXPECT_GT(intervals[i].lo, intervals[i - 1].hi + 1);
    }
  }
}

TEST(MortonDecomposeTest, CoversAllCodesInsideQuery) {
  // Every point in the query box must have a Morton code inside some
  // interval (completeness — correctness depends on it).
  Box extent(0, 0, 256, 256);
  Box query(37.3, 81.9, 120.4, 175.2);
  auto intervals = DecomposeBoxToMortonIntervals(query, extent, 16, 64);
  Rng rng(402);
  for (int i = 0; i < 20000; ++i) {
    double x = rng.UniformDouble(query.min_x, query.max_x);
    double y = rng.UniformDouble(query.min_y, query.max_y);
    uint64_t code = MortonEncodeScaled(x, y, extent, 16);
    bool covered = false;
    for (const auto& iv : intervals) {
      if (code >= iv.lo && code <= iv.hi) {
        covered = true;
        break;
      }
    }
    ASSERT_TRUE(covered) << "point (" << x << "," << y << ") code " << code;
  }
}

TEST(MortonDecomposeTest, WholeExtentIsOneInterval) {
  Box extent(0, 0, 100, 100);
  auto intervals = DecomposeBoxToMortonIntervals(extent, extent, 16, 64);
  ASSERT_EQ(intervals.size(), 1u);
  EXPECT_EQ(intervals[0].lo, 0u);
  EXPECT_EQ(intervals[0].hi, (uint64_t{1} << 32) - 1);
}

TEST(MortonDecomposeTest, DisjointQueryYieldsNothing) {
  Box extent(0, 0, 100, 100);
  auto intervals =
      DecomposeBoxToMortonIntervals(Box(200, 200, 300, 300), extent, 16, 64);
  EXPECT_TRUE(intervals.empty());
}

TEST(MortonDecomposeTest, BudgetRespected) {
  Box extent(0, 0, 1000, 1000);
  // A thin diagonal-ish box produces many cells; the budget must hold.
  Box query(1, 1, 999, 20);
  for (size_t budget : {1, 4, 16, 64}) {
    auto intervals =
        DecomposeBoxToMortonIntervals(query, extent, 16, budget);
    EXPECT_LE(intervals.size(), budget);
    EXPECT_FALSE(intervals.empty());
  }
}

class MortonSfcIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    AhnGeneratorOptions opts;
    opts.extent = Box(85000, 444000, 85200, 444200);
    AhnGenerator gen(opts);
    table_ = *gen.GenerateTable(30000);
    // Scramble first so the index's own sort is doing the work.
    ShuffleTableRows(table_.get(), 403);
    auto ix = MortonSfcIndex::Build(table_.get());
    ASSERT_TRUE(ix.ok());
    index_ = std::make_unique<MortonSfcIndex>(std::move(*ix));
  }

  std::shared_ptr<FlatTable> table_;
  std::unique_ptr<MortonSfcIndex> index_;
};

TEST_F(MortonSfcIndexTest, TableIsSortedAndKeysMonotone) {
  EXPECT_TRUE(std::is_sorted(index_->keys().begin(), index_->keys().end()));
  EXPECT_EQ(index_->keys().size(), table_->num_rows());
}

TEST_F(MortonSfcIndexTest, QueryMatchesOracle) {
  Rng rng(404);
  for (int q = 0; q < 15; ++q) {
    double x = rng.UniformDouble(85000, 85150);
    double y = rng.UniformDouble(444000, 444150);
    double s = rng.UniformDouble(2, 80);
    Box query(x, y, x + s, y + s);
    auto res = index_->QueryBox(query);
    ASSERT_TRUE(res.ok());
    auto oracle = FullScanSelectBox(*table_, query);
    ASSERT_TRUE(oracle.ok());
    EXPECT_EQ(*res, *oracle) << "query " << q;
  }
}

TEST_F(MortonSfcIndexTest, StatsShowPruning) {
  Box small(85010, 444010, 85020, 444020);
  MortonSfcIndex::QueryStats stats;
  auto res = index_->QueryBox(small, &stats);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(stats.results, res->size());
  EXPECT_GT(stats.intervals, 0u);
  // A tiny query must scan a small fraction of the table.
  EXPECT_LT(stats.rows_scanned, table_->num_rows() / 10);
}

TEST_F(MortonSfcIndexTest, StorageIsOneKeyPerRow) {
  EXPECT_EQ(index_->StorageBytes(), table_->num_rows() * sizeof(uint64_t));
}

TEST(MortonSfcIndexErrorsTest, Validation) {
  FlatTable empty("e");
  EXPECT_FALSE(MortonSfcIndex::Build(nullptr).ok());
  EXPECT_FALSE(MortonSfcIndex::Build(&empty).ok());
  MortonSfcOptions bad;
  bad.bits = 0;
  AhnGeneratorOptions opts;
  opts.extent = Box(85000, 444000, 85020, 444020);
  AhnGenerator gen(opts);
  auto table = *gen.GenerateTable(500);
  EXPECT_FALSE(MortonSfcIndex::Build(table.get(), bad).ok());
  bad.bits = 22;
  EXPECT_FALSE(MortonSfcIndex::Build(table.get(), bad).ok());
}

}  // namespace
}  // namespace geocol
