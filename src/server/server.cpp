#include "server/server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <utility>

#include "server/batch.h"
#include "server/protocol.h"
#include "sql/parser.h"
#include "telemetry/metrics.h"
#include "util/logging.h"

namespace geocol {
namespace server {

namespace {

int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// StatusCode a client-side Status carries for each server-side refusal
/// (kQueryFailed carries the execution status's own code instead).
StatusCode RefusalStatusCode(ErrorCode code) {
  switch (code) {
    case ErrorCode::kTooLarge: return StatusCode::kOutOfRange;
    case ErrorCode::kMalformed: return StatusCode::kInvalidArgument;
    default: return StatusCode::kInternal;
  }
}

/// Best-effort typed error reply; the connection may already be gone.
void SendError(int fd, ErrorCode code, std::string message) {
  ErrorReply reply;
  reply.code = code;
  reply.status_code = RefusalStatusCode(code);
  reply.message = std::move(message);
  WriteFrame(fd, FrameType::kError, EncodeError(reply)).ok();
}

}  // namespace

struct Server::Counters {
  std::atomic<uint64_t> connections_total{0};
  std::atomic<uint64_t> queries_ok{0};
  std::atomic<uint64_t> queries_error{0};
  std::atomic<uint64_t> shed_busy{0};
  std::atomic<uint64_t> shed_rate_limited{0};
  std::atomic<uint64_t> plan_errors{0};
  std::atomic<uint64_t> malformed{0};
  std::atomic<uint64_t> oversized{0};
  std::atomic<uint64_t> batches{0};
  std::atomic<uint64_t> batch_members{0};
  std::atomic<uint64_t> batch_fallbacks{0};
};

Server::Server(Catalog* catalog, ServerOptions options)
    : catalog_(catalog), options_(std::move(options)) {}

Server::~Server() { Stop(); }

Status Server::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::InvalidArgument("server is already running");
  }

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad listen address: " + options_.host);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status st =
        Status::IOError("bind " + options_.host + ":" +
                        std::to_string(options_.port) + ": " +
                        std::strerror(errno));
    ::close(fd);
    return st;
  }
  if (::listen(fd, 128) != 0) {
    Status st = Status::IOError(std::string("listen: ") +
                                std::strerror(errno));
    ::close(fd);
    return st;
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len) != 0) {
    ::close(fd);
    return Status::IOError(std::string("getsockname: ") +
                           std::strerror(errno));
  }

  listen_fd_ = fd;
  port_ = ntohs(addr.sin_port);
  queue_ = std::make_unique<AdmissionQueue>(options_.queue_capacity);
  limiter_ = std::make_unique<TokenBucketLimiter>(
      options_.rate_limit_qps, options_.rate_limit_burst,
      options_.rate_limit_max_clients);
  counters_ = std::make_unique<Counters>();
  // Rebinding an engine's cache budget races in-flight queries; worker
  // sessions must never do it mid-serve.
  options_.session.cache_budget_bytes = -1;

  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  worker_threads_.reserve(static_cast<size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i) {
    worker_threads_.emplace_back([this] { WorkerLoop(); });
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void Server::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);

  // 1. Stop accepting (shutdown unblocks the blocked accept; the fd is
  //    closed only after the accept thread is gone).
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;

  // 2. Drain the workers: a closed queue still pops every admitted task,
  //    so each one completes and its connection thread writes the
  //    response. No accepted work is dropped.
  queue_->Close();
  for (std::thread& t : worker_threads_) t.join();
  worker_threads_.clear();

  // 3. Unblock connection threads parked in recv and join them. SHUT_RD
  //    (not RDWR) so a thread that just finished Wait()-ing on a drained
  //    task can still write its response — reads return EOF, pending
  //    replies flow. Threads close their own fd on exit (under conn_mu_,
  //    entry set to -1), so only still-live fds are shut down here — no
  //    reused-fd races.
  std::vector<std::thread> conns;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (int fd : conn_fds_) {
      if (fd >= 0) ::shutdown(fd, SHUT_RD);
    }
    conns.swap(conn_threads_);
  }
  // Slots the accept loop already reaped are moved-out here; skip them.
  for (std::thread& t : conns) {
    if (t.joinable()) t.join();
  }
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    conn_fds_.clear();
    finished_conns_.clear();
    free_conn_slots_.clear();
  }
  port_ = 0;
}

ServerStats Server::stats() const {
  ServerStats s;
  if (counters_ == nullptr) return s;
  s.connections_total = counters_->connections_total.load();
  s.queries_ok = counters_->queries_ok.load();
  s.queries_error = counters_->queries_error.load();
  s.shed_busy = counters_->shed_busy.load();
  s.shed_rate_limited = counters_->shed_rate_limited.load();
  s.plan_errors = counters_->plan_errors.load();
  s.malformed = counters_->malformed.load();
  s.oversized = counters_->oversized.load();
  s.batches = counters_->batches.load();
  s.batch_members = counters_->batch_members.load();
  s.batch_fallbacks = counters_->batch_fallbacks.load();
  if (queue_ != nullptr) {
    s.queue_depth = queue_->depth();
    s.queue_max_depth = queue_->max_depth();
  }
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    s.conn_slots = conn_threads_.size() - free_conn_slots_.size();
  }
  return s;
}

void Server::AcceptLoop() {
  GEOCOL_METRIC_COUNTER(c_connections, "geocol_server_connections_total");
  for (;;) {
    ReapFinishedConns();
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (stopping_.load(std::memory_order_acquire)) break;
      // Transient failures (fd exhaustion, kernel buffer pressure, a
      // connection that aborted while queued) must not kill the
      // listener: back off a beat and keep accepting.
      if (errno == ECONNABORTED || errno == EMFILE || errno == ENFILE ||
          errno == ENOBUFS || errno == ENOMEM) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        continue;
      }
      break;  // listener shut down or unrecoverable
    }
    SetNoDelay(fd);
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      break;
    }
    counters_->connections_total.fetch_add(1, std::memory_order_relaxed);
    c_connections.Increment();
    std::lock_guard<std::mutex> lock(conn_mu_);
    uint64_t index;
    if (!free_conn_slots_.empty()) {
      index = free_conn_slots_.back();
      free_conn_slots_.pop_back();
      conn_fds_[index] = fd;
      conn_threads_[index] =
          std::thread([this, fd, index] { ConnectionLoop(fd, index); });
    } else {
      index = conn_fds_.size();
      conn_fds_.push_back(fd);
      conn_threads_.emplace_back(
          [this, fd, index] { ConnectionLoop(fd, index); });
    }
  }
}

void Server::ReapFinishedConns() {
  std::vector<std::thread> done;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    if (finished_conns_.empty()) return;
    for (uint64_t index : finished_conns_) {
      done.push_back(std::move(conn_threads_[index]));
      free_conn_slots_.push_back(index);
    }
    finished_conns_.clear();
  }
  // Joining outside conn_mu_: an exiting thread only touches the lists
  // under the lock before its last instruction, so this never deadlocks.
  for (std::thread& t : done) {
    if (t.joinable()) t.join();
  }
}

void Server::ConnectionLoop(int fd, uint64_t conn_index) {
  std::string client_id = "conn-" + std::to_string(conn_index);
  // The rate-limit key binds on the first HELLO only: a client that
  // could re-HELLO a fresh id before each query would start every query
  // with a full token bucket.
  bool client_id_bound = false;
  for (;;) {
    Result<Frame> frame = ReadFrame(fd, options_.max_request_bytes);
    if (!frame.ok()) {
      const StatusCode code = frame.status().code();
      if (code == StatusCode::kOutOfRange) {
        // The stream is unrecoverable past an unread oversized payload:
        // answer with the typed error, then hang up.
        counters_->oversized.fetch_add(1, std::memory_order_relaxed);
        SendError(fd, ErrorCode::kTooLarge, frame.status().message());
      } else if (code == StatusCode::kCorruption) {
        counters_->malformed.fetch_add(1, std::memory_order_relaxed);
        SendError(fd, ErrorCode::kMalformed, frame.status().message());
      }
      break;  // kNotFound = clean close; IOError = broken pipe
    }
    switch (frame->type) {
      case FrameType::kHello: {
        if (!client_id_bound && !frame->payload.empty()) {
          client_id.assign(frame->payload.begin(), frame->payload.end());
        }
        client_id_bound = true;
        if (!WriteFrame(fd, FrameType::kHelloOk, {}).ok()) goto done;
        break;
      }
      case FrameType::kPing: {
        if (!WriteFrame(fd, FrameType::kPong, {}).ok()) goto done;
        break;
      }
      case FrameType::kQuery: {
        GEOCOL_METRIC_COUNTER(c_queries, "geocol_server_queries_total");
        GEOCOL_METRIC_COUNTER(c_shed, "geocol_server_shed_total");
        c_queries.Increment();
        const std::string sql(frame->payload.begin(), frame->payload.end());
        if (stopping_.load(std::memory_order_acquire)) {
          SendError(fd, ErrorCode::kShuttingDown, "server is shutting down");
          break;
        }
        if (!limiter_->Allow(client_id, NowNanos())) {
          counters_->shed_rate_limited.fetch_add(1,
                                                 std::memory_order_relaxed);
          c_shed.Increment();
          SendError(fd, ErrorCode::kRateLimited,
                    "rate limit exceeded for client " + client_id);
          break;
        }
        // Parse and plan at admission: a live table's epoch is pinned
        // HERE, so the statement sees one consistent snapshot no matter
        // how long it queues or which worker runs it.
        TaskPtr task = std::make_shared<QueryTask>();
        task->client_id = client_id;
        task->sql = sql;
        {
          Result<sql::SelectStmt> stmt = sql::Parse(sql);
          Result<sql::PlannedQuery> plan =
              stmt.ok() ? sql::PlanQuery(catalog_, std::move(*stmt))
                        : Result<sql::PlannedQuery>(stmt.status());
          if (!plan.ok()) {
            counters_->plan_errors.fetch_add(1, std::memory_order_relaxed);
            counters_->queries_error.fetch_add(1, std::memory_order_relaxed);
            ErrorReply reply;
            reply.code = ErrorCode::kQueryFailed;
            reply.status_code = plan.status().code();
            reply.message = plan.status().message();
            if (!WriteFrame(fd, FrameType::kError, EncodeError(reply)).ok()) {
              goto done;
            }
            break;
          }
          task->plan = std::move(*plan);
        }
        if (options_.shared_scan_batching && BatchablePlan(task->plan)) {
          Result<Box> viewport = PlanViewport(task->plan);
          if (viewport.ok()) {
            task->batch_key = reinterpret_cast<uintptr_t>(task->plan.engine);
            task->viewport = *viewport;
          }
          // On error: leave batch_key 0 — solo execution reproduces it.
        }
        const AdmissionQueue::Admit admit = queue_->TryPush(task);
        if (admit == AdmissionQueue::Admit::kFull) {
          counters_->shed_busy.fetch_add(1, std::memory_order_relaxed);
          c_shed.Increment();
          SendError(fd, ErrorCode::kBusy,
                    "admission queue full (" +
                        std::to_string(options_.queue_capacity) +
                        " queued); retry");
          break;
        }
        if (admit == AdmissionQueue::Admit::kClosed) {
          SendError(fd, ErrorCode::kShuttingDown, "server is shutting down");
          break;
        }
        task->Wait();
        if (task->status.ok()) {
          std::vector<uint8_t> result_payload = EncodeResultSet(task->result);
          if (result_payload.size() >= kMaxResponseFrameBytes) {
            // The reply cannot fit a legal frame. The request itself was
            // consumed cleanly, so a typed refusal keeps the stream in
            // sync and the connection alive.
            counters_->oversized.fetch_add(1, std::memory_order_relaxed);
            counters_->queries_error.fetch_add(1, std::memory_order_relaxed);
            SendError(fd, ErrorCode::kTooLarge,
                      "result set of " + std::to_string(result_payload.size()) +
                          " bytes exceeds response frame cap of " +
                          std::to_string(kMaxResponseFrameBytes));
            break;
          }
          counters_->queries_ok.fetch_add(1, std::memory_order_relaxed);
          if (!WriteFrame(fd, FrameType::kResult, result_payload).ok()) {
            goto done;
          }
        } else {
          counters_->queries_error.fetch_add(1, std::memory_order_relaxed);
          ErrorReply reply;
          reply.code = ErrorCode::kQueryFailed;
          reply.status_code = task->status.code();
          reply.message = task->status.message();
          if (!WriteFrame(fd, FrameType::kError, EncodeError(reply)).ok()) {
            goto done;
          }
        }
        break;
      }
      default: {
        counters_->malformed.fetch_add(1, std::memory_order_relaxed);
        SendError(fd, ErrorCode::kMalformed,
                  "unknown frame type " +
                      std::to_string(static_cast<int>(frame->type)));
        // Unknown request types mean a confused peer; close rather than
        // guess at the rest of its stream.
        goto done;
      }
    }
  }
done:
  std::lock_guard<std::mutex> lock(conn_mu_);
  ::close(fd);
  conn_fds_[conn_index] = -1;
  // Hand the slot to the accept loop for joining + reuse; the thread
  // touches no server state past this point.
  finished_conns_.push_back(conn_index);
}

void Server::WorkerLoop() {
  sql::SessionOptions session_options = options_.session;
  session_options.cache_budget_bytes = -1;
  sql::Session session(catalog_, session_options);
  for (;;) {
    TaskPtr task = queue_->PopBlocking();
    if (task == nullptr) return;  // closed and drained
    std::vector<TaskPtr> group;
    group.push_back(std::move(task));
    if (options_.shared_scan_batching && group[0]->batch_key != 0 &&
        options_.max_batch_group > 1) {
      std::vector<TaskPtr> more = queue_->ExtractBatchGroup(
          group[0]->batch_key, options_.max_batch_group - 1);
      for (TaskPtr& t : more) group.push_back(std::move(t));
    }
    if (options_.before_execute_hook) options_.before_execute_hook(*group[0]);
    if (group.size() == 1) {
      QueryTask& t = *group[0];
      session.set_client_tag(t.client_id);
      Result<sql::ResultSet> result =
          session.ExecutePrepared(t.sql, std::move(t.plan));
      if (result.ok()) {
        t.Complete(Status::OK(), std::move(*result));
      } else {
        t.Complete(result.status(), {});
      }
    } else {
      ExecuteBatchGroup(session, group);
    }
  }
}

void Server::ExecuteBatchGroup(sql::Session& session,
                               const std::vector<TaskPtr>& group) {
  GEOCOL_METRIC_COUNTER(c_batches, "geocol_server_batches_total");
  GEOCOL_METRIC_COUNTER(c_members, "geocol_server_batch_members_total");
  SpatialQueryEngine* engine =
      reinterpret_cast<SpatialQueryEngine*>(group[0]->batch_key);
  Result<SharedScanResult> scan = SharedScanSelect(engine, group);
  if (!scan.ok()) {
    // Shared path failed (chunk fault, column mismatch, ...): run every
    // member alone so each gets exactly the result/error of unbatched
    // execution.
    counters_->batch_fallbacks.fetch_add(1, std::memory_order_relaxed);
    for (const TaskPtr& task : group) {
      session.set_client_tag(task->client_id);
      Result<sql::ResultSet> result =
          session.ExecutePrepared(task->sql, std::move(task->plan));
      if (result.ok()) {
        task->Complete(Status::OK(), std::move(*result));
      } else {
        task->Complete(result.status(), {});
      }
    }
    return;
  }
  counters_->batches.fetch_add(1, std::memory_order_relaxed);
  counters_->batch_members.fetch_add(group.size(),
                                     std::memory_order_relaxed);
  c_batches.Increment();
  c_members.Increment(group.size());
  for (size_t m = 0; m < group.size(); ++m) {
    const TaskPtr& task = group[m];
    session.set_client_tag(task->client_id);
    Result<sql::ResultSet> result = session.ExecutePreparedWithRows(
        task->sql, std::move(task->plan), std::move(scan->member_rows[m]),
        scan->profile);
    if (result.ok()) {
      task->Complete(Status::OK(), std::move(*result));
    } else {
      task->Complete(result.status(), {});
    }
  }
}

}  // namespace server
}  // namespace geocol
