// The catalog: named point-cloud tables (each wrapped by a spatial query
// engine) and named vector layers. This is what the SQL front end resolves
// FROM clauses against, and what the demo scenarios assemble.
#ifndef GEOCOL_GIS_CATALOG_H_
#define GEOCOL_GIS_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/live_table.h"
#include "core/shard_router.h"
#include "core/spatial_engine.h"
#include "gis/layer.h"
#include "util/status.h"

namespace geocol {

/// Named dataset registry.
class Catalog {
 public:
  /// Registers a point cloud table; a SpatialQueryEngine is created over
  /// it with `options`.
  Status AddPointCloud(const std::string& name,
                       std::shared_ptr<FlatTable> table,
                       EngineOptions options = {});

  Status AddLayer(std::shared_ptr<VectorLayer> layer);

  /// Registers a Hilbert-sharded point cloud; queries route through a
  /// ShardRouter built with `options`. Shares the point-cloud/layer
  /// namespace.
  Status AddShardedPointCloud(const std::string& name,
                              std::shared_ptr<ShardedTable> table,
                              EngineOptions options = {});

  /// Registers a live (appendable) point cloud. Statements against it pin
  /// the table's current epoch snapshot at plan time, so appends landing
  /// mid-statement never shift rows or free columns under the executor.
  Status AddLivePointCloud(const std::string& name,
                           std::shared_ptr<LiveTable> table);

  bool HasPointCloud(const std::string& name) const {
    return engines_.count(name) != 0;
  }
  bool HasLayer(const std::string& name) const {
    return layers_.count(name) != 0;
  }
  bool HasShardedPointCloud(const std::string& name) const {
    return routers_.count(name) != 0;
  }
  bool HasLivePointCloud(const std::string& name) const {
    return live_tables_.count(name) != 0;
  }

  Result<SpatialQueryEngine*> GetEngine(const std::string& name);
  Result<std::shared_ptr<FlatTable>> GetTable(const std::string& name);
  Result<std::shared_ptr<VectorLayer>> GetLayer(const std::string& name);
  Result<ShardRouter*> GetRouter(const std::string& name);
  Result<std::shared_ptr<ShardedTable>> GetShardedTable(
      const std::string& name);
  Result<std::shared_ptr<LiveTable>> GetLiveTable(const std::string& name);

  std::vector<std::string> PointCloudNames() const;
  std::vector<std::string> LayerNames() const;
  std::vector<std::string> ShardedPointCloudNames() const;
  std::vector<std::string> LivePointCloudNames() const;

 private:
  bool NameTaken(const std::string& name) const {
    return engines_.count(name) != 0 || layers_.count(name) != 0 ||
           routers_.count(name) != 0 || live_tables_.count(name) != 0;
  }

  std::map<std::string, std::unique_ptr<SpatialQueryEngine>> engines_;
  std::map<std::string, std::shared_ptr<FlatTable>> tables_;
  std::map<std::string, std::shared_ptr<VectorLayer>> layers_;
  std::map<std::string, std::unique_ptr<ShardRouter>> routers_;
  std::map<std::string, std::shared_ptr<ShardedTable>> sharded_tables_;
  std::map<std::string, std::shared_ptr<LiveTable>> live_tables_;
};

}  // namespace geocol

#endif  // GEOCOL_GIS_CATALOG_H_
